"""Fig. 15 — Effects of MaxCon (maxConnectionsizePerQuery).

Paper: one request thread, a range query producing multiple routed SQLs.
Small MaxCon forces connection-strictly mode (routed SQLs execute one by
one on few connections); raising MaxCon to ~5 lets them run concurrently
and TPS improves; past that the bottleneck moves to the data sources and
the curve flattens.

Here: a range query spanning one data source's full block -> 10 routed
SQLs against network-distant sources (3ms/request latency profile, which
is what the knob trades off). Asserted shape: MaxCon=5 clearly beats
MaxCon=1; MaxCon=10 gains little over MaxCon=5.
"""

from dataclasses import replace

from repro.baselines import BENCH_LATENCY, ShardingJDBCSystem
from repro.bench import SysbenchConfig, SysbenchWorkload, format_table, run_benchmark
from common import report

TABLE_SIZE = 20_000
NUM_SOURCES = 4
TABLES_PER_SOURCE = 10
#: one source's contiguous block: the range fans out to its 10 tables
BLOCK = TABLE_SIZE // NUM_SOURCES
#: remote data sources: a fixed per-request cost dominates (Fig 15's knob
#: is precisely about overlapping these per-SQL waits)
REMOTE_LATENCY = replace(BENCH_LATENCY, base=3e-3)

MAXCON_STEPS = [1, 2, 5, 10]

RANGE_SQL = "SELECT SUM(k) FROM sbtest WHERE id BETWEEN ? AND ?"


def run_fig15():
    workload = SysbenchWorkload(SysbenchConfig(table_size=TABLE_SIZE))
    results = {}
    modes = {}
    for maxcon in MAXCON_STEPS:
        system = ShardingJDBCSystem(
            [("sbtest", "id")],
            num_sources=NUM_SOURCES, tables_per_source=TABLES_PER_SOURCE,
            layout="range", key_space=TABLE_SIZE + 1,
            latency=REMOTE_LATENCY,
            max_connections_per_query=maxcon,
            name=f"MaxCon={maxcon}",
        )
        workload.prepare(system)
        diag = system.data_source.get_connection()
        probe = diag.execute(RANGE_SQL, (1, BLOCK - 1))
        probe.fetchall()
        modes[maxcon] = (probe.diagnostics.unit_count,
                         {k: v.value for k, v in probe.diagnostics.modes.items()})
        diag.close()
        try:
            results[maxcon] = run_benchmark(
                system,
                lambda session, rng: session.execute(
                    RANGE_SQL, (1, BLOCK - 1)
                ),
                scenario=f"maxcon={maxcon}", threads=1, duration=1.5, warmup=0.3,
            )
        finally:
            system.close()
    return results, modes


def test_fig15_maxcon(benchmark):
    results, modes = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    report("")
    report("== Fig. 15 (MaxCon, single-thread range query) ==")
    rows = [
        [maxcon, round(m.tps, 1), round(m.p99_ms, 2), modes[maxcon][0], str(modes[maxcon][1])]
        for maxcon, m in results.items()
    ]
    report(format_table(["MaxCon", "TPS", "99T(ms)", "routed SQLs", "mode"], rows))

    tps = {maxcon: m.tps for maxcon, m in results.items()}

    # the θ rule: MaxCon below the 10 routed SQLs -> connection strictly
    assert "connection_strictly" in modes[1][1].values()
    assert "memory_strictly" in modes[10][1].values()

    # performance improves as MaxCon grows to 5 ...
    assert tps[5] > tps[1] * 2, tps
    # ... and keeps stable afterwards (gain < 60%)
    assert tps[10] < tps[5] * 1.6, tps
