"""Table IV — Sysbench comparison with standalone (one-server) systems.

Paper: one virtual server for everything. MS=574 TPS, SSJ(MS)=4751,
SSP(MS)=380, Citus=621, Aurora(MS)=1543-ish / Aurora(PG)=2043 on
Read Write. Key claims reproduced here:

1. SSJ beats the plain single node *on the same resources* because the
   data lives in 10 small tables instead of one big one;
2. SSP falls below the single node (the proxy hop costs more than the
   sharding gains at one server);
3. Aurora-like beats the single node (storage-offloaded commits) but
   loses to SSJ;
4. TPS and AvgT rank systems consistently.
"""

from repro.bench import format_table, sysbench_row

from common import make_aurora, make_single, make_ssj, make_ssp, measure, sysbench_workload
from common import report


def run_table4():
    workload = sysbench_workload()
    systems = [
        ("MS", lambda: make_single("MS")),
        ("SSJ(MS)", lambda: make_ssj(num_sources=1, name="SSJ(MS)")),
        ("SSP(MS)", lambda: make_ssp(num_sources=1, name="SSP(MS)")),
        ("Aurora-like", lambda: make_aurora("Aurora-like")),
    ]
    return {name: measure(factory(), workload, "read_write") for name, factory in systems}


def test_table4_standalone(benchmark):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    report("")
    report("== Table IV (standalone, Read Write) ==")
    report(format_table(["System", "TPS", "99T(ms)", "AvgT(ms)"],
                       [sysbench_row(m) for m in results.values()]))

    tps = {name: m.tps for name, m in results.items()}
    avg = {name: m.avg_ms for name, m in results.items()}

    # (1) sharding into 10 small tables beats one big table on one server
    assert tps["SSJ(MS)"] > tps["MS"] * 1.5, tps
    # (2) the proxy hop erases the gains at a single server
    assert tps["SSP(MS)"] < tps["SSJ(MS)"], tps
    # (3) Aurora-like beats the plain single node but not SSJ
    assert tps["Aurora-like"] > tps["MS"], tps
    assert tps["SSJ(MS)"] > tps["Aurora-like"], tps
    # (4) TPS and AvgT are consistent: the TPS winner has the lowest AvgT
    best_tps = max(tps, key=tps.get)
    best_avg = min(avg, key=avg.get)
    assert best_tps == best_avg, (tps, avg)
