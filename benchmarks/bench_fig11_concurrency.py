"""Fig. 11 — Scalability with different request concurrency.

Paper: threads 20 -> 500. TPS rises then plateaus once the servers
saturate; 99T stays flat at low concurrency then climbs sharply past the
knee (requests queue for resources).

Here: 1 -> 24 threads against SSJ. Asserted shape: TPS grows
significantly from 1 thread to the mid range, then gains flatten
(sub-linear); p99 at the highest concurrency exceeds p99 at the lowest.
"""

from repro.bench import format_table, run_benchmark, sysbench_row

from common import WARMUP, make_ssj, sysbench_workload
from common import report

THREAD_STEPS = [1, 4, 8, 16, 24]


def run_fig11():
    workload = sysbench_workload()
    results = {}
    system = make_ssj()
    workload.prepare(system)
    try:
        for threads in THREAD_STEPS:
            results[threads] = run_benchmark(
                system,
                lambda s, r: workload.run_transaction("read_write", s, r),
                scenario=f"rw@{threads}t", threads=threads, duration=1.2, warmup=WARMUP,
            )
    finally:
        system.close()
    return results


def test_fig11_concurrency(benchmark):
    results = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    report("")
    report("== Fig. 11 (concurrency, Read Write, SSJ) ==")
    rows = [[threads] + sysbench_row(m)[1:] for threads, m in results.items()]
    report(format_table(["threads", "TPS", "99T(ms)", "AvgT(ms)"], rows))

    tps = {t: m.tps for t, m in results.items()}
    p99 = {t: m.p99_ms for t, m in results.items()}

    # TPS first increases...
    assert tps[4] > tps[1] * 1.5, tps
    # ...then saturates: the last doubling of threads gains < 50%
    assert tps[THREAD_STEPS[-1]] < tps[8] * 1.5, tps
    # past saturation the tail latency climbs
    assert p99[THREAD_STEPS[-1]] > p99[1], p99
