"""Fig. 9 — TPC-C comparison (TPS and accumulated 90th-percentile time).

Paper: native TPC-C, 200 warehouses, all tables sharded into 5 sources,
bmsql_order_line further sharded into 10 tables per source. SSJ has the
best TPS and smallest 90T; SSP trails Vitess/Citus; TiDB takes the most
time overall.

Here: the same layout at laptop scale (fewer warehouses, 2 sources).
Asserted shape: SSJ best TPS and best 90T among the sharded systems;
the TiDB analogue has the largest 90T.
"""

from repro.baselines import BENCH_LATENCY, MiddlewareSystem, NewSQLSystem, ShardingJDBCSystem, ShardingProxySystem
from repro.bench import (
    TPCC_BROADCAST_TABLES,
    TPCC_SHARDED_TABLES,
    TPCCConfig,
    TPCCWorkload,
    format_table,
    run_benchmark,
    tpcc_row,
)
from common import report

NUM_SOURCES = 2
BINDINGS = [[
    "bmsql_warehouse", "bmsql_district", "bmsql_customer",
    "bmsql_stock", "bmsql_oorder", "bmsql_new_order",
]]


def build_systems():
    common = dict(
        num_sources=NUM_SOURCES, tables_per_source=1,
        broadcast_tables=TPCC_BROADCAST_TABLES, latency=BENCH_LATENCY,
    )
    return [
        ShardingJDBCSystem(TPCC_SHARDED_TABLES, binding_groups=BINDINGS, name="SSJ(MS)", **common),
        ShardingProxySystem(TPCC_SHARDED_TABLES, binding_groups=BINDINGS, name="SSP(MS)", **common),
        MiddlewareSystem(TPCC_SHARDED_TABLES, name="Vitess-like",
                         num_sources=NUM_SOURCES, tables_per_source=1,
                         broadcast_tables=TPCC_BROADCAST_TABLES, latency=BENCH_LATENCY),
        NewSQLSystem(TPCC_SHARDED_TABLES, name="TiDB-like",
                     num_sources=NUM_SOURCES, tables_per_source=1,
                     broadcast_tables=TPCC_BROADCAST_TABLES, latency=BENCH_LATENCY),
    ]


def run_fig9():
    config = TPCCConfig(warehouses=4)
    workload = TPCCWorkload(config)
    results = {}
    for system in build_systems():
        workload.prepare(system)
        try:
            results[system.name] = run_benchmark(
                system,
                lambda session, rng: workload.run_transaction(
                    workload.pick_transaction(rng), session, rng
                ),
                scenario="tpcc", threads=6, duration=2.0, warmup=0.4,
            )
        finally:
            system.close()
    return results


def test_fig9_tpcc(benchmark):
    results = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    report("")
    report("== Fig. 9 (TPC-C) ==")
    report(format_table(["System", "TPS", "90T(ms)"], [tpcc_row(m) for m in results.values()]))

    tps = {name: m.tps for name, m in results.items()}
    p90 = {name: m.p90_ms for name, m in results.items()}
    assert tps["SSJ(MS)"] == max(tps.values()), tps
    assert p90["SSJ(MS)"] == min(p90.values()), p90
    # the NewSQL analogue takes the most time
    assert p90["TiDB-like"] == max(p90.values()), p90
    # every transaction type executed without errors
    assert all(m.errors == 0 for m in results.values())
