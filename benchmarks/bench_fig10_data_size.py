"""Fig. 10 — Scalability with different data sizes.

Paper: 20M -> 200M rows; all systems roughly stable until the largest
size, where TPS drops and 99T grows (taller trees, more disk); SSJ best
at every size.

Here: 5k -> 50k rows (same 10x span). Asserted shape: SSJ beats the
single node at every size; TPS at the largest size is below TPS at the
smallest for the single node (degradation), and SSJ degrades by less.
"""

from repro.bench import format_table, run_benchmark, sysbench_row

from common import THREADS, WARMUP, make_single, make_ssj, sysbench_workload
from common import report

SIZES = [5_000, 10_000, 25_000, 50_000]


def run_fig10():
    results: dict[int, dict[str, object]] = {}
    for size in SIZES:
        workload = sysbench_workload(size)
        results[size] = {}
        for name, factory in (
            ("SSJ(MS)", lambda: make_ssj(table_size=size, name="SSJ(MS)")),
            ("MS", lambda: make_single("MS")),
        ):
            system = factory()
            workload.prepare(system)
            try:
                results[size][name] = run_benchmark(
                    system,
                    lambda s, r: workload.run_transaction("read_write", s, r),
                    scenario=f"rw@{size}", threads=THREADS, duration=1.2, warmup=WARMUP,
                )
            finally:
                system.close()
    return results


def test_fig10_data_size(benchmark):
    results = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    report("")
    report("== Fig. 10 (data size, Read Write) ==")
    rows = []
    for size, by_system in results.items():
        for m in by_system.values():
            rows.append([size] + sysbench_row(m))
    report(format_table(["rows", "System", "TPS", "99T(ms)", "AvgT(ms)"], rows))

    for size, by_system in results.items():
        assert by_system["SSJ(MS)"].tps > by_system["MS"].tps, (size,)

    # the single node degrades from smallest to largest size
    assert results[SIZES[-1]]["MS"].tps < results[SIZES[0]]["MS"].tps
    # SSJ's relative degradation is smaller (its per-shard tables stay small)
    ssj_drop = results[SIZES[0]]["SSJ(MS)"].tps / max(results[SIZES[-1]]["SSJ(MS)"].tps, 1e-9)
    ms_drop = results[SIZES[0]]["MS"].tps / max(results[SIZES[-1]]["MS"].tps, 1e-9)
    assert ssj_drop <= ms_drop * 1.2, (ssj_drop, ms_drop)
