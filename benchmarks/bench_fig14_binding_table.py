"""Fig. 14 — Effects of binding tables.

Paper: joining two identically-sharded logical tables with vs without a
binding relationship; binding is ~10x faster in TPS because the join is
routed shard-locally (one SQL per node) instead of as a cartesian product
(tables_per_source^2 SQLs per source).

Here: two tables over 2 sources x 10 tables. Binding routes 20 units; the
cartesian route produces 200 — the same 10x unit blow-up, asserted both on
the routing itself and on the measured TPS gap.
"""

from repro.baselines import BENCH_LATENCY, ShardingJDBCSystem
from repro.bench import format_table, run_benchmark, sysbench_row
from common import report

NUM_SOURCES = 2
TABLES_PER_SOURCE = 10
ROWS_PER_TABLE = 2_000

JOIN_SQL = (
    "SELECT COUNT(*) FROM t_left l JOIN t_right r ON l.id = r.id WHERE l.k > 0"
)


def build(binding: bool) -> ShardingJDBCSystem:
    system = ShardingJDBCSystem(
        [("t_left", "id"), ("t_right", "id")],
        num_sources=NUM_SOURCES,
        tables_per_source=TABLES_PER_SOURCE,
        binding_groups=[["t_left", "t_right"]] if binding else [],
        latency=BENCH_LATENCY,
        max_connections_per_query=10,
        name="Binding" if binding else "Common",
    )
    session = system.session()
    try:
        for table in ("t_left", "t_right"):
            session.execute(
                f"CREATE TABLE {table} (id INT NOT NULL, k INT DEFAULT 1, PRIMARY KEY (id))"
            )
            batch = []
            for row_id in range(ROWS_PER_TABLE):
                batch.append(f"({row_id}, {row_id % 97 + 1})")
                if len(batch) == 500:
                    session.execute(f"INSERT INTO {table} (id, k) VALUES " + ", ".join(batch))
                    batch = []
            if batch:
                session.execute(f"INSERT INTO {table} (id, k) VALUES " + ", ".join(batch))
    finally:
        session.close()
    return system


def run_fig14():
    results = {}
    units = {}
    for binding in (True, False):
        system = build(binding)
        # routing-level check: how many SQLs does the join produce?
        diag = system.data_source.get_connection()
        result = diag.execute(JOIN_SQL)
        units[system.name] = result.diagnostics.unit_count
        diag.close()
        try:
            results[system.name] = run_benchmark(
                system,
                lambda session, rng: session.execute(JOIN_SQL),
                scenario=system.name, threads=4, duration=2.0, warmup=0.3,
            )
        finally:
            system.close()
    return results, units


def test_fig14_binding_table(benchmark):
    (results, units) = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    report("")
    report("== Fig. 14 (binding vs common join) ==")
    rows = [
        sysbench_row(m) + [units[name]] for name, m in results.items()
    ]
    report(format_table(["Config", "TPS", "99T(ms)", "AvgT(ms)", "routed SQLs"], rows))

    # the paper's routing blow-up: cartesian = binding x tables_per_source
    assert units["Binding"] == NUM_SOURCES * TABLES_PER_SOURCE
    assert units["Common"] == NUM_SOURCES * TABLES_PER_SOURCE ** 2

    # "the performance of binding tables is about 10 times better":
    # accept anything >= 4x as reproducing the order-of-magnitude claim.
    ratio = results["Binding"].tps / max(results["Common"].tps, 1e-9)
    assert ratio > 4.0, ratio
