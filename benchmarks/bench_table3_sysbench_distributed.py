"""Table III — Sysbench comparison of distributed systems.

Paper: four scenarios (Point Select, Read Only, Write Only, Read Write) x
{SSJ, SSP, Vitess, TiDB, CRDB} reporting TPS / 99T / AvgT. SS-based
systems win every scenario; SSJ ~5x the best non-SS system on Read Write;
Read Write is the slowest scenario for everyone.

Here: the same grid (4 sources x 10 tables) over the analogues. The
asserted shape: SSJ best in every scenario; SSP beats the CRDB analogue
everywhere; read-write is each system's slowest scenario.
"""

from repro.bench import SCENARIOS, format_table, sysbench_row

from common import (
    make_crdb,
    make_middleware,
    make_newsql,
    make_ssj,
    make_ssp,
    measure,
    sysbench_workload,
)
from common import report

#: moderate concurrency so throughput tracks per-statement latency (round
#: trips, proxy hops) rather than the driver process's CPU ceiling — the
#: regime the paper's 32-vCore load generators operate in.
THREADS = 4

SYSTEM_FACTORIES = [
    ("SSJ(MS)", make_ssj),
    ("SSP(MS)", make_ssp),
    ("Vitess-like", make_middleware),
    ("TiDB-like", make_newsql),
    ("CRDB-like", make_crdb),
]


def run_table3() -> dict[str, dict[str, object]]:
    workload = sysbench_workload()
    results: dict[str, dict[str, object]] = {}
    for scenario in SCENARIOS:
        results[scenario] = {}
        for name, factory in SYSTEM_FACTORIES:
            system = factory(name=name)
            results[scenario][name] = measure(system, workload, scenario, threads=THREADS)
    return results


def test_table3_sysbench_distributed(benchmark):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    for scenario, measurements in results.items():
        rows = [sysbench_row(m) for m in measurements.values()]
        report("")
        report(f"== Table III ({scenario}) ==")
        report(format_table(["System", "TPS", "99T(ms)", "AvgT(ms)"], rows))

    for scenario, by_system in results.items():
        tps = {name: m.tps for name, m in by_system.items()}
        # SS-JDBC performs the best in all scenarios.
        assert tps["SSJ(MS)"] == max(tps.values()), (scenario, tps)
        # The CRDB analogue trails the middlewares, as in the paper.
        assert tps["SSP(MS)"] > tps["CRDB-like"], (scenario, tps)

    # "The 'Read Write' scenario performs the worst" (per system).
    for name, _ in SYSTEM_FACTORIES:
        per_scenario = {s: results[s][name].tps for s in SCENARIOS}
        assert per_scenario["read_write"] == min(per_scenario.values()), (name, per_scenario)
