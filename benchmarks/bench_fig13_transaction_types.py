"""Fig. 13 — Effects of the three transaction types.

Paper: LOCAL always best (1PC, no waiting); XA worse (2PC, strong
consistency); BASE worst on these short transactions (TC round trips +
synchronous returns, as the paper discusses).

Here: write-only sysbench transactions under each manager. Asserted
shape: TPS(LOCAL) > TPS(XA) > TPS(BASE); 99T ordering is the reverse.
"""

from repro.bench import format_table, run_benchmark, sysbench_row
from repro.transaction import TransactionType

from common import WARMUP, make_ssj, sysbench_workload
from common import report


def run_fig13():
    results = {}
    for txn_type in (TransactionType.LOCAL, TransactionType.XA, TransactionType.BASE):
        workload = sysbench_workload()
        system = make_ssj(transaction_type=txn_type, name=txn_type.value)
        workload.prepare(system)
        try:
            results[txn_type.value] = run_benchmark(
                system,
                lambda s, r: workload.run_transaction("write_only", s, r),
                # moderate concurrency: throughput must track per-transaction
                # latency, not the driver's CPU ceiling
                scenario=f"wo@{txn_type.value}", threads=3, duration=2.5, warmup=WARMUP,
            )
        finally:
            system.close()
    return results


def test_fig13_transaction_types(benchmark):
    results = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    report("")
    report("== Fig. 13 (transaction types, Write Only) ==")
    report(format_table(["Type", "TPS", "99T(ms)", "AvgT(ms)"],
                       [sysbench_row(m) for m in results.values()]))

    tps = {name: m.tps for name, m in results.items()}
    assert tps["LOCAL"] > tps["XA"], tps
    assert tps["XA"] > tps["BASE"], tps

    avg = {name: m.avg_ms for name, m in results.items()}
    assert avg["LOCAL"] < avg["XA"] < avg["BASE"], avg
