"""Benchmark-suite configuration.

Each bench reports the paper table/series it regenerates through
``common.report``; the terminal-summary hook below replays those tables
after the run, so a plain ``pytest benchmarks/ --benchmark-only | tee
bench_output.txt`` records the reproduced rows, not just the timings.
"""


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    try:
        from common import REPORT_BUFFER
    except ImportError:
        return
    if not REPORT_BUFFER:
        return
    terminalreporter.section("reproduced paper tables")
    for line in REPORT_BUFFER:
        terminalreporter.write_line(line)
