"""Ablations for the SQL engine's design choices (DESIGN.md, last section).

Not a paper figure — these quantify the optimizations the paper describes
qualitatively, by disabling each one:

1. statement parse cache (Section VI-A's "parse once" motivation);
2. the stream-merger optimization rewrite (Section VI-C: adding ORDER BY
   to GROUP BY queries turns memory merge into stream merge);
3. binding-table route vs cartesian on a point join (Section V-B: when
   conditions pin the shard, both collapse to one unit — the optimization
   matters exactly when they don't).
"""

import random

from repro.baselines import BENCH_LATENCY, ShardingJDBCSystem
from repro.bench import format_table, run_benchmark
from common import report

TABLE_SIZE = 8_000


def build(name="ablate"):
    system = ShardingJDBCSystem(
        [("t_a", "id"), ("t_b", "id")],
        num_sources=2, tables_per_source=5,
        binding_groups=[["t_a", "t_b"]],
        latency=BENCH_LATENCY, max_connections_per_query=10, name=name,
    )
    session = system.session()
    for table in ("t_a", "t_b"):
        session.execute(
            f"CREATE TABLE {table} (id INT NOT NULL, grp INT, v INT, PRIMARY KEY (id))"
        )
        batch = ", ".join(
            f"({i}, {i % 7}, {i % 101})" for i in range(TABLE_SIZE)
        )
        for start in range(0, TABLE_SIZE, 500):
            chunk = ", ".join(
                f"({i}, {i % 7}, {i % 101})" for i in range(start, min(start + 500, TABLE_SIZE))
            )
            session.execute(f"INSERT INTO {table} (id, grp, v) VALUES {chunk}")
    session.close()
    return system


def run_ablations():
    results = {}

    # -- 1. parse cache ------------------------------------------------------
    system = build()
    point = "SELECT v FROM t_a WHERE id = ?"

    def txn(session, rng):
        session.execute(point, (rng.randrange(TABLE_SIZE),))

    with_cache = run_benchmark(system, txn, scenario="cache-on",
                               threads=4, duration=1.0, warmup=0.2)
    original = system.runtime.engine._parse_cached

    def no_cache(sql):
        from repro.sql import parse
        return parse(sql)

    system.runtime.engine._parse_cached = no_cache
    without_cache = run_benchmark(system, txn, scenario="cache-off",
                                  threads=4, duration=1.0, warmup=0.2)
    system.runtime.engine._parse_cached = original
    results["parse_cache"] = (with_cache.tps, without_cache.tps)

    # -- 2. stream-merger optimization (GROUP BY gains ORDER BY) -------------
    group_sql = "SELECT grp, SUM(v) FROM t_a GROUP BY grp"
    conn = system.data_source.get_connection()
    probe = conn.execute(group_sql)
    probe.fetchall()
    stream_kind = probe.diagnostics.merger_kind
    # ablate by ordering on a different column: forces memory group merge
    memory_sql = "SELECT grp, SUM(v) AS s FROM t_a GROUP BY grp ORDER BY s"
    probe = conn.execute(memory_sql)
    probe.fetchall()
    memory_kind = probe.diagnostics.merger_kind
    conn.close()

    stream_m = run_benchmark(
        system, lambda s, r: s.execute(group_sql),
        scenario="group-stream", threads=4, duration=1.0, warmup=0.2,
    )
    memory_m = run_benchmark(
        system, lambda s, r: s.execute(memory_sql),
        scenario="group-memory", threads=4, duration=1.0, warmup=0.2,
    )
    results["merger"] = (stream_kind, memory_kind, stream_m.tps, memory_m.tps)

    # -- 3. binding route collapses with a pinning condition -----------------
    join = ("SELECT COUNT(*) FROM t_a a JOIN t_b b ON a.id = b.id "
            "WHERE a.id = ?")
    conn = system.data_source.get_connection()
    result = conn.execute(join, (5,))
    result.fetchall()
    results["point_join_units"] = result.diagnostics.unit_count
    conn.close()

    system.close()
    return results


def test_ablation_engine(benchmark):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    cache_on, cache_off = results["parse_cache"]
    stream_kind, memory_kind, stream_tps, memory_tps = results["merger"]
    report("")
    report("== Engine ablations ==")
    report(format_table(
        ["ablation", "optimized", "ablated"],
        [
            ["parse cache (TPS)", round(cache_on, 1), round(cache_off, 1)],
            ["group merge (TPS)", round(stream_tps, 1), round(memory_tps, 1)],
            ["group merge (kind)", stream_kind, memory_kind],
        ],
    ))

    # the cache must help, not hurt
    assert cache_on > cache_off * 0.95
    # the optimization rewrite really selects the stream merger
    assert stream_kind == "group-by-stream"
    assert memory_kind == "group-by-memory"
    # a pinning condition collapses a binding join to a single unit
    assert results["point_join_units"] == 1
