"""Shared helpers for the paper-reproduction benchmarks.

Every bench module reproduces one table or figure of Section VIII. The
systems are built here with the evaluation's default layout (Table II
scaled down): data sharded across data sources and, within each source,
into 10 tables; contiguous range layout so sysbench's small BETWEEN
ranges stay shard-local (see EXPERIMENTS.md, layout note); the
BENCH_LATENCY profile (buffer-pool reads, WAL-priced writes).

Absolute numbers are Python-process numbers; the benches assert and print
the paper's *shapes* (who wins, roughly by how much, where curves bend).
"""

from __future__ import annotations

from repro.baselines import (
    BENCH_LATENCY,
    AuroraLikeSystem,
    MiddlewareSystem,
    NewSQLSystem,
    ShardingJDBCSystem,
    ShardingProxySystem,
    SingleNodeSystem,
    SystemUnderTest,
)
from repro.bench import (
    Measurement,
    SysbenchConfig,
    SysbenchWorkload,
    run_benchmark,
)
from repro.transaction import TransactionType

#: default evaluation scale (paper: 40M rows, 12 servers; here: laptop)
TABLE_SIZE = 20_000
NUM_SOURCES = 4
TABLES_PER_SOURCE = 10
THREADS = 8
DURATION = 1.5
WARMUP = 0.3

SBTEST = [("sbtest", "id")]

#: reproduced paper tables accumulate here; conftest's terminal-summary
#: hook replays them so they land in bench_output.txt despite capture.
REPORT_BUFFER: list[str] = []


def report(*parts: object) -> None:
    text = " ".join(str(p) for p in parts)
    print(text)
    REPORT_BUFFER.append(text)


def sysbench_workload(table_size: int = TABLE_SIZE) -> SysbenchWorkload:
    return SysbenchWorkload(SysbenchConfig(table_size=table_size))


def grid_kwargs(table_size: int = TABLE_SIZE) -> dict:
    return dict(layout="range", key_space=table_size + 1, latency=BENCH_LATENCY)


def make_ssj(table_size: int = TABLE_SIZE, num_sources: int = NUM_SOURCES,
             tables_per_source: int = TABLES_PER_SOURCE,
             transaction_type: TransactionType = TransactionType.LOCAL,
             max_connections_per_query: int = 10, name: str = "SSJ",
             io_channels: int = 4) -> ShardingJDBCSystem:
    return ShardingJDBCSystem(
        SBTEST, num_sources=num_sources, tables_per_source=tables_per_source,
        transaction_type=transaction_type,
        max_connections_per_query=max_connections_per_query,
        name=name, io_channels=io_channels, **grid_kwargs(table_size),
    )


def make_ssp(table_size: int = TABLE_SIZE, num_sources: int = NUM_SOURCES,
             tables_per_source: int = TABLES_PER_SOURCE, name: str = "SSP",
             io_channels: int = 4) -> ShardingProxySystem:
    return ShardingProxySystem(
        SBTEST, num_sources=num_sources, tables_per_source=tables_per_source,
        name=name, io_channels=io_channels, **grid_kwargs(table_size),
    )


def make_middleware(table_size: int = TABLE_SIZE, num_sources: int = NUM_SOURCES,
                    name: str = "Vitess-like") -> MiddlewareSystem:
    return MiddlewareSystem(
        SBTEST, num_sources=num_sources, tables_per_source=TABLES_PER_SOURCE,
        name=name, **grid_kwargs(table_size),
    )


def make_newsql(table_size: int = TABLE_SIZE, num_sources: int = NUM_SOURCES,
                name: str = "TiDB-like", **kw) -> NewSQLSystem:
    return NewSQLSystem(
        SBTEST, num_sources=num_sources, name=name, **grid_kwargs(table_size), **kw
    )


def make_crdb(table_size: int = TABLE_SIZE, num_sources: int = NUM_SOURCES,
              name: str = "CRDB-like") -> NewSQLSystem:
    """CockroachDB analogue: geo-style RTTs and RF=5 serializability cost."""
    return NewSQLSystem(
        SBTEST, num_sources=num_sources, name=name,
        kv_rtt=4e-3, replication_factor=5, **grid_kwargs(table_size),
    )


def make_single(name: str = "MS") -> SingleNodeSystem:
    return SingleNodeSystem(name, latency=BENCH_LATENCY)


def make_aurora(name: str = "Aurora-like") -> AuroraLikeSystem:
    return AuroraLikeSystem(latency=BENCH_LATENCY, name=name)


def measure(system: SystemUnderTest, workload: SysbenchWorkload, scenario: str,
            threads: int = THREADS, duration: float = DURATION) -> Measurement:
    """Prepare + run + close one system for one sysbench scenario."""
    workload.prepare(system)
    try:
        return run_benchmark(
            system,
            lambda session, rng: workload.run_transaction(scenario, session, rng),
            scenario=scenario, threads=threads, duration=duration, warmup=WARMUP,
        )
    finally:
        system.close()
