"""Fig. 12 — Scalability with different numbers of data servers.

Paper: 1 -> 5 data servers. SSJ's TPS grows with more servers (smaller
per-source slices, more parallel I/O); SSP's TPS rises slightly then
plateaus past ~3 servers — the single proxy becomes the bottleneck; 99T
drops then flattens.

Here: 1 -> 5 sources, each with tight I/O capacity (2 channels) so a
single server saturates, as in the paper's hardware. Asserted shape:
SSJ grows from 1 -> 5 servers (the paper's own Fig. 12a growth is ~1.3x)
and beats SSP at every scale; SSP gains less than SSJ from more servers.
"""

from repro.bench import format_table, run_benchmark, sysbench_row

from common import THREADS, WARMUP, make_ssj, make_ssp, sysbench_workload
from common import report

SOURCE_STEPS = [1, 2, 3, 4, 5]


def run_fig12():
    results: dict[int, dict[str, object]] = {}
    for sources in SOURCE_STEPS:
        workload = sysbench_workload()
        results[sources] = {}
        for name, factory in (
            ("SSJ(MS)", lambda: make_ssj(num_sources=sources, name="SSJ(MS)", io_channels=2)),
            ("SSP(MS)", lambda: make_ssp(num_sources=sources, name="SSP(MS)", io_channels=2)),
        ):
            system = factory()
            workload.prepare(system)
            try:
                results[sources][name] = run_benchmark(
                    system,
                    lambda s, r: workload.run_transaction("read_write", s, r),
                    scenario=f"rw@{sources}ds", threads=12, duration=1.5, warmup=WARMUP,
                )
            finally:
                system.close()
    return results


def test_fig12_data_servers(benchmark):
    results = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    report("")
    report("== Fig. 12 (number of data servers, Read Write) ==")
    rows = []
    for sources, by_system in results.items():
        for m in by_system.values():
            rows.append([sources] + sysbench_row(m))
    report(format_table(["servers", "System", "TPS", "99T(ms)", "AvgT(ms)"], rows))

    ssj = {s: by["SSJ(MS)"].tps for s, by in results.items()}
    ssp = {s: by["SSP(MS)"].tps for s, by in results.items()}

    # SSJ scales with more data servers (paper's own growth is ~1.3x)
    assert ssj[5] > ssj[1] * 1.15, ssj
    # SSJ beats SSP at every scale
    for sources in SOURCE_STEPS:
        assert ssj[sources] > ssp[sources], (sources, ssj, ssp)
    # the proxy plateaus: SSP's 1->5 gain is below SSJ's
    assert (ssp[5] / max(ssp[1], 1e-9)) < (ssj[5] / max(ssj[1], 1e-9)) * 1.05, (ssj, ssp)
