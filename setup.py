"""Setup shim: enables `pip install -e . --no-use-pep517` on systems
without the `wheel` package (this offline environment)."""
from setuptools import setup

setup()
