"""Telecom payment scenario (the paper's China Telecom BestPay application).

Section VII-B: BestPay's marketing-event data lived in a single MySQL
table (150 ms responses, 4% failures); they split it into two databases
by ``merchant_code % 2`` and, inside each database, horizontally by
month — after which responses dropped under 50 ms.

This example reproduces that layout exactly: a two-level rule with a MOD
database strategy on the merchant code and an INTERVAL table strategy on
the billing month, then shows how monthly queries prune to single shards.
"""

import random

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.sharding import (
    DataNode,
    ShardingRule,
    StandardShardingStrategy,
    TableRule,
    create_algorithm,
)
from repro.storage import DataSource

MONTHS = ["202101", "202102", "202103"]
MERCHANTS = 40
PAYMENTS = 600


def build_runtime() -> ShardingRuntime:
    sources = {"server0": DataSource("server0"), "server1": DataSource("server1")}
    for source in sources.values():
        for month in MONTHS:
            source.execute(
                f"CREATE TABLE t_payment_{month} ("
                "pay_id BIGINT NOT NULL, merchant_code INT NOT NULL, "
                "pay_time TIMESTAMP, amount FLOAT, PRIMARY KEY (pay_id))"
            )

    nodes = [
        DataNode(server, f"t_payment_{month}")
        for server in ("server0", "server1")
        for month in MONTHS
    ]
    rule = TableRule(
        "t_payment",
        nodes,
        # level 1: merchant_code % 2 picks the server (the paper's split)
        database_strategy=StandardShardingStrategy(
            "merchant_code", create_algorithm("MOD", {"sharding-count": 2})
        ),
        # level 2: the billing month picks the table within the server
        table_strategy=StandardShardingStrategy(
            "pay_time", create_algorithm("INTERVAL", {"datetime-interval-unit": "MONTHS"})
        ),
    )
    sharding = ShardingRule([rule], default_data_source="server0")
    return ShardingRuntime(sources, sharding, max_connections_per_query=6)


def main() -> None:
    runtime = build_runtime()
    data_source = ShardingDataSource(runtime)
    conn = data_source.get_connection()

    rng = random.Random(2021)
    for pay_id in range(1, PAYMENTS + 1):
        merchant = rng.randint(1, MERCHANTS)
        month = rng.choice(MONTHS)
        day = rng.randint(1, 28)
        conn.execute(
            "INSERT INTO t_payment (pay_id, merchant_code, pay_time, amount) "
            "VALUES (?, ?, ?, ?)",
            (pay_id, merchant, f"{month[:4]}-{month[4:]}-{day:02d} 12:00:00",
             round(rng.uniform(0.5, 300.0), 2)),
        )

    print("per-shard row counts (merchant%2 x month):")
    for name, source in sorted(runtime.data_sources.items()):
        for table in source.database.table_names():
            print(f"  {name}.{table}: {source.database.table(table).row_count}")

    print("\nmonthly statement for merchant 7 (prunes to ONE shard):")
    result = conn.execute(
        "SELECT COUNT(*), SUM(amount) FROM t_payment "
        "WHERE merchant_code = 7 AND pay_time BETWEEN ? AND ?",
        ("2021-02-01 00:00:00", "2021-02-28 23:59:59"),
    )
    print("  ", result.fetchall())
    preview = conn.execute(
        "PREVIEW SELECT COUNT(*) FROM t_payment "
        "WHERE merchant_code = 7 AND pay_time BETWEEN '2021-02-01 00:00:00' "
        "AND '2021-02-28 23:59:59'"
    )
    for row in preview:
        print("   routed ->", row)

    print("\nquarterly revenue per merchant (cross-shard group + order + limit):")
    result = conn.execute(
        "SELECT merchant_code, SUM(amount) AS revenue FROM t_payment "
        "GROUP BY merchant_code ORDER BY revenue DESC LIMIT 5"
    )
    for row in result:
        print("  ", row)

    conn.close()
    data_source.close()


if __name__ == "__main__":
    main()
