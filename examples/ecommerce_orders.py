"""E-commerce credit-payment scenario (the paper's JD Baitiao application).

Section VII-B: JD Baitiao sharded by *hash on user id* to avoid hot
access; nearly 10,000 data nodes; scaling "by simply adding more
machines". This example reproduces that shape at laptop scale:

1. orders sharded by HASH_MOD on ``user_id`` over 4 data sources,
   with SNOWFLAKE distributed key generation for order ids;
2. a shopping-festival burst of concurrent writers;
3. online scaling: the order table is resharded from 8 to 16 shards onto
   4 additional data sources with zero logical-SQL changes.
"""

import random
import threading

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.features import ScalingJob
from repro.sharding import (
    DataNode,
    ShardingRule,
    StandardShardingStrategy,
    TableRule,
    build_auto_table_rule,
    create_algorithm,
    create_physical_tables,
)
from repro.storage import Column, DataSource, TableSchema, make_type

USERS = 200
ORDERS_PER_WORKER = 50
WORKERS = 8

ORDER_SCHEMA = TableSchema(
    "t_baitiao_order",
    [
        Column("order_id", make_type("BIGINT"), not_null=True),
        Column("user_id", make_type("INT"), not_null=True),
        Column("amount", make_type("FLOAT")),
        Column("status", make_type("VARCHAR", 16), default="created"),
    ],
    primary_key=["order_id"],
)


def build_runtime() -> ShardingRuntime:
    sources = {f"ds{i}": DataSource(f"ds{i}") for i in range(8)}
    rule_obj = build_auto_table_rule(
        "t_baitiao_order",
        [f"ds{i}" for i in range(4)],  # first 4 machines initially
        sharding_column="user_id",
        algorithm_type="HASH_MOD",
        properties={"sharding-count": 8},
        key_generate_column="order_id",
    )
    create_physical_tables(rule_obj, ORDER_SCHEMA, sources)
    rule = ShardingRule([rule_obj], default_data_source="ds0")
    return ShardingRuntime(sources, rule, max_connections_per_query=8)


def shopping_festival(data_source: ShardingDataSource) -> int:
    """Concurrent order creation burst (hash on user id spreads the load)."""
    errors = []

    def worker(worker_id: int) -> None:
        rng = random.Random(worker_id)
        conn = data_source.get_connection()
        try:
            for _ in range(ORDERS_PER_WORKER):
                user_id = rng.randint(1, USERS)
                amount = round(rng.uniform(5, 500), 2)
                conn.execute(
                    "INSERT INTO t_baitiao_order (user_id, amount) VALUES (?, ?)",
                    (user_id, amount),
                )
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            conn.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(WORKERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return WORKERS * ORDERS_PER_WORKER


def main() -> None:
    runtime = build_runtime()
    data_source = ShardingDataSource(runtime)
    conn = data_source.get_connection()

    created = shopping_festival(data_source)
    total = conn.execute("SELECT COUNT(*) FROM t_baitiao_order").fetchall()[0][0]
    print(f"festival burst: {created} orders created, {total} visible logically")

    print("\nper-shard distribution (hash on user_id avoids hot shards):")
    for name, source in sorted(runtime.data_sources.items()):
        for table in source.database.table_names():
            count = source.database.table(table).row_count
            print(f"  {name}.{table}: {count}")

    result = conn.execute(
        "SELECT user_id, COUNT(*) AS orders, SUM(amount) AS spent "
        "FROM t_baitiao_order GROUP BY user_id ORDER BY spent DESC LIMIT 3"
    )
    print("\ntop spenders (cross-shard group-by + pagination):")
    for row in result:
        print("  ", row)

    # ---- scale out: 8 -> 16 shards over all 8 machines -------------------
    target = TableRule(
        "t_baitiao_order",
        [DataNode(f"ds{i % 8}", f"t_baitiao_order_v2_{i}") for i in range(16)],
        table_strategy=StandardShardingStrategy(
            "user_id", create_algorithm("HASH_MOD", {"sharding-count": 16})
        ),
        key_generate=runtime.rule.table_rule("t_baitiao_order").key_generate,
        auto=True,
    )
    job = ScalingJob(
        runtime.rule, target, runtime.data_sources,
        drop_source_tables=True, apply_rule=runtime.apply_table_rule,
    )
    report = job.run()
    print(
        f"\nscaled out: {report.source_nodes} -> {report.target_nodes} shards, "
        f"{report.rows_migrated} rows migrated, consistent={report.consistent}"
    )

    total_after = conn.execute("SELECT COUNT(*) FROM t_baitiao_order").fetchall()[0][0]
    print(f"logical view unchanged after scaling: {total_after} orders")

    conn.close()
    data_source.close()


if __name__ == "__main__":
    main()
