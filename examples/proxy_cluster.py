"""Proxy-mode deployment with Governor-backed high availability.

Section VII-A: ShardingSphere-Proxy is a standalone server speaking a
database wire protocol, so "any programming language" can use the sharded
fleet; Section V-B: the Governor health-checks proxies and databases and
fails over automatically. This example:

1. starts a real TCP proxy over a sharded fleet and talks to it through
   the wire-protocol client (as `mysql`/Navicat would);
2. registers proxy instances as ephemeral nodes in the Governor registry
   and watches one "crash";
3. shows primary failover driven by health detection.
"""

from repro.adaptors import ShardingProxyServer, ShardingRuntime
from repro.governor import ConfigCenter, HealthDetector, ReplicaGroup
from repro.protocol import ProxyClient
from repro.sharding import ShardingRule, build_auto_table_rule, create_physical_tables
from repro.storage import Column, DataSource, TableSchema, make_type


def main() -> None:
    # --- a sharded fleet plus one replica for failover --------------------
    sources = {name: DataSource(name) for name in ("ds0", "ds1", "ds0_replica")}
    schema = TableSchema(
        "t_session",
        [Column("sid", make_type("INT"), not_null=True), Column("user", make_type("VARCHAR", 32))],
        primary_key=["sid"],
    )
    rule_obj = build_auto_table_rule(
        "t_session", ["ds0", "ds1"], sharding_column="sid",
        properties={"sharding-count": 4},
    )
    create_physical_tables(rule_obj, schema, sources)

    config = ConfigCenter()
    runtime = ShardingRuntime(
        sources, ShardingRule([rule_obj], default_data_source="ds0"),
        config_center=config, max_connections_per_query=4,
    )

    # --- proxy instances register as ephemeral governor nodes --------------
    with ShardingProxyServer(runtime) as proxy:
        session_a = config.register_instance("proxy-1", {"port": proxy.port})
        session_b = config.register_instance("proxy-2", {"port": 13307})
        print("online proxy instances:", config.online_instances())

        events = []
        config.watch_instances(lambda event, path, value: events.append(value))
        session_b.close()  # proxy-2 "crashes": its ephemeral node vanishes
        print("after crash:", config.online_instances(), "| watch saw:", events)

        # --- any client, any language: just the wire protocol ---------------
        with ProxyClient("127.0.0.1", proxy.port) as client:
            print("\nconnected to", client.server_info["server"])
            client.execute(
                "INSERT INTO t_session (sid, user) VALUES (1, 'ann'), (2, 'bo'), (3, 'che')"
            )
            rows = client.execute("SELECT sid, user FROM t_session ORDER BY sid").fetchall()
            print("rows via proxy:", rows)
            rules = client.execute("SHOW SHARDING TABLE RULES").fetchall()
            print("DistSQL via proxy:", rules)

        session_a.close()

    # --- health detection + automatic primary switch ----------------------
    group = ReplicaGroup("ds0", primary="ds0", replicas=["ds0_replica"])
    detector = HealthDetector(sources, config, groups=[group], interval=0.05)
    promoted = []
    detector.add_failover_listener(lambda g, old, new: promoted.append((old, new)))
    sources["ds0"].database.fail_next("statement", times=10)
    detector.check_once()
    print("\nhealth detection:", config.get_status("datasource/ds0"),
          "| failover:", promoted, "| new primary:", group.primary)

    runtime.close()


if __name__ == "__main__":
    main()
