"""Tour of the pluggable features (Section IV-C).

"All of these features are transparent to application developers ... they
can be added, removed, or combined with data sharding freely." This
example combines four features on one sharded deployment:

- read-write splitting with a round-robin replica load balancer,
- column encryption (ciphertext at rest, plaintext through the API),
- shadow DB (test traffic diverted away from production),
- throttling (token-bucket admission control).
"""

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.exceptions import ThrottledError
from repro.features import (
    EncryptColumn,
    EncryptFeature,
    EncryptRule,
    ReadWriteGroup,
    ReadWriteSplittingFeature,
    ShadowFeature,
    ShadowRule,
    ThrottleFeature,
    XorStreamEncryptor,
)
from repro.sharding import ShardingRule
from repro.storage import DataSource

TABLES = ("prod", "prod_replica", "prod_shadow")
DDL = (
    "CREATE TABLE t_account (aid INT NOT NULL, card_no_cipher VARCHAR(128), "
    "balance FLOAT DEFAULT 0, is_shadow BOOLEAN DEFAULT FALSE, PRIMARY KEY (aid))"
)


def main() -> None:
    sources = {name: DataSource(name) for name in TABLES}
    for source in sources.values():
        source.execute(DDL)

    encrypt_rule = EncryptRule()
    encrypt_rule.add(
        "t_account",
        EncryptColumn("card_no", "card_no_cipher", XorStreamEncryptor("bank-key")),
    )
    features = [
        EncryptFeature(encrypt_rule),
        ReadWriteSplittingFeature(
            [ReadWriteGroup("prod", primary="prod", replicas=["prod_replica"])]
        ),
        ShadowFeature(ShadowRule(mapping={"prod": "prod_shadow"})),
        ThrottleFeature(rate=50, burst=50),
    ]
    runtime = ShardingRuntime(
        sources, ShardingRule(default_data_source="prod"), features=features
    )
    data_source = ShardingDataSource(runtime)
    conn = data_source.get_connection()

    # --- encryption: plaintext in, ciphertext at rest ----------------------
    conn.execute(
        "INSERT INTO t_account (aid, card_no, balance) VALUES (1, '6222-0011', 500.0)"
    )
    stored = sources["prod"].execute("SELECT card_no_cipher FROM t_account")[0][0]
    # replicate the committed row so replica reads can serve it (a real
    # deployment would have primary->replica replication underneath)
    sources["prod_replica"].execute(
        f"INSERT INTO t_account (aid, card_no_cipher, balance) VALUES (1, '{stored}', 500.0)"
    )
    print("ciphertext at rest: ", stored)
    print("plaintext through the API:",
          conn.execute("SELECT card_no FROM t_account WHERE aid = 1").fetchall())
    print("equality on encrypted column:",
          conn.execute("SELECT aid FROM t_account WHERE card_no = '6222-0011'").fetchall())

    rw = features[1]
    conn.execute("SELECT balance FROM t_account WHERE aid = 1").fetchall()
    conn.execute("UPDATE t_account SET balance = 400 WHERE aid = 1")
    print(f"\nread-write splitting: {rw.reads_routed} read(s) on replicas, "
          f"{rw.writes_routed} write(s) on the primary")

    # --- shadow: stress-test traffic never touches production ---------------
    conn.execute(
        "INSERT INTO t_account (aid, card_no, balance, is_shadow) "
        "VALUES (999, '0000-0000', 1.0, TRUE)"
    )
    print("\nshadow rows in prod:",
          sources["prod"].execute("SELECT COUNT(*) FROM t_account WHERE aid = 999")[0][0])
    print("shadow rows in prod_shadow:",
          sources["prod_shadow"].execute("SELECT COUNT(*) FROM t_account WHERE aid = 999")[0][0])

    # --- throttling ----------------------------------------------------------
    rejected = 0
    for _ in range(100):
        try:
            conn.execute("SELECT aid FROM t_account WHERE aid = 1").fetchall()
        except ThrottledError:
            rejected += 1
    print(f"\nthrottle: {rejected} of 100 burst requests rejected by the token bucket")

    conn.close()
    data_source.close()


if __name__ == "__main__":
    main()
