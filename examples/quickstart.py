"""Quickstart: use a sharded fleet like one database.

Mirrors the paper's running example (Fig. 3): ``t_user`` and ``t_order``
horizontally sharded by ``uid`` over two data sources, with a binding
relationship so joins stay shard-local. Everything is configured through
DistSQL (Section V-A), including the AutoTable strategy: you never name a
physical table.

Run:  python examples/quickstart.py
"""

from repro.adaptors import ShardingDataSource


def main() -> None:
    data_source = ShardingDataSource()
    conn = data_source.get_connection()

    # --- configure with DistSQL (RDL): resources, rules, binding ---------
    conn.execute("REGISTER RESOURCE ds0, ds1")
    conn.execute(
        "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
        "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=2))"
    )
    conn.execute(
        "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
        "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=2))"
    )
    conn.execute("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)")

    # --- AutoTable: logical DDL creates the physical shards --------------
    conn.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64), age INT)")
    conn.execute(
        "CREATE TABLE t_order (oid INT PRIMARY KEY, uid INT NOT NULL, amount FLOAT)"
    )

    # --- use it like one database ----------------------------------------
    conn.execute(
        "INSERT INTO t_user (uid, name, age) VALUES "
        "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35), (4, 'dave', 28)"
    )
    conn.execute(
        "INSERT INTO t_order (oid, uid, amount) VALUES "
        "(100, 1, 25.0), (101, 2, 14.5), (102, 1, 3.2), (103, 3, 99.0)"
    )

    print("-- point select (routed to exactly one shard) --")
    result = conn.execute("SELECT name, age FROM t_user WHERE uid = 3")
    print(result.fetchall())
    print("   routed:", conn.execute("PREVIEW SELECT name FROM t_user WHERE uid = 3").fetchall())

    print("\n-- cross-shard ORDER BY (multiway stream merge) --")
    result = conn.execute("SELECT uid, name, age FROM t_user ORDER BY age DESC")
    for row in result:
        print("  ", row)

    print("\n-- cross-shard aggregation (AVG decomposed into SUM/COUNT) --")
    result = conn.execute("SELECT COUNT(*), AVG(age) FROM t_user")
    print("  ", result.fetchall())

    print("\n-- binding-table join (shard-local, no cartesian product) --")
    result = conn.execute(
        "SELECT u.name, SUM(o.amount) AS total FROM t_user u "
        "JOIN t_order o ON u.uid = o.uid GROUP BY u.name ORDER BY total DESC"
    )
    for row in result:
        print("  ", row)

    print("\n-- distributed transaction (XA) --")
    conn.execute("SET VARIABLE transaction_type = XA")
    conn.begin()
    conn.execute("UPDATE t_order SET amount = amount * 0.9 WHERE uid = 1")
    conn.execute("UPDATE t_user SET age = age + 1 WHERE uid = 1")
    conn.commit()
    print("  ", conn.execute("SELECT age FROM t_user WHERE uid = 1").fetchall())

    print("\n-- the rules, as the cluster sees them --")
    for row in conn.execute("SHOW SHARDING TABLE RULES"):
        print("  ", row)

    conn.close()
    data_source.close()


if __name__ == "__main__":
    main()
