"""Wire protocol for the proxy adaptor: framing, client driver."""

from .client import ProxyClient, ProxyResult
from .message import PacketType, encode, read_packet, send_packet

__all__ = ["PacketType", "encode", "read_packet", "send_packet", "ProxyClient", "ProxyResult"]
