"""Wire protocol framing for the proxy adaptor.

A simplified stand-in for the MySQL/PostgreSQL client-server protocols the
real ShardingSphere-Proxy implements: length-prefixed packets carrying a
one-byte command/response type and a JSON body. What matters for the
paper's measurements is that every proxy request really crosses a socket
with serialize/deserialize cost on both sides.

Packet layout: ``uint32 length (big endian) | uint8 type | body(json)``.
"""

from __future__ import annotations

import datetime
import enum
import json
import socket
import struct
from typing import Any

from ..exceptions import ProtocolError

MAX_PACKET = 64 * 1024 * 1024


class PacketType(enum.IntEnum):
    # client -> server
    HANDSHAKE = 1
    QUERY = 2
    QUIT = 3
    # server -> client
    HANDSHAKE_OK = 10
    OK = 11
    RESULT_HEADER = 12
    ROW_BATCH = 13
    RESULT_END = 14
    ERROR = 15


def _default(value: Any) -> Any:
    if isinstance(value, (datetime.datetime, datetime.date)):
        return {"__dt__": value.isoformat()}
    raise TypeError(f"cannot serialize {type(value).__name__}")


def _object_hook(obj: dict) -> Any:
    if "__dt__" in obj and len(obj) == 1:
        return datetime.datetime.fromisoformat(obj["__dt__"])
    return obj


def encode(packet_type: PacketType, body: Any) -> bytes:
    payload = json.dumps(body, default=_default).encode("utf-8")
    if len(payload) + 1 > MAX_PACKET:
        raise ProtocolError(f"packet of {len(payload)} bytes exceeds limit")
    return struct.pack(">IB", len(payload) + 1, int(packet_type)) + payload


def read_packet(sock: socket.socket) -> tuple[PacketType, Any]:
    header = _read_exact(sock, 5)
    (length, type_byte) = struct.unpack(">IB", header)
    if length < 1 or length > MAX_PACKET:
        raise ProtocolError(f"bad packet length {length}")
    payload = _read_exact(sock, length - 1)
    try:
        packet_type = PacketType(type_byte)
    except ValueError:
        raise ProtocolError(f"unknown packet type {type_byte}") from None
    body = json.loads(payload.decode("utf-8"), object_hook=_object_hook) if payload else None
    return packet_type, body


def send_packet(sock: socket.socket, packet_type: PacketType, body: Any) -> None:
    sock.sendall(encode(packet_type, body))


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-packet")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def decode_body(payload: bytes) -> Any:
    """Decode one packet body (the reactor defers this to worker threads
    so JSON cost never serializes on the single reactor thread)."""
    if not payload:
        return None
    return json.loads(payload.decode("utf-8"), object_hook=_object_hook)


class Framer:
    """Incremental, non-blocking packet framer for the proxy reactor.

    Bytes arrive from ``recv`` in arbitrary slices — possibly splitting
    the 5-byte header itself — and :meth:`feed` buffers until whole
    packets are available. Bodies are returned as raw payload bytes
    (see :func:`decode_body`); malformed lengths or unknown types raise
    :class:`ProtocolError` so the server can reject the client instead
    of mis-framing everything after.
    """

    __slots__ = ("_buf",)

    HEADER = 5

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> list[tuple[PacketType, bytes]]:
        """Append received bytes; return every now-complete packet."""
        self._buf += data
        packets: list[tuple[PacketType, bytes]] = []
        buf = self._buf
        offset = 0
        while len(buf) - offset >= self.HEADER:
            length, type_byte = struct.unpack_from(">IB", buf, offset)
            if length < 1 or length > MAX_PACKET:
                raise ProtocolError(f"bad packet length {length}")
            end = offset + self.HEADER + (length - 1)
            if len(buf) < end:
                break
            try:
                packet_type = PacketType(type_byte)
            except ValueError:
                raise ProtocolError(f"unknown packet type {type_byte}") from None
            packets.append((packet_type, bytes(buf[offset + self.HEADER:end])))
            offset = end
        if offset:
            del buf[:offset]
        return packets
