"""Client driver for the proxy wire protocol.

Offers the same cursor-flavoured surface as the JDBC adaptor so benchmark
code can swap ``ShardingDataSource`` for ``ProxyClient`` transparently —
exactly how the paper swaps SSJ for SSP in its experiments.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Sequence

from ..exceptions import ExecutionError, ProtocolError, ServerBusyError
from .message import PacketType, read_packet, send_packet


class ProxyResult:
    """Materialized result from the proxy (the hop already paid for it)."""

    def __init__(self, columns: list[str], rows: list[tuple[Any, ...]],
                 rowcount: int = -1, message: str | None = None,
                 generated_keys: Any = None):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.message = message
        self.generated_keys = generated_keys
        self._cursor = 0

    @property
    def description(self) -> list[tuple] | None:
        if not self.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self.columns]

    def fetchone(self) -> tuple[Any, ...] | None:
        if self._cursor >= len(self.rows):
            return None
        row = self.rows[self._cursor]
        self._cursor += 1
        return row

    def fetchall(self) -> list[tuple[Any, ...]]:
        rows = self.rows[self._cursor:]
        self._cursor = len(self.rows)
        return rows

    def __iter__(self):
        return iter(self.fetchall())


class ProxyClient:
    """One client session against a ShardingSphere-Proxy server.

    ``timeout`` bounds every socket operation after connect: a
    half-closed or wedged peer surfaces as a :class:`ProtocolError`
    instead of hanging the caller forever. Any framing/socket failure
    marks the client *broken* — the stream position is unknowable, so
    further use raises instead of desynchronizing.
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0,
                 timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(timeout)
        self.timeout = timeout
        self._lock = threading.Lock()
        self._closed = False
        self._broken = False
        try:
            send_packet(self._sock, PacketType.HANDSHAKE, {"client": "repro-driver"})
            packet_type, body = read_packet(self._sock)
        except socket.timeout:
            self._sock.close()
            raise ProtocolError(
                f"handshake timed out after {timeout}s") from None
        except OSError as exc:
            self._sock.close()
            raise ProtocolError(f"handshake failed: {exc}") from exc
        if packet_type is not PacketType.HANDSHAKE_OK:
            self._sock.close()
            raise ProtocolError(f"handshake failed: {body}")
        self.server_info = body

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            send_packet(self._sock, PacketType.QUIT, {})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ProxyClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- execution --------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ProxyResult:
        if self._closed:
            raise ProtocolError("client is closed")
        if self._broken:
            raise ProtocolError(
                "connection is broken (a previous request failed mid-frame); "
                "open a new client")
        with self._lock:
            try:
                return self._execute_locked(sql, params)
            except socket.timeout:
                # the stream position is now unknown: poison the client
                self._broken = True
                raise ProtocolError(
                    f"timed out after {self.timeout}s waiting for the server "
                    f"(half-closed peer?)") from None
            except ProtocolError:
                self._broken = True
                raise
            except OSError as exc:
                self._broken = True
                raise ProtocolError(f"connection failed mid-request: {exc}") from exc

    def _execute_locked(self, sql: str, params: Sequence[Any]) -> ProxyResult:
        send_packet(self._sock, PacketType.QUERY, {"sql": sql, "params": list(params)})
        packet_type, body = read_packet(self._sock)
        if packet_type is PacketType.ERROR:
            raise self._server_error(body)
        if packet_type is PacketType.OK:
            return ProxyResult(
                [], [],
                rowcount=body.get("rowcount", -1),
                message=body.get("message"),
                generated_keys=body.get("generated_keys"),
            )
        if packet_type is not PacketType.RESULT_HEADER:
            raise ProtocolError(f"unexpected packet {packet_type.name}")
        columns = body["columns"]
        rows: list[tuple[Any, ...]] = []
        while True:
            packet_type, body = read_packet(self._sock)
            if packet_type is PacketType.ROW_BATCH:
                rows.extend(tuple(r) for r in body["rows"])
            elif packet_type is PacketType.RESULT_END:
                break
            elif packet_type is PacketType.ERROR:
                raise self._server_error(body, mid_stream=True)
            else:
                raise ProtocolError(f"unexpected packet {packet_type.name}")
        return ProxyResult(columns, rows)

    @staticmethod
    def _server_error(body: Any, mid_stream: bool = False) -> ExecutionError:
        """Map an ERROR packet to the right exception; the session stays
        usable (the server kept framing), so the client is NOT broken."""
        body = body or {}
        message = body.get("message")
        if body.get("backpressure"):
            return ServerBusyError(f"proxy backpressure: {message}")
        where = "proxy error mid-stream" if mid_stream else "proxy error"
        return ExecutionError(f"{where}: {message}")

    # -- convenience TCL -------------------------------------------------------------

    def begin(self) -> None:
        self.execute("BEGIN")

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")
