"""Resilience policy layer: retries, deadlines, per-source breakers.

The paper's Governor (Section V-B) keeps the middleware serving traffic
when proxies or databases fail; this module is the execution-side half of
that story. :class:`ResiliencePolicy` says *how* the execution engine
absorbs faults (how many retries, what backoff, what deadline budget, when
broadcast reads may degrade); :class:`CircuitBreaker` /
:class:`BreakerRegistry` keep per-data-source failure state so one sick
shard stops receiving traffic without taking the fleet down.

Retry safety rules (enforced by the engine, stated here):

- only :class:`TransientError` subclasses are retried transparently;
- reads are always safe to retry; autocommit writes only when the policy
  opts in (``retry_writes``); writes inside an open distributed
  transaction are **never** retried (a partially-applied write plus a
  blind retry is how rows get duplicated);
- :class:`DataSourceUnavailableError` is not retried against the same
  source — re-routing (replica reads, broadcast degradation) or the
  pipeline-level re-route handles it.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass

from ..exceptions import (
    CircuitBreakerOpenError,
    DataSourceUnavailableError,
    TransientError,
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the execution engine's fault absorption."""

    #: transparent per-unit retries on transient errors
    max_retries: int = 3
    #: exponential backoff base; attempt n sleeps U(0, min(cap, base*2^n))
    base_backoff: float = 0.001
    max_backoff: float = 0.05
    #: per logical statement deadline budget (seconds); None = unlimited
    statement_timeout: float | None = None
    #: pipeline-level re-route attempts for idempotent reads (a re-route
    #: re-runs route->rewrite->execute, letting health-aware routing pick
    #: a different replica after a source went DOWN)
    max_reroutes: int = 2
    #: retry autocommit writes too (safe when faults fire before the
    #: write applies, as this substrate's injector does; real deployments
    #: need idempotency keys to turn this on)
    retry_writes: bool = False
    #: broadcast reads skip DOWN/tripped sources and return partial
    #: results flagged as such, instead of failing the whole statement
    allow_partial_broadcast: bool = True
    #: per-source circuit breaker knobs
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 30.0
    #: exception classes considered transient/retryable
    retryable: tuple[type[BaseException], ...] = (TransientError,)
    #: seed for the backoff jitter RNG (determinism in tests)
    seed: int | None = None

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Exponential backoff with full jitter (AWS-style)."""
        cap = min(self.max_backoff, self.base_backoff * (2 ** max(attempt - 1, 0)))
        return rng.uniform(0.0, cap)


#: errors that justify re-running the whole pipeline for an idempotent read
REROUTABLE_ERRORS = (
    TransientError,
    DataSourceUnavailableError,
    CircuitBreakerOpenError,
)


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after consecutive failures; recover through a single probe.

    Admission protocol: call :meth:`try_acquire` before each attempt; on
    True run the attempt and report :meth:`record_success` /
    :meth:`record_failure`. When the cooldown elapses the first acquirer
    becomes the HALF_OPEN probe; every other caller is rejected until the
    probe reports back (success closes, failure re-opens) — exactly one
    in-flight probe, tracked under the lock, so concurrent requests racing
    the probe window cannot stampede a recovering backend.
    """

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0,
                 name: str = ""):
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = CircuitState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._lock = threading.Lock()

    # -- manual controls (DistSQL RAL can force these) --------------------

    def trip(self) -> None:
        with self._lock:
            self.state = CircuitState.OPEN
            self._opened_at = time.monotonic()
            self._probe_in_flight = False

    def reset(self) -> None:
        with self._lock:
            self.state = CircuitState.CLOSED
            self._failures = 0
            self._probe_in_flight = False

    # -- admission ---------------------------------------------------------

    def try_acquire(self) -> bool:
        """Admit one attempt; False means the breaker rejects it."""
        with self._lock:
            if self.state is CircuitState.CLOSED:
                return True
            if self.state is CircuitState.OPEN:
                if (
                    time.monotonic() - self._opened_at >= self.reset_timeout
                    and not self._probe_in_flight
                ):
                    self.state = CircuitState.HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # HALF_OPEN: exactly one probe at a time. If its owner died
            # without reporting back, the slot frees up here.
            if not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def available(self) -> bool:
        """Non-mutating check: could an attempt plausibly be admitted now?

        Health-aware routing uses this to steer traffic away from sources
        whose breaker is open (without consuming the probe slot).
        """
        with self._lock:
            if self.state is CircuitState.CLOSED:
                return True
            if self.state is CircuitState.HALF_OPEN:
                return not self._probe_in_flight
            return (
                time.monotonic() - self._opened_at >= self.reset_timeout
                and not self._probe_in_flight
            )

    # -- outcome reporting -------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            if self.state is CircuitState.HALF_OPEN:
                self.state = CircuitState.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._failures += 1
            if self.state is CircuitState.HALF_OPEN or self._failures >= self.failure_threshold:
                self.state = CircuitState.OPEN
                self._opened_at = time.monotonic()

    # -- observability -----------------------------------------------------

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    @property
    def open_seconds(self) -> float:
        """How long the breaker has been open (0 when closed)."""
        with self._lock:
            if self.state is CircuitState.CLOSED:
                return 0.0
            return time.monotonic() - self._opened_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self.state.value})"


class BreakerRegistry:
    """Per-data-source circuit breakers, keyed by route target.

    Created lazily: the first attempt against a source materializes its
    breaker, so resources registered at runtime just work.
    """

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_policy(cls, policy: ResiliencePolicy) -> "BreakerRegistry":
        return cls(policy.breaker_failure_threshold, policy.breaker_reset_timeout)

    def breaker(self, source: str) -> CircuitBreaker:
        with self._lock:
            existing = self._breakers.get(source)
            if existing is None:
                existing = CircuitBreaker(
                    self.failure_threshold, self.reset_timeout, name=source
                )
                self._breakers[source] = existing
            return existing

    def try_acquire(self, source: str) -> bool:
        return self.breaker(source).try_acquire()

    def record_success(self, source: str) -> None:
        self.breaker(source).record_success()

    def record_failure(self, source: str) -> None:
        self.breaker(source).record_failure()

    def available(self, source: str) -> bool:
        with self._lock:
            existing = self._breakers.get(source)
        return existing.available() if existing is not None else True

    def states(self) -> dict[str, CircuitState]:
        with self._lock:
            return {name: b.state for name, b in sorted(self._breakers.items())}

    def snapshot_rows(self) -> list[tuple[str, str, int, float]]:
        """(source, state, consecutive_failures, open_seconds) per breaker."""
        with self._lock:
            breakers = sorted(self._breakers.items())
        return [
            (name, b.state.value, b.failures, round(b.open_seconds, 3))
            for name, b in breakers
        ]
