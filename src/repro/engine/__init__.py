"""The SQL engine pipeline: context, router, rewriter, executor, merger."""

from .context import StatementContext, build_context
from .executor import (
    ConnectionMode,
    ExecutionEngine,
    ExecutionMetrics,
    ExecutionResult,
)
from .merger import (
    AggregateSpec,
    MaterializedResult,
    MergedResult,
    MergeSpec,
    merge,
)
from .pipeline import EngineResult, Feature, SQLEngine
from .plan import CompiledPlan, ParamRef, PlanCache, compile_plan
from .resilience import (
    BreakerRegistry,
    CircuitBreaker,
    CircuitState,
    ResiliencePolicy,
)
from .rewriter import ExecutionUnit, RewriteResult, rewrite
from .router import RouteResult, RouteUnit, route

__all__ = [
    "StatementContext",
    "build_context",
    "RouteUnit",
    "RouteResult",
    "route",
    "ExecutionUnit",
    "RewriteResult",
    "rewrite",
    "ConnectionMode",
    "ExecutionEngine",
    "ExecutionMetrics",
    "ExecutionResult",
    "MergeSpec",
    "AggregateSpec",
    "MergedResult",
    "MaterializedResult",
    "merge",
    "SQLEngine",
    "EngineResult",
    "Feature",
    "CompiledPlan",
    "PlanCache",
    "ParamRef",
    "compile_plan",
    "ResiliencePolicy",
    "CircuitBreaker",
    "CircuitState",
    "BreakerRegistry",
]
