"""Automatic execution engine (Section VI-D) with a resilience layer.

Balances data-source connections, memory and concurrency:

- Units are grouped by physical data source.
- Per data source, θ = ⌈NumOfSQL / MaxCon⌉ decides the connection mode:
  θ > 1 forces CONNECTION_STRICTLY (each connection executes several SQLs
  serially, results loaded into memory — memory merger); θ = 1 allows
  MEMORY_STRICTLY (one connection per SQL, streaming cursors — stream
  merger).
- Deadlock avoidance: when a query needs several connections at once, the
  whole batch is acquired atomically under the data source's acquisition
  lock. Per the paper we skip the lock when only one connection is needed
  and in connection-strictly mode (connections are released as soon as
  results are memory-loaded, so circular waits are impossible).
- Execution units run in parallel on a shared worker pool; per-unit event
  hooks feed transactions and monitoring.

Resilience (opt-in via :class:`ResiliencePolicy`):

- Each execution unit runs under a retry loop: transient errors are
  retried with exponential backoff + full jitter, re-acquiring a fresh
  connection when the old one was dropped. Reads always qualify; writes
  only in autocommit mode with ``retry_writes``; writes inside an open
  distributed transaction are never retried.
- A per-statement deadline budget bounds the total time spent including
  backoff sleeps; exceeding it raises :class:`DeadlineExceededError`.
- Per-data-source circuit breakers (keyed by route target) gate every
  attempt; consecutive failures trip only the sick source's breaker.
- With a health check attached (Governor's detector), broadcast reads
  skip DOWN sources and return partial results flagged as such, while
  writes to a DOWN source fail fast with a clear error.
"""

from __future__ import annotations

import enum
import math
import random
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..exceptions import (
    CircuitBreakerOpenError,
    DataSourceUnavailableError,
    DeadlineExceededError,
    ExecutionError,
)
from ..session import activate, current_session
from ..storage import Connection, DataSource
from .merger import MaterializedResult, ShardResult
from .resilience import BreakerRegistry, ResiliencePolicy
from .rewriter import ExecutionUnit

if TYPE_CHECKING:
    from ..observability import Observability
    from ..observability.trace import Span, Trace


class ConnectionMode(enum.Enum):
    MEMORY_STRICTLY = "memory_strictly"
    CONNECTION_STRICTLY = "connection_strictly"


@dataclass
class ExecutionResult:
    """Per-shard results plus bookkeeping for the caller."""

    results: list[ShardResult] = field(default_factory=list)
    update_count: int = 0
    modes: dict[str, ConnectionMode] = field(default_factory=dict)
    #: run these once the merged result has been fully consumed
    finalizers: list[Callable[[], None]] = field(default_factory=list)
    #: True when DOWN sources were skipped (graceful degradation)
    partial_results: bool = False
    #: data sources whose units were skipped or soft-failed
    skipped_sources: list[str] = field(default_factory=list)

    def release(self) -> None:
        finalizers, self.finalizers = self.finalizers, []
        for finalizer in finalizers:
            finalizer()


@dataclass
class ExecutionMetrics:
    """Counters exposed for monitoring and tests."""

    statements: int = 0
    memory_strictly: int = 0
    connection_strictly: int = 0
    # resilience counters
    retries: int = 0
    reroutes: int = 0
    timeouts: int = 0
    giveups: int = 0
    failed_units: int = 0
    degraded_statements: int = 0
    skipped_units: int = 0
    breaker_rejections: int = 0
    # work-stealing fan-out counters
    queued_tasks: int = 0
    steals: int = 0
    stolen_tasks: int = 0
    # statement-pipeline counters
    pipeline_batches: int = 0
    pipelined_statements: int = 0
    #: per data source breakdown: {source: {"retries"|"failures"|...: n}}
    per_source: dict[str, dict[str, int]] = field(default_factory=dict)

    def bump(self, source: str, key: str) -> None:
        by_key = self.per_source.setdefault(source, {})
        by_key[key] = by_key.get(key, 0) + 1

    def snapshot(self) -> dict[str, int]:
        return {
            "statements": self.statements,
            "memory_strictly": self.memory_strictly,
            "connection_strictly": self.connection_strictly,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "timeouts": self.timeouts,
            "giveups": self.giveups,
            "failed_units": self.failed_units,
            "degraded_statements": self.degraded_statements,
            "skipped_units": self.skipped_units,
            "breaker_rejections": self.breaker_rejections,
            "queued_tasks": self.queued_tasks,
            "steals": self.steals,
            "stolen_tasks": self.stolen_tasks,
            "pipeline_batches": self.pipeline_batches,
            "pipelined_statements": self.pipelined_statements,
        }

    def families(self) -> list[tuple[str, str, str, list[tuple[dict[str, str], float]]]]:
        """Metrics-registry collector: expose the counters on pull.

        Keeps these plain ints on the hot path (no registry lock per
        statement) while ``SHOW METRICS`` / the Prometheus exporter still
        see them — one source of truth, read-through.
        """
        families = [
            (
                f"executor_{key}_total",
                "counter",
                f"execution engine {key.replace('_', ' ')}",
                [({}, float(value))],
            )
            for key, value in self.snapshot().items()
        ]
        by_key: dict[str, list[tuple[dict[str, str], float]]] = {}
        for source in sorted(self.per_source):
            for key, value in sorted(self.per_source[source].items()):
                by_key.setdefault(key, []).append(({"source": source}, float(value)))
        for key in sorted(by_key):
            families.append(
                (
                    f"executor_source_{key}_total",
                    "counter",
                    f"per data source {key.replace('_', ' ')}",
                    by_key[key],
                )
            )
        return families


#: event hook signature: (event, payload) — events: "execute", "mode",
#: "retry", "giveup", "timeout", "degraded", "reroute".
EventListener = Callable[[str, dict[str, Any]], None]


class ExecutionEngine:
    """Executes rewritten units against the fleet of data sources."""

    def __init__(
        self,
        data_sources: Mapping[str, DataSource],
        max_connections_per_query: int = 1,
        worker_threads: int = 32,
        resilience: ResiliencePolicy | None = None,
        health_check: Callable[[str], bool] | None = None,
    ):
        if max_connections_per_query < 1:
            raise ExecutionError("max_connections_per_query must be >= 1")
        self.data_sources = data_sources if isinstance(data_sources, dict) else dict(data_sources)
        self.max_connections_per_query = max_connections_per_query
        self.metrics = ExecutionMetrics()
        self.listeners: list[EventListener] = []
        self._pool = ThreadPoolExecutor(max_workers=worker_threads, thread_name_prefix="ss-exec")
        self._closed = False
        self._close_lock = threading.Lock()
        #: cap on workers participating in one statement's work-stealing
        #: fan-out (worker 0 is always the calling thread)
        self.fanout_workers = 8
        self.resilience: ResiliencePolicy | None = None
        self.breakers: BreakerRegistry | None = None
        self.health_check = health_check
        #: attached by the runtime/pipeline; None = no metrics/trace cost
        self.observability: "Observability | None" = None
        self._retry_rng = random.Random(0)
        self._rng_lock = threading.Lock()
        if resilience is not None:
            self.enable_resilience(resilience)

    def enable_resilience(self, policy: ResiliencePolicy) -> None:
        """Attach (or replace) the resilience policy + per-source breakers."""
        self.resilience = policy
        self.breakers = BreakerRegistry.from_policy(policy)
        self._retry_rng = random.Random(policy.seed if policy.seed is not None else 0)

    def set_health_check(self, health_check: Callable[[str], bool] | None) -> None:
        """Wire the Governor's health view (name -> is UP) into execution."""
        self.health_check = health_check

    def close(self) -> None:
        """Idempotent shutdown, safe while work is in flight.

        Repeat calls are no-ops. Statements whose work-stealing scheduler
        is mid-flight drain their deques: tasks not yet started fail with
        a clear "engine is closed" error instead of hanging, and new
        submissions are rejected at the door.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=False)

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> "Future[Any]":
        """Run work on the engine's shared worker pool (e.g. federation
        materialization fan-out).

        The submitting side's session is captured here and re-activated
        on whichever pool thread runs ``fn``, so session state (causal
        tokens, primary pinning, guards) survives the handoff.
        """
        if self._closed:
            raise ExecutionError("execution engine is closed; rejecting new work")
        session = current_session()

        def run() -> Any:
            with activate(session):
                return fn(*args, **kwargs)

        return self._pool.submit(run)

    def add_listener(self, listener: EventListener) -> None:
        self.listeners.append(listener)

    def _emit(self, event: str, **payload: Any) -> None:
        for listener in self.listeners:
            listener(event, payload)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def execute(
        self,
        units: Sequence[ExecutionUnit],
        is_query: bool,
        held_connections: Mapping[str, Connection] | None = None,
        route_type: str = "",
        trace: "Trace | None" = None,
        parent_span: "Span | None" = None,
        sources: Mapping[str, DataSource] | None = None,
        heat: Any = None,
    ) -> ExecutionResult:
        """Run all units; group per data source and pick connection modes.

        ``held_connections`` carries the per-data-source connections pinned
        by an open distributed transaction: statements inside a transaction
        must reuse them (and are therefore serial per data source).
        ``route_type`` lets the resilience layer know when a multi-source
        read is a broadcast that may gracefully degrade. When ``trace`` is
        given, one ``storage`` span per unit (child of ``parent_span``) is
        allocated here, in routing order on the calling thread — worker
        scheduling never changes span ids. ``sources`` pins the statement
        to one metadata snapshot's immutable data-source view, so a
        concurrent UNREGISTER RESOURCE cannot yank a source out from under
        an in-flight statement; None falls back to the live map.
        ``heat`` is the workload tracker's per-statement sample carrier
        (``WorkloadIntelligence.begin_statement``): when present, each
        completed unit reports its wall time, cursor and row count to
        ``heat.unit_done`` for shard-heat accounting. None (the unsampled
        majority) costs one comparison per unit.
        """
        if self._closed:
            raise ExecutionError("execution engine is closed; rejecting new work")
        deadline = self._statement_deadline()
        result = ExecutionResult()
        units = list(units)
        sources_map = sources if sources is not None else self.data_sources

        allow_partial = (
            self.resilience is not None
            and self.resilience.allow_partial_broadcast
            and is_query
            and held_connections is None
            and route_type in ("standard", "broadcast", "cartesian")
            and len(units) > 1
        )
        units = self._apply_health_filter(
            units, is_query, allow_partial, route_type, result, sources_map
        )

        spans: dict[int, "Span"] | None = None
        if trace is not None:
            spans = {
                id(unit): trace.start_span(
                    "storage",
                    parent=parent_span,
                    data_source=unit.data_source,
                    sql=unit.sql,
                )
                for unit in units
            }

        # Fast path: one unit on one source runs on the calling thread —
        # the dominant OLTP case (point selects / PK writes), where worker
        # dispatch would double the per-statement cost.
        if len(units) == 1:
            unit = units[0]
            span = spans[id(unit)] if spans is not None else None
            pinned = (held_connections or {}).get(unit.data_source)
            if pinned is not None:
                if span is not None:
                    span.attributes["mode"] = ConnectionMode.CONNECTION_STRICTLY.value
                t0 = time.perf_counter() if heat is not None else 0.0
                cursor = self._run_attempts(
                    unit.data_source,
                    lambda: self._traced(pinned, unit, span),
                    is_query=is_query,
                    pinned=pinned,
                    deadline=deadline,
                    span=span,
                )
                result.modes[unit.data_source] = ConnectionMode.CONNECTION_STRICTLY
                if is_query:
                    rows = cursor.fetchall()
                    if span is not None:
                        span.attributes["rows"] = len(rows)
                    if heat is not None:
                        heat.unit_done(unit, time.perf_counter() - t0, cursor, len(rows))
                    result.results.append(MaterializedResult(cursor.columns, rows))
                else:
                    result.update_count += max(cursor.rowcount, 0)
                    if span is not None:
                        span.attributes["rows"] = max(cursor.rowcount, 0)
                    if heat is not None:
                        heat.unit_done(
                            unit, time.perf_counter() - t0, cursor, max(cursor.rowcount, 0)
                        )
                self.metrics.statements += 1
                return result
            source = self._source(unit.data_source, sources_map)
            result.modes[unit.data_source] = ConnectionMode.MEMORY_STRICTLY
            self.metrics.memory_strictly += 1
            if span is not None:
                span.attributes["mode"] = ConnectionMode.MEMORY_STRICTLY.value
            holder: list[Connection | None] = [None]

            def attempt_single() -> Any:
                conn = holder[0]
                if conn is None or conn.closed:
                    if conn is not None:
                        source.pool.release(conn)
                    holder[0] = conn = self._pool_acquire(source, deadline)
                return self._traced(conn, unit, span)

            t0 = time.perf_counter() if heat is not None else 0.0
            try:
                cursor = self._run_attempts(
                    unit.data_source, attempt_single,
                    is_query=is_query, pinned=None, deadline=deadline, span=span,
                )
            except BaseException:
                if holder[0] is not None:
                    source.pool.release(holder[0])
                raise
            connection = holder[0]
            assert connection is not None
            if is_query:
                if span is not None:
                    # traced statements trade streaming for a row count on
                    # the storage span (tracing is opt-in)
                    rows = cursor.fetchall()
                    span.attributes["rows"] = len(rows)
                    if heat is not None:
                        heat.unit_done(unit, time.perf_counter() - t0, cursor, len(rows))
                    result.results.append(MaterializedResult(cursor.columns, rows))
                    source.pool.release(connection)
                else:
                    # streaming: the row count is unknown until the caller
                    # drains the merged iterator (rows=-1 → sink fills it in)
                    if heat is not None:
                        heat.unit_done(unit, time.perf_counter() - t0, cursor, -1)
                    result.results.append(cursor)
                    result.finalizers.append(lambda: source.pool.release(connection))
            else:
                result.update_count += max(cursor.rowcount, 0)
                if span is not None:
                    span.attributes["rows"] = max(cursor.rowcount, 0)
                if heat is not None:
                    heat.unit_done(
                        unit, time.perf_counter() - t0, cursor, max(cursor.rowcount, 0)
                    )
                source.pool.release(connection)
            self.metrics.statements += 1
            return result

        groups: dict[str, list[ExecutionUnit]] = {}
        for unit in units:
            groups.setdefault(unit.data_source, []).append(unit)

        # -- work-stealing fan-out -----------------------------------------
        # Units become fine-grained tasks seeded by data-source group
        # (group g -> worker g mod W): each worker starts out owning one
        # source's units (connection affinity), and an idle worker steals
        # the back half of the deepest deque. A skewed route — one shard
        # holding most of the units — no longer pins the whole statement
        # on one submission chain while other workers idle.
        state_lock = threading.Lock()
        slots: dict[int, Any] = {}  # id(unit) -> ShardResult | update count
        pinned_out: dict[str, tuple[list[ShardResult], int]] = {}
        source_errors: dict[str, BaseException] = {}
        mem_groups: list[tuple[str, Callable[[], None]]] = []

        def fail_source(ds_name: str, exc: BaseException) -> None:
            with state_lock:
                source_errors.setdefault(ds_name, exc)

        tasks: list[tuple[int, Callable[..., None]]] = []  # (seed worker, fn)
        for group_index, (ds_name, group) in enumerate(groups.items()):
            pinned = (held_connections or {}).get(ds_name)
            if pinned is not None:
                result.modes[ds_name] = ConnectionMode.CONNECTION_STRICTLY
                self._annotate_mode(spans, group, ConnectionMode.CONNECTION_STRICTLY)
                tasks.append((group_index, self._make_pinned_task(
                    ds_name, pinned, group, is_query, deadline, spans, heat,
                    pinned_out, fail_source, state_lock)))
                continue
            source = self._source(ds_name, sources_map)
            mode = self._decide_mode(len(group))
            result.modes[ds_name] = mode
            self._annotate_mode(spans, group, mode)
            self._emit("mode", data_source=ds_name, mode=mode.value, sqls=len(group))
            if mode is ConnectionMode.CONNECTION_STRICTLY:
                self.metrics.connection_strictly += 1
                shared: deque[ExecutionUnit] = deque(group)
                for _ in range(min(self.max_connections_per_query, len(group))):
                    tasks.append((group_index, self._make_bucket_task(
                        ds_name, source, shared, is_query, deadline, spans,
                        heat, slots, source_errors, fail_source, state_lock)))
            else:
                self.metrics.memory_strictly += 1
                # acquire the whole batch on the calling thread so the
                # deadlock-avoidance lock ordering is untouched by stealing
                try:
                    connections = self._acquire_batch(
                        source, len(group), deadline=deadline)
                except BaseException as exc:
                    fail_source(ds_name, exc)
                    continue
                released = threading.Event()

                def release_all(source: DataSource = source,
                                connections: list[Connection] = connections,
                                released: threading.Event = released) -> None:
                    if not released.is_set():
                        released.set()
                        source.pool.release_many(connections)

                mem_groups.append((ds_name, release_all))
                for index, unit in enumerate(group):
                    tasks.append((group_index, self._make_streaming_task(
                        ds_name, source, connections, index, unit, is_query,
                        deadline, spans, heat, slots, fail_source, state_lock)))

        scheduler = _StealScheduler(self, tasks)
        scheduler.run()
        if parent_span is not None and scheduler.steals:
            parent_span.attributes["steals"] = scheduler.steals
            parent_span.attributes["stolen_tasks"] = scheduler.stolen_tasks

        # resolve memory-strictly connection lifetimes now that every task
        # has finished: streams outlive the statement, errors release now
        for ds_name, release_all in mem_groups:
            if ds_name in source_errors or not is_query:
                release_all()
            else:
                result.finalizers.append(release_all)

        errors: list[BaseException] = []
        soft_failures: list[tuple[str, BaseException]] = []
        succeeded = 0
        for ds_name, group in groups.items():
            exc = source_errors.get(ds_name)
            if exc is not None:
                if allow_partial and isinstance(
                    exc, (DataSourceUnavailableError, CircuitBreakerOpenError)
                ):
                    soft_failures.append((ds_name, exc))
                else:
                    errors.append(exc)
                continue
            succeeded += 1
            if ds_name in pinned_out:
                shard_results, update_count = pinned_out[ds_name]
                result.results.extend(shard_results)
                result.update_count += update_count
            else:
                for unit in group:
                    out = slots[id(unit)]
                    if is_query:
                        result.results.append(out)
                    else:
                        result.update_count += out
        if errors or (soft_failures and not succeeded):
            result.release()
            raise (errors or [exc for _, exc in soft_failures])[0]
        if soft_failures:
            result.partial_results = True
            for ds_name, exc in soft_failures:
                if ds_name not in result.skipped_sources:
                    result.skipped_sources.append(ds_name)
                # diagnostics invariant: modes only lists sources that
                # actually contributed results — drop the skipped one
                result.modes.pop(ds_name, None)
                self.metrics.skipped_units += 1
                self.metrics.bump(ds_name, "skipped")
                self._emit("degraded", data_source=ds_name, error=exc, route_type=route_type)
            self.metrics.degraded_statements += 1
        self.metrics.statements += len(units)
        return result

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------

    def _statement_deadline(self) -> float | None:
        policy = self.resilience
        if policy is not None and policy.statement_timeout is not None:
            return time.monotonic() + policy.statement_timeout
        return None

    def _check_deadline(self, deadline: float | None, source_name: str) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            self.metrics.timeouts += 1
            self.metrics.bump(source_name, "timeouts")
            self._emit("timeout", data_source=source_name)
            assert self.resilience is not None
            raise DeadlineExceededError(
                f"statement deadline of {self.resilience.statement_timeout * 1000:.0f}ms "
                f"exceeded while executing on {source_name!r}"
            )

    def _source_up(self, name: str) -> bool:
        if self.health_check is not None and not self.health_check(name):
            return False
        if self.breakers is not None and not self.breakers.available(name):
            return False
        return True

    def _apply_health_filter(
        self,
        units: list[ExecutionUnit],
        is_query: bool,
        allow_partial: bool,
        route_type: str,
        result: ExecutionResult,
        sources_map: Mapping[str, DataSource] | None = None,
    ) -> list[ExecutionUnit]:
        """Skip units on DOWN sources for degradable reads; fail writes fast.

        Unicast reads (broadcast-table reads, information queries — any
        source holds the full answer) are *redirected* to a healthy source
        instead: the result stays complete, so no partial flag.
        """
        if self.health_check is None:
            return units
        down = {u.data_source for u in units if not self._source_up(u.data_source)}
        if not down:
            return units
        if not is_query:
            raise DataSourceUnavailableError(
                f"data source(s) {sorted(down)} are DOWN; refusing write (fail fast)"
            )
        if route_type == "unicast" and len(units) == 1:
            candidates = sources_map if sources_map is not None else self.data_sources
            healthy = next(
                (name for name in candidates if self._source_up(name)), None
            )
            if healthy is None:
                raise DataSourceUnavailableError(
                    f"all data sources are DOWN (unicast target {sorted(down)})"
                )
            unit = units[0]
            self._emit("redirect", from_source=unit.data_source, to_source=healthy)
            self.metrics.bump(unit.data_source, "redirects")
            unit.data_source = healthy
            unit.unit.data_source = healthy
            return units
        if not allow_partial:
            return units  # let execution fail naturally (or retries absorb it)
        healthy = [u for u in units if u.data_source not in down]
        if not healthy:
            raise DataSourceUnavailableError(
                f"all routed data sources are DOWN: {sorted(down)}"
            )
        result.partial_results = True
        result.skipped_sources = sorted(down)
        self.metrics.degraded_statements += 1
        self.metrics.skipped_units += len(units) - len(healthy)
        for name in down:
            self.metrics.bump(name, "skipped")
        self._emit("degraded", skipped=sorted(down))
        return healthy

    def _breaker_admit(self, source_name: str) -> None:
        if self.breakers is not None and not self.breakers.try_acquire(source_name):
            self.metrics.breaker_rejections += 1
            self.metrics.bump(source_name, "breaker_rejections")
            raise CircuitBreakerOpenError(
                f"circuit breaker for data source {source_name!r} is open"
            )

    def _record_outcome(self, source_name: str, ok: bool) -> None:
        if self.breakers is not None:
            if ok:
                self.breakers.record_success(source_name)
            else:
                self.breakers.record_failure(source_name)
        if not ok:
            self.metrics.failed_units += 1
            self.metrics.bump(source_name, "failures")
        obs = self.observability
        if obs is not None:
            obs.on_source_attempt(source_name, ok)

    @staticmethod
    def _traced(connection: Connection, unit: ExecutionUnit, span: "Span | None") -> Any:
        """Execute one unit, lending the span to the connection meanwhile.

        The connection attributes latency-model sleeps and lock waits to
        ``trace_span`` while it is set; clearing it restores the class
        default (None), keeping untraced connections attribute-free.
        """
        if span is None:
            return connection.execute(unit.statement, unit.params)
        connection.trace_span = span
        try:
            return connection.execute(unit.statement, unit.params)
        finally:
            del connection.trace_span

    @staticmethod
    def _annotate_mode(
        spans: "dict[int, Span] | None",
        group: list[ExecutionUnit],
        mode: ConnectionMode,
    ) -> None:
        if spans is None:
            return
        for unit in group:
            span = spans.get(id(unit))
            if span is not None:
                span.attributes["mode"] = mode.value

    def _run_attempts(
        self,
        source_name: str,
        attempt: Callable[[], Any],
        *,
        is_query: bool,
        pinned: Connection | None,
        deadline: float | None,
        span: "Span | None" = None,
    ) -> Any:
        """Run one execution unit under the resilience policy.

        ``attempt`` performs a full attempt (including any connection
        (re-)acquisition) and returns the cursor. Retries apply only to
        transient errors, within the deadline budget, and never to writes
        on a pinned (in-transaction) connection. The unit's storage span,
        when present, is finished here — retries become span events and a
        final ``retries`` attribute; a terminal failure closes it with the
        error attached.
        """
        policy = self.resilience
        attempt_no = 0
        try:
            while True:
                self._check_deadline(deadline, source_name)
                self._breaker_admit(source_name)
                try:
                    value = attempt()
                except Exception as exc:
                    self._record_outcome(source_name, ok=False)
                    retryable = policy is not None and policy.is_retryable(exc)
                    allowed = (
                        retryable
                        and policy is not None
                        and attempt_no < policy.max_retries
                        and (is_query or (policy.retry_writes and pinned is None))
                        # A pinned (transactional) statement may only be retried
                        # as a read on a connection that survived the fault.
                        and (pinned is None or (is_query and not pinned.closed))
                    )
                    if not allowed:
                        if retryable:
                            self.metrics.giveups += 1
                            self.metrics.bump(source_name, "giveups")
                            self._emit("giveup", data_source=source_name, error=exc,
                                       attempts=attempt_no + 1)
                        raise
                    attempt_no += 1
                    self.metrics.retries += 1
                    self.metrics.bump(source_name, "retries")
                    self._emit("retry", data_source=source_name, attempt=attempt_no, error=exc)
                    if span is not None:
                        span.add_event(
                            "retry", attempt=attempt_no, error=type(exc).__name__
                        )
                    assert policy is not None
                    with self._rng_lock:
                        delay = policy.backoff(attempt_no, self._retry_rng)
                    if deadline is not None:
                        delay = min(delay, max(0.0, deadline - time.monotonic()))
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._record_outcome(source_name, ok=True)
                if span is not None:
                    if attempt_no:
                        span.attributes["retries"] = attempt_no
                    span.finish()
                return value
        except BaseException as terminal:
            if span is not None:
                if attempt_no:
                    span.attributes["retries"] = attempt_no
                span.finish(error=terminal)
            raise

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------

    def _decide_mode(self, num_sqls: int) -> ConnectionMode:
        theta = math.ceil(num_sqls / self.max_connections_per_query)
        return ConnectionMode.CONNECTION_STRICTLY if theta > 1 else ConnectionMode.MEMORY_STRICTLY

    def _source(self, name: str, sources: Mapping[str, DataSource] | None = None) -> DataSource:
        lookup = sources if sources is not None else self.data_sources
        try:
            return lookup[name]
        except KeyError:
            raise ExecutionError(f"unknown data source {name!r}") from None

    def _run_pinned(
        self,
        connection: Connection,
        group: list[ExecutionUnit],
        is_query: bool,
        deadline: float | None = None,
        spans: "dict[int, Span] | None" = None,
        heat: Any = None,
    ) -> tuple[list[ShardResult], int]:
        """Transactional path: all units run serially on the pinned connection."""
        results: list[ShardResult] = []
        update_count = 0
        for unit in group:
            span = spans.get(id(unit)) if spans is not None else None
            t0 = time.perf_counter() if heat is not None else 0.0
            cursor = self._run_attempts(
                unit.data_source,
                lambda unit=unit, span=span: self._traced(connection, unit, span),
                is_query=is_query, pinned=connection, deadline=deadline, span=span,
            )
            self._emit("execute", data_source=unit.data_source, unit=unit)
            if is_query:
                rows = cursor.fetchall()
                if span is not None:
                    span.attributes["rows"] = len(rows)
                if heat is not None:
                    heat.unit_done(unit, time.perf_counter() - t0, cursor, len(rows))
                results.append(MaterializedResult(cursor.columns, rows))
            else:
                update_count += max(cursor.rowcount, 0)
                if span is not None:
                    span.attributes["rows"] = max(cursor.rowcount, 0)
                if heat is not None:
                    heat.unit_done(
                        unit, time.perf_counter() - t0, cursor, max(cursor.rowcount, 0)
                    )
        return results, update_count

    _CLOSED_IN_FLIGHT = "execution engine closed while statement was in flight"

    def _make_pinned_task(
        self,
        ds_name: str,
        connection: Connection,
        group: list[ExecutionUnit],
        is_query: bool,
        deadline: float | None,
        spans: "dict[int, Span] | None",
        heat: Any,
        pinned_out: dict[str, tuple[list[ShardResult], int]],
        fail_source: Callable[[str, BaseException], None],
        state_lock: threading.Lock,
    ) -> Callable[..., None]:
        """One task per pinned (transactional) group: units stay serial on
        the held connection, whichever worker picks the task up."""

        def task(cancelled: bool = False) -> None:
            if cancelled:
                fail_source(ds_name, ExecutionError(self._CLOSED_IN_FLIGHT))
                return
            try:
                out = self._run_pinned(
                    connection, group, is_query, deadline, spans, heat)
                with state_lock:
                    pinned_out[ds_name] = out
            except BaseException as exc:
                fail_source(ds_name, exc)

        return task

    def _make_bucket_task(
        self,
        ds_name: str,
        source: DataSource,
        shared: "deque[ExecutionUnit]",
        is_query: bool,
        deadline: float | None,
        spans: "dict[int, Span] | None",
        heat: Any,
        slots: dict[int, Any],
        source_errors: dict[str, BaseException],
        fail_source: Callable[[str, BaseException], None],
        state_lock: threading.Lock,
    ) -> Callable[..., None]:
        """θ > 1 (connection-strictly): one connection, several SQLs,
        memory-loaded results.

        Each bucket task pulls units off the source's *shared* deque until
        it runs dry, so a slow unit no longer strands its statically
        assigned bucket-mates — siblings (or thieves) drain them. No
        acquisition lock: connections are released as soon as results are
        loaded, so two queries cannot deadlock on this path.
        """

        def task(cancelled: bool = False) -> None:
            if cancelled:
                fail_source(ds_name, ExecutionError(self._CLOSED_IN_FLIGHT))
                return
            holder: list[Connection] | None = None
            try:
                while True:
                    with state_lock:
                        if ds_name in source_errors:
                            return
                    try:
                        unit = shared.popleft()
                    except IndexError:
                        return
                    if holder is None:
                        # lazy acquire: a bucket whose units were all taken
                        # by faster siblings never checks out a connection
                        holder = [self._pool_acquire(source, deadline)]
                    span = spans.get(id(unit)) if spans is not None else None

                    def attempt(unit: ExecutionUnit = unit, span=span,
                                holder: list[Connection] = holder) -> Any:
                        if holder[0].closed:
                            source.pool.release(holder[0])
                            holder[0] = self._pool_acquire(source, deadline)
                        return self._traced(holder[0], unit, span)

                    t0 = time.perf_counter() if heat is not None else 0.0
                    cursor = self._run_attempts(
                        ds_name, attempt,
                        is_query=is_query, pinned=None, deadline=deadline,
                        span=span,
                    )
                    self._emit("execute", data_source=ds_name, unit=unit)
                    if is_query:
                        rows = cursor.fetchall()
                        if span is not None:
                            span.attributes["rows"] = len(rows)
                        if heat is not None:
                            heat.unit_done(
                                unit, time.perf_counter() - t0, cursor, len(rows))
                        with state_lock:
                            slots[id(unit)] = MaterializedResult(cursor.columns, rows)
                    else:
                        count = max(cursor.rowcount, 0)
                        if span is not None:
                            span.attributes["rows"] = count
                        if heat is not None:
                            heat.unit_done(
                                unit, time.perf_counter() - t0, cursor, count)
                        with state_lock:
                            slots[id(unit)] = count
            except BaseException as exc:
                fail_source(ds_name, exc)
            finally:
                if holder is not None:
                    source.pool.release(holder[0])

        return task

    def _make_streaming_task(
        self,
        ds_name: str,
        source: DataSource,
        connections: list[Connection],
        index: int,
        unit: ExecutionUnit,
        is_query: bool,
        deadline: float | None,
        spans: "dict[int, Span] | None",
        heat: Any,
        slots: dict[int, Any],
        fail_source: Callable[[str, BaseException], None],
        state_lock: threading.Lock,
    ) -> Callable[..., None]:
        """θ = 1 (memory-strictly): one pre-acquired connection per SQL,
        streaming cursor (stream merger); one task per unit."""

        def task(cancelled: bool = False) -> None:
            if cancelled:
                fail_source(ds_name, ExecutionError(self._CLOSED_IN_FLIGHT))
                return
            span = spans.get(id(unit)) if spans is not None else None
            try:
                cursor = self._execute_streaming(
                    source, connections, index, unit, is_query, deadline,
                    span, heat)
                with state_lock:
                    slots[id(unit)] = (
                        cursor if is_query else max(cursor.rowcount, 0))
            except BaseException as exc:
                fail_source(ds_name, exc)

        return task

    def _execute_streaming(
        self,
        source: DataSource,
        connections: list[Connection],
        index: int,
        unit: ExecutionUnit,
        is_query: bool = True,
        deadline: float | None = None,
        span: "Span | None" = None,
        heat: Any = None,
    ):
        def attempt() -> Any:
            if connections[index].closed:
                source.pool.release(connections[index])
                connections[index] = self._pool_acquire(source, deadline)
            return self._traced(connections[index], unit, span)

        t0 = time.perf_counter() if heat is not None else 0.0
        cursor = self._run_attempts(
            unit.data_source, attempt, is_query=is_query, pinned=None,
            deadline=deadline, span=span,
        )
        self._emit("execute", data_source=unit.data_source, unit=unit)
        if span is not None and is_query:
            # traced statements trade streaming for a row count on the span
            rows = cursor.fetchall()
            span.attributes["rows"] = len(rows)
            if heat is not None:
                heat.unit_done(unit, time.perf_counter() - t0, cursor, len(rows))
            return MaterializedResult(cursor.columns, rows)
        if heat is not None:
            heat.unit_done(
                unit, time.perf_counter() - t0, cursor,
                -1 if is_query else max(cursor.rowcount, 0),
            )
        return cursor

    def _pool_acquire(
        self,
        source: DataSource,
        deadline: float | None,
        timeout: float = 10.0,
    ) -> Connection:
        """Acquire one connection, waiting no longer than the statement's
        remaining deadline budget; out-of-time waits report
        :class:`DeadlineExceededError` instead of pool exhaustion."""
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        try:
            return source.pool.acquire(timeout=timeout)
        except Exception:
            self._check_deadline(deadline, source.name)
            raise

    def _acquire_batch(
        self,
        source: DataSource,
        count: int,
        timeout: float = 10.0,
        deadline: float | None = None,
    ) -> list[Connection]:
        """Atomically acquire ``count`` connections (deadlock avoidance).

        A single connection skips the lock entirely (two queries cannot
        wait on each other over one connection each). When the resilience
        policy set a statement ``deadline``, the wait is capped by the
        remaining budget instead of always blocking the full default —
        a statement out of time reports :class:`DeadlineExceededError`
        promptly rather than sitting on an exhausted pool for 10 s.
        """
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        if count == 1:
            try:
                return [source.pool.acquire(timeout=timeout)]
            except Exception:
                self._check_deadline(deadline, source.name)
                raise
        acquire_by = time.monotonic() + timeout
        while True:
            with source.acquisition_lock:
                batch = source.pool.try_acquire_many(count)
            if batch is not None:
                return batch
            if time.monotonic() >= acquire_by:
                self._check_deadline(deadline, source.name)
                raise ExecutionError(
                    f"could not atomically acquire {count} connections from {source.name!r}"
                )
            time.sleep(0.001)

    # ------------------------------------------------------------------
    # Statement pipelining
    # ------------------------------------------------------------------

    def execute_pipeline(
        self,
        ds_name: str,
        statements: Sequence[tuple[Any, Sequence[Any], bool]],
        held_connections: Mapping[str, Connection] | None = None,
        sources: Mapping[str, DataSource] | None = None,
        trace: "Trace | None" = None,
        parent_span: "Span | None" = None,
    ) -> list[Any]:
        """Fused transaction pipelining: run consecutive single-source
        statements through one connection checkout and one storage round
        trip (:meth:`Connection.execute_pipeline` coalesces the write-I/O
        slice per written table — the group-commit analog).

        ``statements`` holds ``(statement, params, is_query)`` triples.
        Semantics are serial-equivalent: statements run in order on one
        connection, and a mid-batch error propagates after earlier
        statements' effects (and costs) have landed — exactly what the
        serial loop would leave behind, so an enclosing transaction's undo
        log still covers them. No retry loop applies (the batch typically
        carries writes inside an open transaction, which the resilience
        policy never retries); the circuit breaker still gates admission
        and records one outcome for the whole batch.

        Returns one entry per statement: a :class:`MaterializedResult`
        for queries, an int update count for writes.
        """
        if self._closed:
            raise ExecutionError("execution engine is closed; rejecting new work")
        deadline = self._statement_deadline()
        self._check_deadline(deadline, ds_name)
        self._breaker_admit(ds_name)
        if self.health_check is not None and not self._source_up(ds_name):
            raise DataSourceUnavailableError(
                f"data source {ds_name!r} is DOWN; refusing pipelined batch (fail fast)"
            )
        source = self._source(ds_name, sources)
        pinned = (held_connections or {}).get(ds_name)
        connection = pinned if pinned is not None else self._pool_acquire(source, deadline)
        span: "Span | None" = None
        if trace is not None:
            span = trace.start_span(
                "storage_pipeline", parent=parent_span,
                data_source=ds_name, statements=len(statements),
            )
            connection.trace_span = span
        out: list[Any] = []
        try:
            raw = connection.execute_pipeline(
                [(stmt, params) for stmt, params, _ in statements])
            for (_stmt, _params, is_query), res in zip(statements, raw):
                if is_query:
                    out.append(MaterializedResult(list(res.columns), list(res.rows)))
                else:
                    out.append(max(res.rowcount, 0))
        except BaseException as exc:
            self._record_outcome(ds_name, ok=False)
            if span is not None:
                span.finish(error=exc)
            raise
        finally:
            if span is not None:
                del connection.trace_span
            if pinned is None:
                source.pool.release(connection)
        self._record_outcome(ds_name, ok=True)
        if span is not None:
            span.finish()
        self.metrics.statements += len(statements)
        self.metrics.pipeline_batches += 1
        self.metrics.pipelined_statements += len(statements)
        self._emit("pipeline", data_source=ds_name, statements=len(statements))
        return out


class _StealScheduler:
    """Work-stealing batch scheduler for one multi-unit statement.

    Tasks are seeded by data-source group (group *g* lands on worker
    *g mod W*), so each worker starts out owning one source's units —
    connection affinity — while an idle worker steals the back half of
    the deepest deque. The calling thread always participates as worker
    0: even with the shared pool saturated by concurrent statements the
    batch makes progress on its own thread (helpers are best-effort
    accelerators), which removes the nested-submit starvation the old
    per-group future chain was exposed to.

    ``run`` returns once every task has executed — or been drained with
    ``cancelled=True`` because the engine closed mid-flight.
    """

    __slots__ = ("engine", "session", "deques", "lock", "remaining", "done",
                 "steals", "stolen_tasks")

    def __init__(self, engine: ExecutionEngine,
                 tasks: list[tuple[int, Callable[..., None]]]):
        workers = max(1, min(len(tasks), engine.fanout_workers))
        self.engine = engine
        #: the statement's session, captured on the calling thread; helper
        #: workers resume it so stolen tasks keep causal tokens, primary
        #: pinning and transaction pinning attributed to the right session
        self.session = current_session()
        self.deques: list[deque[Callable[..., None]]] = [
            deque() for _ in range(workers)
        ]
        for seed, fn in tasks:
            self.deques[seed % workers].append(fn)
        self.lock = threading.Lock()
        self.remaining = len(tasks)
        self.done = threading.Event()
        self.steals = 0
        self.stolen_tasks = 0
        engine.metrics.queued_tasks += len(tasks)

    def run(self) -> None:
        if not self.remaining:
            self.done.set()
            return
        for index in range(1, len(self.deques)):
            try:
                self.engine._pool.submit(self._helper_work, index)
            except RuntimeError:
                # pool already shut down: worker 0 drains everything alone
                break
        self._work(0)
        self.done.wait()

    def _helper_work(self, me: int) -> None:
        """Pool-thread entry: resume the statement's session, then work.

        Worker 0 is the calling thread and is already in the session's
        context; every helper crosses a thread boundary and must restore
        it explicitly before touching any unit."""
        with activate(self.session):
            self._work(me)

    def _work(self, me: int) -> None:
        my = self.deques[me]
        while True:
            if self.engine._closed:
                self._drain_closed()
                return
            task: Callable[..., None] | None = None
            with self.lock:
                if my:
                    task = my.popleft()
                else:
                    victim: deque[Callable[..., None]] | None = None
                    depth = 0
                    for dq in self.deques:
                        if dq is not my and len(dq) > depth:
                            victim, depth = dq, len(dq)
                    if victim is not None:
                        half = (depth + 1) // 2
                        stolen = [victim.pop() for _ in range(half)]
                        stolen.reverse()  # keep the stolen slice in FIFO order
                        my.extend(stolen)
                        self.steals += 1
                        self.stolen_tasks += half
                        self.engine.metrics.steals += 1
                        self.engine.metrics.stolen_tasks += half
                        task = my.popleft()
            if task is None:
                return
            self._finish(task, cancelled=False)

    def _drain_closed(self) -> None:
        """Engine closed mid-statement: fail every queued task fast so
        ``run`` can return with a clear error instead of hanging."""
        with self.lock:
            drained: list[Callable[..., None]] = []
            for dq in self.deques:
                drained.extend(dq)
                dq.clear()
        for fn in drained:
            self._finish(fn, cancelled=True)

    def _finish(self, fn: Callable[..., None], cancelled: bool) -> None:
        try:
            fn(cancelled=cancelled)
        finally:
            with self.lock:
                self.remaining -= 1
                if self.remaining == 0:
                    self.done.set()
