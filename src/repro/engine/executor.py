"""Automatic execution engine (Section VI-D).

Balances data-source connections, memory and concurrency:

- Units are grouped by physical data source.
- Per data source, θ = ⌈NumOfSQL / MaxCon⌉ decides the connection mode:
  θ > 1 forces CONNECTION_STRICTLY (each connection executes several SQLs
  serially, results loaded into memory — memory merger); θ = 1 allows
  MEMORY_STRICTLY (one connection per SQL, streaming cursors — stream
  merger).
- Deadlock avoidance: when a query needs several connections at once, the
  whole batch is acquired atomically under the data source's acquisition
  lock. Per the paper we skip the lock when only one connection is needed
  and in connection-strictly mode (connections are released as soon as
  results are memory-loaded, so circular waits are impossible).
- Execution units run in parallel on a shared worker pool; per-unit event
  hooks feed transactions and monitoring.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..exceptions import ExecutionError
from ..storage import Connection, DataSource
from .merger import MaterializedResult, ShardResult
from .rewriter import ExecutionUnit


class ConnectionMode(enum.Enum):
    MEMORY_STRICTLY = "memory_strictly"
    CONNECTION_STRICTLY = "connection_strictly"


@dataclass
class ExecutionResult:
    """Per-shard results plus bookkeeping for the caller."""

    results: list[ShardResult] = field(default_factory=list)
    update_count: int = 0
    modes: dict[str, ConnectionMode] = field(default_factory=dict)
    #: run these once the merged result has been fully consumed
    finalizers: list[Callable[[], None]] = field(default_factory=list)

    def release(self) -> None:
        finalizers, self.finalizers = self.finalizers, []
        for finalizer in finalizers:
            finalizer()


@dataclass
class ExecutionMetrics:
    """Counters exposed for monitoring and tests."""

    statements: int = 0
    memory_strictly: int = 0
    connection_strictly: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "statements": self.statements,
            "memory_strictly": self.memory_strictly,
            "connection_strictly": self.connection_strictly,
        }


#: event hook signature: (event, payload) — events: "execute", "mode".
EventListener = Callable[[str, dict[str, Any]], None]


class ExecutionEngine:
    """Executes rewritten units against the fleet of data sources."""

    def __init__(
        self,
        data_sources: Mapping[str, DataSource],
        max_connections_per_query: int = 1,
        worker_threads: int = 32,
    ):
        if max_connections_per_query < 1:
            raise ExecutionError("max_connections_per_query must be >= 1")
        self.data_sources = data_sources if isinstance(data_sources, dict) else dict(data_sources)
        self.max_connections_per_query = max_connections_per_query
        self.metrics = ExecutionMetrics()
        self.listeners: list[EventListener] = []
        self._pool = ThreadPoolExecutor(max_workers=worker_threads, thread_name_prefix="ss-exec")
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=False)

    def add_listener(self, listener: EventListener) -> None:
        self.listeners.append(listener)

    def _emit(self, event: str, **payload: Any) -> None:
        for listener in self.listeners:
            listener(event, payload)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def execute(
        self,
        units: Sequence[ExecutionUnit],
        is_query: bool,
        held_connections: Mapping[str, Connection] | None = None,
    ) -> ExecutionResult:
        """Run all units; group per data source and pick connection modes.

        ``held_connections`` carries the per-data-source connections pinned
        by an open distributed transaction: statements inside a transaction
        must reuse them (and are therefore serial per data source).
        """
        groups: dict[str, list[ExecutionUnit]] = {}
        for unit in units:
            groups.setdefault(unit.data_source, []).append(unit)

        result = ExecutionResult()

        # Fast path: one unit on one source runs on the calling thread —
        # the dominant OLTP case (point selects / PK writes), where worker
        # dispatch would double the per-statement cost.
        if len(units) == 1:
            unit = units[0]
            pinned = (held_connections or {}).get(unit.data_source)
            if pinned is not None:
                cursor = pinned.execute(unit.statement, unit.params)
                result.modes[unit.data_source] = ConnectionMode.CONNECTION_STRICTLY
                if is_query:
                    result.results.append(
                        MaterializedResult(cursor.columns, cursor.fetchall())
                    )
                else:
                    result.update_count += max(cursor.rowcount, 0)
                self.metrics.statements += 1
                return result
            source = self._source(unit.data_source)
            result.modes[unit.data_source] = ConnectionMode.MEMORY_STRICTLY
            self.metrics.memory_strictly += 1
            connection = source.pool.acquire()
            try:
                cursor = connection.execute(unit.statement, unit.params)
            except BaseException:
                source.pool.release(connection)
                raise
            if is_query:
                result.results.append(cursor)
                result.finalizers.append(lambda: source.pool.release(connection))
            else:
                result.update_count += max(cursor.rowcount, 0)
                source.pool.release(connection)
            self.metrics.statements += 1
            return result

        futures: list[Future] = []
        for ds_name, group in groups.items():
            source = self._source(ds_name)
            pinned = (held_connections or {}).get(ds_name)
            if pinned is not None:
                futures.append(self._pool.submit(self._run_pinned, pinned, group, is_query))
                result.modes[ds_name] = ConnectionMode.CONNECTION_STRICTLY
                continue
            mode = self._decide_mode(len(group))
            result.modes[ds_name] = mode
            self._emit("mode", data_source=ds_name, mode=mode.value, sqls=len(group))
            if mode is ConnectionMode.CONNECTION_STRICTLY:
                self.metrics.connection_strictly += 1
                futures.append(self._pool.submit(self._run_connection_strictly, source, group, is_query))
            else:
                self.metrics.memory_strictly += 1
                futures.append(
                    self._pool.submit(self._run_memory_strictly, source, group, is_query, result)
                )

        errors: list[BaseException] = []
        for future in futures:
            try:
                shard_results, update_count = future.result()
                result.results.extend(shard_results)
                result.update_count += update_count
            except BaseException as exc:  # propagate after draining all futures
                errors.append(exc)
        if errors:
            result.release()
            raise errors[0]
        self.metrics.statements += len(units)
        return result

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------

    def _decide_mode(self, num_sqls: int) -> ConnectionMode:
        theta = math.ceil(num_sqls / self.max_connections_per_query)
        return ConnectionMode.CONNECTION_STRICTLY if theta > 1 else ConnectionMode.MEMORY_STRICTLY

    def _source(self, name: str) -> DataSource:
        try:
            return self.data_sources[name]
        except KeyError:
            raise ExecutionError(f"unknown data source {name!r}") from None

    def _run_pinned(
        self, connection: Connection, group: list[ExecutionUnit], is_query: bool
    ) -> tuple[list[ShardResult], int]:
        """Transactional path: all units run serially on the pinned connection."""
        results: list[ShardResult] = []
        update_count = 0
        for unit in group:
            cursor = connection.execute(unit.statement, unit.params)
            self._emit("execute", data_source=unit.data_source, unit=unit)
            if is_query:
                results.append(MaterializedResult(cursor.columns, cursor.fetchall()))
            else:
                update_count += max(cursor.rowcount, 0)
        return results, update_count

    def _run_connection_strictly(
        self, source: DataSource, group: list[ExecutionUnit], is_query: bool
    ) -> tuple[list[ShardResult], int]:
        """θ > 1: few connections, several SQLs each, memory-loaded results.

        No acquisition lock: connections are released as soon as results
        are loaded, so two queries cannot deadlock on this path.
        """
        connection_count = min(self.max_connections_per_query, len(group))
        buckets: list[list[ExecutionUnit]] = [[] for _ in range(connection_count)]
        for i, unit in enumerate(group):
            buckets[i % connection_count].append(unit)

        def run_bucket(bucket: list[ExecutionUnit]) -> tuple[list[ShardResult], int]:
            connection = source.pool.acquire()
            results: list[ShardResult] = []
            update_count = 0
            try:
                for unit in bucket:
                    cursor = connection.execute(unit.statement, unit.params)
                    self._emit("execute", data_source=unit.data_source, unit=unit)
                    if is_query:
                        results.append(MaterializedResult(cursor.columns, cursor.fetchall()))
                    else:
                        update_count += max(cursor.rowcount, 0)
            finally:
                source.pool.release(connection)
            return results, update_count

        if connection_count == 1:
            return run_bucket(buckets[0])
        futures = [self._pool.submit(run_bucket, bucket) for bucket in buckets]
        results: list[ShardResult] = []
        update_count = 0
        for future in futures:
            shard_results, count = future.result()
            results.extend(shard_results)
            update_count += count
        return results, update_count

    def _run_memory_strictly(
        self,
        source: DataSource,
        group: list[ExecutionUnit],
        is_query: bool,
        result: ExecutionResult,
    ) -> tuple[list[ShardResult], int]:
        """θ = 1: one connection per SQL, streaming cursors (stream merger)."""
        connections = self._acquire_batch(source, len(group))
        released = threading.Event()

        def release_all() -> None:
            if not released.is_set():
                released.set()
                source.pool.release_many(connections)

        try:
            futures = [
                self._pool.submit(self._execute_streaming, conn, unit)
                for conn, unit in zip(connections, group)
            ]
            shard_results: list[ShardResult] = []
            update_count = 0
            for future in futures:
                cursor = future.result()
                if is_query:
                    shard_results.append(cursor)
                else:
                    update_count += max(cursor.rowcount, 0)
        except BaseException:
            release_all()
            raise
        if is_query:
            result.finalizers.append(release_all)
        else:
            release_all()
        return shard_results, update_count

    def _execute_streaming(self, connection: Connection, unit: ExecutionUnit):
        cursor = connection.execute(unit.statement, unit.params)
        self._emit("execute", data_source=unit.data_source, unit=unit)
        return cursor

    def _acquire_batch(self, source: DataSource, count: int, timeout: float = 10.0) -> list[Connection]:
        """Atomically acquire ``count`` connections (deadlock avoidance).

        A single connection skips the lock entirely (two queries cannot
        wait on each other over one connection each).
        """
        if count == 1:
            return [source.pool.acquire(timeout=timeout)]
        deadline = time.monotonic() + timeout
        while True:
            with source.acquisition_lock:
                batch = source.pool.try_acquire_many(count)
            if batch is not None:
                return batch
            if time.monotonic() >= deadline:
                raise ExecutionError(
                    f"could not atomically acquire {count} connections from {source.name!r}"
                )
            time.sleep(0.001)
