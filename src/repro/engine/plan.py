"""Prepared-statement plan cache: skip parse/route/rewrite on the hot path.

The paper's Figure 16 ablation shows parse/route/rewrite are the dominant
per-statement overhead the middleware adds on top of the databases, and
OLTP workloads (sysbench, TPC-C) execute a tiny set of parameterized
templates over and over. This module compiles one immutable
:class:`CompiledPlan` per SQL text:

- the parsed AST (shared read-only; never mutated after compile),
- the context skeleton (logic tables, alias map),
- the *route template*: which parameter positions / literals feed each
  sharding column (:class:`ParamRef` slots inside ``ShardingValue``s),
- the *rewrite templates*: per data node, the rewritten per-shard AST with
  renumbered parameter slots and the pre-rendered SQL text.

On a cache hit the engine only **binds**: substitute actual parameters
into the condition template, map shard keys to data nodes, and look up
the per-node rewrite template — parser, context build, router and
rewriter (and the per-hit AST clone) are all skipped.

Cacheability rules (see DESIGN.md "Plan cache"):

- only DQL/DML text statements without hint values;
- INSERT bypasses the cache: distributed key generation mutates the AST
  before routing and the batch is split per values-row;
- SELECTs whose LIMIT/OFFSET contain placeholders bypass (pagination
  revision bakes the bound values into the per-shard SQL);
- statements where two predicates on the same sharding column had to be
  intersected bypass (the intersection result depends on bound values);
- any registered :class:`~repro.engine.pipeline.Feature` whose
  ``plan_cache_safe`` flag is False (e.g. encrypt, which rewrites the AST
  in ``on_context``) disables the cache engine-wide until removed.

Invalidation: DDL through the pipeline, DistSQL rule changes
(``ALTER SHARDING ...``, ``REGISTER RESOURCE``, ...), feature add/remove
and ``CLEAR PLAN CACHE`` clear the whole cache (compiles are cheap and
invalidation events are rare; clearing avoids generation-staleness bugs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..cache import LruCache
from ..sharding import ShardingRule, ShardingValue
from ..sql import ast
from ..sql.formatter import format_statement
from .context import StatementContext, build_context
from .merger import MergeSpec
from .rewriter import (
    ExecutionUnit,
    _build_merge_spec,
    _derive_columns,
    _iter_expressions,
    _optimize_stream_merge,
    _rename_tables,
    _revise_pagination,
)
from .router import RouteResult, RouteUnit, route

if TYPE_CHECKING:
    from ..sql.dialects import Dialect


@dataclass(frozen=True)
class ParamRef:
    """Compile-time stand-in for ``params[index]`` inside a condition
    template; the bind step substitutes the actual value."""

    index: int


class UnitTemplate:
    """One data node's precompiled rewrite: immutable AST + param mapping."""

    __slots__ = ("statement", "dialect", "param_order", "sql")

    def __init__(self, statement: ast.Statement, dialect: "Dialect",
                 param_order: tuple[int, ...], sql: str):
        self.statement = statement
        self.dialect = dialect
        self.param_order = param_order
        self.sql = sql


class CompiledPlan:
    """Everything needed to execute one SQL text without re-planning."""

    __slots__ = (
        "sql", "statement", "cacheable", "reason", "fingerprint",
        "logic_tables", "alias_map", "condition_template", "param_count",
        "single_table", "is_select", "hits", "created_at",
        "_templates", "_lock", "_shared_multi",
        "_merge_spec_single", "_merge_spec_multi",
        "_route_memo", "_memo_table_rule",
    )

    def __init__(self, sql: str, statement: ast.Statement | None,
                 cacheable: bool, reason: str = ""):
        self.sql = sql
        self.statement = statement
        self.cacheable = cacheable
        self.reason = reason
        self.fingerprint = ""
        self.logic_tables: list[str] = []
        self.alias_map: dict[str, str] = {}
        self.condition_template: dict[str, dict[str, ShardingValue]] = {}
        self.param_count = 0
        #: lowered logic table for the single-sharded-table fast route
        self.single_table: str | None = None
        self.is_select = isinstance(statement, ast.SelectStatement)
        self.hits = 0
        self.created_at = time.monotonic()
        self._templates: dict[Any, UnitTemplate] = {}
        self._lock = threading.Lock()
        self._shared_multi: ast.SelectStatement | None = None
        self._merge_spec_single: MergeSpec | None = None
        self._merge_spec_multi: MergeSpec | None = None
        #: point-lookup memo: (column, value) -> data nodes, valid for one
        #: TableRule object (identity-checked; rule changes drop the plan
        #: anyway via cache invalidation)
        self._route_memo: dict[tuple[str, Any], list[Any]] = {}
        self._memo_table_rule: Any = None

    # -- bind ------------------------------------------------------------

    def bind_conditions(self, params: tuple[Any, ...]) -> dict[str, dict[str, ShardingValue]]:
        """Substitute actual parameters into the condition template."""
        bound: dict[str, dict[str, ShardingValue]] = {}
        for table, columns in self.condition_template.items():
            table_bound: dict[str, ShardingValue] = {}
            for column, template in columns.items():
                if template.values is not None:
                    table_bound[column] = ShardingValue(column, values=[
                        params[v.index] if type(v) is ParamRef else v
                        for v in template.values
                    ])
                else:
                    low, high = template.range_  # type: ignore[misc]
                    if type(low) is ParamRef:
                        low = params[low.index]
                    if type(high) is ParamRef:
                        high = params[high.index]
                    table_bound[column] = ShardingValue(column, range_=(low, high))
            bound[table] = table_bound
        return bound

    def make_context(self, params: tuple[Any, ...],
                     conditions: dict[str, dict[str, ShardingValue]]) -> StatementContext:
        """Skeleton context for feature hooks and generic routing.

        Shares the immutable statement/alias map; only conditions are
        per-execution. Features running against it must not mutate the
        statement (``plan_cache_safe`` contract).
        """
        assert self.statement is not None
        return StatementContext(
            statement=self.statement,
            sql=self.sql,
            params=params,
            logic_tables=self.logic_tables,
            alias_map=self.alias_map,
            conditions=conditions,
        )

    def route_bound(self, conditions: dict[str, dict[str, ShardingValue]],
                    rule: ShardingRule,
                    context_factory: Callable[[], StatementContext]) -> RouteResult:
        """Shard-key -> data-node mapping, the only routing work on a hit."""
        logic = self.single_table
        if logic is not None and rule.is_sharded(logic):
            table_rule = rule.table_rule(logic)
            table_conditions = conditions.get(logic, {})
            nodes = None
            if len(table_conditions) == 1:
                # Point lookups dominate OLTP; memoize value -> data nodes
                # so repeated keys skip the strategy walk entirely.
                column, value = next(iter(table_conditions.items()))
                values = value.values
                if values is not None and len(values) == 1:
                    if self._memo_table_rule is not table_rule:
                        self._memo_table_rule = table_rule
                        self._route_memo = {}
                    memo = self._route_memo
                    try:
                        nodes = memo.get((column, values[0]))
                        if nodes is None:
                            nodes = table_rule.route(table_conditions)
                            # Sized to cover a full OLTP key space (e.g.
                            # sysbench's 20k ids): entries are a tiny
                            # tuple -> node-list pair, and saturating the
                            # memo at ~40% of the key space forfeits most
                            # of the hot-path win.
                            if len(memo) < 65536:
                                memo[(column, values[0])] = nodes
                    except TypeError:  # unhashable parameter value
                        nodes = None
            if nodes is None:
                nodes = table_rule.route(table_conditions)
            units = [RouteUnit(n.data_source, {logic: n.table}) for n in nodes]
            route_type = "standard"
            if not table_conditions and len(nodes) == len(table_rule.data_nodes):
                route_type = "broadcast"
            return RouteResult(units, route_type)
        # Everything else (binding joins, cartesian, broadcast, unicast)
        # goes through the real router against the skeleton context.
        return route(context_factory(), rule)

    # -- rewrite templates ----------------------------------------------

    def build_units(self, route_result: RouteResult, params: tuple[Any, ...],
                    dialect_of: Callable[[str], "Dialect"],
                    ) -> tuple[list[ExecutionUnit], MergeSpec]:
        """Materialize execution units from per-node rewrite templates."""
        multi = len(route_result.units) > 1
        units: list[ExecutionUnit] = []
        for unit in route_result.units:
            key = (unit.data_source, tuple(sorted(unit.table_map.items())), multi)
            template = self._templates.get(key)
            if template is None:
                template = self._build_template(key, unit, multi, dialect_of)
            exec_params = tuple(params[i] for i in template.param_order)
            units.append(ExecutionUnit(
                unit.data_source, exec_params, template.statement, unit,
                template.dialect, sql=template.sql,
            ))
        return units, self._merge_spec(multi)

    def _build_template(self, key: Any, unit: RouteUnit, multi: bool,
                        dialect_of: Callable[[str], "Dialect"]) -> UnitTemplate:
        with self._lock:
            template = self._templates.get(key)
            if template is not None:
                return template
            base: ast.Statement = self.statement  # type: ignore[assignment]
            if multi and self.is_select:
                base = self._shared_multi_statement()
            statement = ast.clone_statement(base)
            _rename_tables(statement, unit)
            placeholders = [
                node
                for expr in _iter_expressions(statement)
                for node in expr.walk()
                if isinstance(node, ast.Placeholder)
            ]
            param_order = tuple(p.index for p in placeholders)
            for position, placeholder in enumerate(placeholders):
                placeholder.index = position
            dialect = dialect_of(unit.data_source)
            sql = format_statement(statement, dialect)
            # Stable cache key for the storage engine's compiled-plan layer:
            # every execution of this template reuses one storage plan per
            # data node instead of re-interpreting the AST.
            statement.storage_plan_key = sql
            template = UnitTemplate(statement, dialect, param_order, sql)
            self._templates[key] = template
            return template

    def _shared_multi_statement(self) -> ast.SelectStatement:
        """The multi-node SELECT skeleton (derived columns, revised
        pagination, stream-merge ORDER BY) — built once, under _lock."""
        shared = self._shared_multi
        if shared is None:
            logical = self.statement
            assert isinstance(logical, ast.SelectStatement)
            shared = ast.clone_statement(logical)
            assert isinstance(shared, ast.SelectStatement)
            _optimize_stream_merge(shared)
            _derive_columns(shared)
            # No placeholders in LIMIT (cacheability rule), so params are
            # irrelevant for pagination revision and the merge spec.
            _revise_pagination(shared, ())
            self._merge_spec_multi = _build_merge_spec(logical, shared, False, ())
            self._shared_multi = shared
        return shared

    def _merge_spec(self, multi: bool) -> MergeSpec:
        if not self.is_select:
            return MergeSpec(is_query=False, single_node=not multi)
        with self._lock:
            if multi:
                if self._merge_spec_multi is None:
                    self._shared_multi_statement()
                return self._merge_spec_multi  # type: ignore[return-value]
            if self._merge_spec_single is None:
                logical = self.statement
                assert isinstance(logical, ast.SelectStatement)
                self._merge_spec_single = _build_merge_spec(logical, logical, True, ())
            return self._merge_spec_single

    @property
    def template_count(self) -> int:
        return len(self._templates)

    def verify_immutable(self) -> bool:
        """True when the cached AST still matches its compile-time
        fingerprint (test/debug aid guarding the shared-AST invariant)."""
        if self.statement is None:
            return True
        return ast.fingerprint_statement(self.statement) == self.fingerprint


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_plan(sql: str, statement: ast.Statement, rule: ShardingRule) -> CompiledPlan:
    """Compile one parsed statement; returns an uncacheable marker plan
    (negative cache entry) when any cacheability rule fails."""
    category = statement.category
    if category not in ("DQL", "DML"):
        return CompiledPlan(sql, None, False, f"category {category}")
    if isinstance(statement, ast.InsertStatement):
        return CompiledPlan(sql, None, False, "INSERT (key generation / batch split)")
    limit = getattr(statement, "limit", None)
    if limit is not None and _has_placeholder(limit.count, limit.offset):
        return CompiledPlan(sql, None, False, "LIMIT/OFFSET placeholder")

    param_count = 0
    for expr in _iter_expressions(statement):
        for node in expr.walk():
            if isinstance(node, ast.Placeholder):
                param_count = max(param_count, node.index + 1)

    # Template context: placeholders become ParamRef slots so the
    # extracted sharding conditions record *where* each value comes from.
    sentinels = tuple(ParamRef(i) for i in range(param_count))
    try:
        template_context = build_context(statement, sql, sentinels, rule)
    except Exception as exc:  # any template-build failure -> don't cache
        return CompiledPlan(sql, None, False, f"context: {exc}")
    if template_context.merged_conditions:
        # Two predicates on one sharding column were intersected; the
        # intersection depends on bound values, so templates would be
        # wrong for other parameter sets.
        return CompiledPlan(sql, None, False, "intersected sharding conditions")

    plan = CompiledPlan(sql, statement, True)
    plan.fingerprint = ast.fingerprint_statement(statement)
    plan.logic_tables = template_context.logic_tables
    plan.alias_map = template_context.alias_map
    plan.condition_template = template_context.conditions
    plan.param_count = param_count
    sharded = {t.lower(): None for t in plan.logic_tables if rule.is_sharded(t)}
    if len(sharded) == 1:
        plan.single_table = next(iter(sharded))
    return plan


def _has_placeholder(*exprs: ast.Expression | None) -> bool:
    for expr in exprs:
        if expr is None:
            continue
        for node in expr.walk():
            if isinstance(node, ast.Placeholder):
                return True
    return False


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Bounded LRU of :class:`CompiledPlan` keyed by SQL text.

    The cache is additionally keyed by the *metadata plan epoch* (see
    :mod:`repro.metadata`): every entry belongs to ``self.epoch``, and
    invalidation after a rule/resource/feature change is a version
    comparison — :meth:`advance_epoch` clears once per epoch transition,
    and the per-statement :meth:`get`/:meth:`store` guards make stale
    interleavings safe: a statement pinned to an older snapshot can
    neither be served a newer plan nor poison the cache with a plan
    compiled against a superseded rule.
    """

    def __init__(self, capacity: int = 512):
        self._cache: LruCache[str, CompiledPlan] = LruCache(capacity)
        self.enabled = True
        #: metadata plan epoch the cached plans were compiled under
        self.epoch = 0
        # Counters are plain ints mutated under the GIL (lost updates are
        # possible but benign, matching the executor's ExecutionMetrics).
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.invalidations = 0
        self.last_invalidation = ""

    def advance_epoch(self, epoch: int, reason: str) -> None:
        """Adopt a newer metadata plan epoch, dropping every plan.

        Monotonic: an older epoch (a statement pinned to a superseded
        snapshot) never rolls the cache back.
        """
        if epoch > self.epoch:
            self.epoch = epoch
            self.invalidate(reason)

    def get(self, sql: str, epoch: int | None = None) -> CompiledPlan | None:
        if epoch is not None and epoch != self.epoch:
            if epoch > self.epoch:
                # Lazy adoption: a replaced/fresh cache syncs to the
                # statement's snapshot on first use.
                self.advance_epoch(epoch, f"metadata plan epoch {epoch}")
            return None  # older-pinned statement: compile fresh, don't serve
        return self._cache.get(sql)

    def peek(self, sql: str) -> CompiledPlan | None:
        """Diagnostic lookup: no counter or LRU-recency side effects."""
        return self._cache.peek(sql)

    def store(self, plan: CompiledPlan, epoch: int | None = None) -> None:
        if epoch is not None and epoch != self.epoch:
            if epoch > self.epoch:
                self.advance_epoch(epoch, f"metadata plan epoch {epoch}")
            else:
                return  # compiled against a superseded snapshot: drop
        self._cache.put(plan.sql, plan)

    def discard(self, sql: str) -> None:
        self._cache.discard(sql)

    def mark_uncacheable(self, sql: str, reason: str, epoch: int | None = None) -> None:
        """Demote an entry to a negative-cache marker (e.g. after the
        federation fallback proved the route template unusable)."""
        if epoch is not None and epoch < self.epoch:
            return
        self._cache.put(sql, CompiledPlan(sql, None, False, reason))

    def invalidate(self, reason: str) -> None:
        """Clear every plan (DDL / rule change / feature change)."""
        self._cache.clear()
        self.invalidations += 1
        self.last_invalidation = reason

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def evictions(self) -> int:
        return self._cache.evictions

    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.bypasses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "size": len(self._cache),
            "capacity": self._cache.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self._cache.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
            "epoch": self.epoch,
        }

    def snapshot_rows(self) -> list[tuple[Any, ...]]:
        """``SHOW PLAN CACHE`` rows, most-recently-used first."""
        rows = []
        for sql, plan in reversed(self._cache.items()):
            state = "cached" if plan.cacheable else f"bypass: {plan.reason}"
            rows.append((sql, plan.hits, plan.template_count, state))
        return rows

    # -- metrics-registry collector (pull, like ExecutionMetrics) ---------

    def families(self) -> list[tuple[str, str, str, list[tuple[dict[str, str], float]]]]:
        events = {
            "hit": self.hits,
            "miss": self.misses,
            "bypass": self.bypasses,
            "invalidation": self.invalidations,
            "eviction": self._cache.evictions,
        }
        return [
            (
                "engine_plan_cache_events_total",
                "counter",
                "plan cache events by kind",
                [({"event": kind}, float(value)) for kind, value in events.items()],
            ),
            (
                "engine_plan_cache_size",
                "gauge",
                "compiled plans currently cached",
                [({}, float(len(self._cache)))],
            ),
        ]

