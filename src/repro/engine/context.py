"""Statement context: what the router needs to know about a parsed SQL.

The SQL parser produces a bare AST; this module extracts the routing
context (Section III "parsing contexts"): which logic tables are
referenced, the alias map, and — most importantly — the *sharding
conditions*: predicates over sharding columns in a form the strategies
understand (:class:`repro.sharding.ShardingValue`).

For INSERT it also performs distributed key generation: if the table rule
declares a key-generate column and the statement doesn't supply it, the
generated keys are appended *before* routing, because the key may be the
sharding column itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..exceptions import RouteError
from ..sharding import HINT_COLUMN, ShardingRule, ShardingValue
from ..sql import ast


@dataclass
class StatementContext:
    """Everything downstream pipeline stages need about one statement."""

    statement: ast.Statement
    sql: str
    params: tuple[Any, ...]
    #: logic table names as written (original case)
    logic_tables: list[str] = field(default_factory=list)
    #: alias (lower) -> logic table name (lower)
    alias_map: dict[str, str] = field(default_factory=dict)
    #: per logic table (lower): sharding column (lower) -> condition
    conditions: dict[str, dict[str, ShardingValue]] = field(default_factory=dict)
    #: for INSERT: per values-row conditions (router splits the batch)
    insert_row_conditions: list[dict[str, ShardingValue]] = field(default_factory=list)
    #: keys generated for INSERT (column, one value per row), for callers
    generated_keys: tuple[str, list[Any]] | None = None
    hint_values: list[Any] | None = None
    #: True when two predicates on one sharding column were intersected;
    #: the plan cache refuses such statements (the intersection result
    #: depends on the bound parameter values).
    merged_conditions: bool = False

    @property
    def category(self) -> str:
        return self.statement.category

    def conditions_for(self, logic_table: str) -> dict[str, ShardingValue]:
        merged = dict(self.conditions.get(logic_table.lower(), {}))
        if self.hint_values:
            merged[HINT_COLUMN] = ShardingValue(HINT_COLUMN, values=list(self.hint_values))
        return merged


def build_context(
    statement: ast.Statement,
    sql: str,
    params: Sequence[Any],
    rule: ShardingRule,
    hint_values: Sequence[Any] | None = None,
) -> StatementContext:
    """Extract the routing context for one parsed statement."""
    context = StatementContext(
        statement=statement,
        sql=sql,
        params=tuple(params),
        hint_values=list(hint_values) if hint_values else None,
    )
    tables = statement.tables()
    context.logic_tables = [t.name for t in tables if t is not None]
    for ref in tables:
        if ref is None:
            continue
        context.alias_map[ref.exposed_name.lower()] = ref.name.lower()

    if isinstance(statement, ast.InsertStatement):
        _generate_keys(statement, rule, context)
        _extract_insert_conditions(statement, rule, context)
        return context

    where = getattr(statement, "where", None)
    if where is not None:
        _extract_where_conditions(where, rule, context)
    if isinstance(statement, ast.SelectStatement):
        for join in statement.joins:
            if join.condition is not None:
                _extract_where_conditions(join.condition, rule, context, equi_only=True)
    return context


# ---------------------------------------------------------------------------
# WHERE extraction
# ---------------------------------------------------------------------------


def _extract_where_conditions(
    expr: ast.Expression,
    rule: ShardingRule,
    context: StatementContext,
    equi_only: bool = False,
) -> None:
    """Collect sharding conditions from the top-level AND conjunction.

    OR branches are ignored (conservatively routing wider), matching the
    paper's behaviour of broadcast-routing un-analyzable predicates.
    """
    for predicate in _conjuncts(expr):
        if isinstance(predicate, ast.BinaryOp) and predicate.op == "=":
            _note_equality(predicate, rule, context)
        elif equi_only:
            continue
        elif isinstance(predicate, ast.InExpr) and not predicate.negated:
            _note_in(predicate, rule, context)
        elif isinstance(predicate, ast.BetweenExpr) and not predicate.negated:
            _note_between(predicate, rule, context)
        elif isinstance(predicate, ast.BinaryOp) and predicate.op in ("<", ">", "<=", ">="):
            _note_comparison(predicate, rule, context)


def _conjuncts(expr: ast.Expression):
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _sharding_column_of(
    column: ast.ColumnRef, rule: ShardingRule, context: StatementContext
) -> tuple[str, str] | None:
    """If ``column`` is a sharding column, return (logic_table, column).

    Qualified refs resolve through the alias map; bare refs match any
    referenced sharded table that declares the column.
    """
    name = column.name.lower()
    if column.table is not None:
        logic = context.alias_map.get(column.table.lower())
        if logic is None or not rule.is_sharded(logic):
            return None
        if name in rule.sharding_columns_of(logic):
            return logic, name
        return None
    for exposed, logic in context.alias_map.items():
        if rule.is_sharded(logic) and name in rule.sharding_columns_of(logic):
            return logic, name
    return None


def _const_value(expr: ast.Expression, params: tuple[Any, ...]) -> tuple[bool, Any]:
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.Placeholder):
        if expr.index < len(params):
            return True, params[expr.index]
        return False, None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        ok, value = _const_value(expr.operand, params)
        if ok and isinstance(value, (int, float)):
            return True, -value
    return False, None


def _merge_condition(context: StatementContext, logic: str, value: ShardingValue) -> None:
    table_conditions = context.conditions.setdefault(logic, {})
    existing = table_conditions.get(value.column)
    if existing is not None:
        context.merged_conditions = True
        table_conditions[value.column] = existing.intersect(value)
    else:
        table_conditions[value.column] = value


def _note_equality(predicate: ast.BinaryOp, rule: ShardingRule, context: StatementContext) -> None:
    left, right = predicate.left, predicate.right
    for col_expr, val_expr in ((left, right), (right, left)):
        if not isinstance(col_expr, ast.ColumnRef):
            continue
        target = _sharding_column_of(col_expr, rule, context)
        if target is None:
            continue
        ok, value = _const_value(val_expr, context.params)
        if ok:
            logic, column = target
            _merge_condition(context, logic, ShardingValue(column, values=[value]))
        elif isinstance(val_expr, ast.ColumnRef):
            # join equality on sharding keys: propagate conditions between
            # the two tables (the binding-route optimization relies on the
            # same key reaching the same node in both tables).
            other = _sharding_column_of(val_expr, rule, context)
            if other is not None:
                context.conditions.setdefault("__join__", {})


def _note_in(predicate: ast.InExpr, rule: ShardingRule, context: StatementContext) -> None:
    if not isinstance(predicate.operand, ast.ColumnRef):
        return
    target = _sharding_column_of(predicate.operand, rule, context)
    if target is None:
        return
    values = []
    for item in predicate.items:
        ok, value = _const_value(item, context.params)
        if not ok:
            return
        values.append(value)
    logic, column = target
    _merge_condition(context, logic, ShardingValue(column, values=values))


def _note_between(predicate: ast.BetweenExpr, rule: ShardingRule, context: StatementContext) -> None:
    if not isinstance(predicate.operand, ast.ColumnRef):
        return
    target = _sharding_column_of(predicate.operand, rule, context)
    if target is None:
        return
    ok_low, low = _const_value(predicate.low, context.params)
    ok_high, high = _const_value(predicate.high, context.params)
    if not (ok_low and ok_high):
        return
    logic, column = target
    _merge_condition(context, logic, ShardingValue(column, range_=(low, high)))


def _note_comparison(predicate: ast.BinaryOp, rule: ShardingRule, context: StatementContext) -> None:
    left, right = predicate.left, predicate.right
    op = predicate.op
    col_expr, val_expr = left, right
    if not isinstance(col_expr, ast.ColumnRef):
        col_expr, val_expr = right, left
        op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}[op]
    if not isinstance(col_expr, ast.ColumnRef):
        return
    target = _sharding_column_of(col_expr, rule, context)
    if target is None:
        return
    ok, value = _const_value(val_expr, context.params)
    if not ok:
        return
    logic, column = target
    if op in ("<", "<="):
        condition = ShardingValue(column, range_=(None, value))
    else:
        condition = ShardingValue(column, range_=(value, None))
    _merge_condition(context, logic, condition)


# ---------------------------------------------------------------------------
# INSERT extraction + key generation
# ---------------------------------------------------------------------------


def _generate_keys(stmt: ast.InsertStatement, rule: ShardingRule, context: StatementContext) -> None:
    if not rule.is_sharded(stmt.table.name):
        return
    key_config = rule.table_rule(stmt.table.name).key_generate
    if key_config is None:
        return
    column = key_config.column
    present = any(c.lower() == column.lower() for c in stmt.columns)
    if present:
        return
    keys: list[Any] = []
    stmt.columns.append(column)
    for row in stmt.values_rows:
        key = key_config.generator.next_key()
        keys.append(key)
        row.append(ast.Literal(key))
    context.generated_keys = (column, keys)


def _extract_insert_conditions(
    stmt: ast.InsertStatement, rule: ShardingRule, context: StatementContext
) -> None:
    logic = stmt.table.name.lower()
    if not rule.is_sharded(logic):
        return
    sharding_columns = rule.sharding_columns_of(logic)
    if not sharding_columns:
        return
    column_positions = {c.lower(): i for i, c in enumerate(stmt.columns)}
    missing = [c for c in sharding_columns if c not in column_positions]
    if missing and HINT_COLUMN not in missing:
        raise RouteError(
            f"INSERT into sharded table {stmt.table.name!r} must supply "
            f"sharding column(s) {sorted(missing)}"
        )
    for row in stmt.values_rows:
        row_conditions: dict[str, ShardingValue] = {}
        for column in sharding_columns:
            position = column_positions[column]
            ok, value = _const_value(row[position], context.params)
            if not ok:
                raise RouteError(
                    f"sharding column {column!r} in INSERT must be a literal or bound parameter"
                )
            row_conditions[column] = ShardingValue(column, values=[value])
        context.insert_row_conditions.append(row_conditions)
