"""SQL rewriter: logical SQL -> executable per-shard SQL (Section VI-C).

Correctness rewrite:

- *identifier rewrite* — logic table names become the unit's actual table
  names (including dangling qualifiers like ``t_user.uid``);
- *column derivation* — ORDER BY / GROUP BY columns the merger needs but
  the select list doesn't return are appended as ``*_DERIVED_n`` items;
  AVG is decomposed into derived COUNT and SUM so the merger can combine
  shard averages correctly;
- *pagination revision* — ``LIMIT n OFFSET m`` becomes ``LIMIT n+m`` per
  shard (the merger re-applies the real offset globally);
- *batched-insert split* — each unit keeps only its routed values rows.

Optimization rewrite:

- *single-node optimization* — a single-unit route skips derivation,
  pagination revision and insert splitting entirely;
- *stream-merger optimization* — ``GROUP BY`` without ``ORDER BY`` gains
  an ORDER BY on the group keys, turning memory merge into stream merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from ..exceptions import RewriteError
from ..sql import ast
from ..sql.dialects import SQL92, Dialect
from ..sql.formatter import format_expression, format_statement
from .context import StatementContext
from .merger import AggregateSpec, MergeSpec
from .router import RouteResult, RouteUnit

DialectResolver = Callable[[str], Dialect]


class ExecutionUnit:
    """One rewritten statement ready to run on one data source.

    ``sql`` text is rendered lazily (diagnostics, PREVIEW, proxies); the
    in-process data sources execute the ``statement`` AST directly.
    """

    __slots__ = ("data_source", "params", "statement", "unit", "dialect", "_sql")

    def __init__(self, data_source: str, params: tuple[Any, ...],
                 statement: ast.Statement, unit: RouteUnit, dialect: Dialect,
                 sql: str | None = None):
        self.data_source = data_source
        self.params = params
        self.statement = statement
        self.unit = unit
        self.dialect = dialect
        self._sql: str | None = sql

    @property
    def sql(self) -> str:
        if self._sql is None:
            self._sql = format_statement(self.statement, self.dialect)
        return self._sql


@dataclass
class RewriteResult:
    execution_units: list[ExecutionUnit] = field(default_factory=list)
    merge_spec: MergeSpec | None = None


def rewrite(
    context: StatementContext,
    route_result: RouteResult,
    dialect_of: DialectResolver | None = None,
) -> RewriteResult:
    """Rewrite the logical statement into per-unit executable SQL."""
    resolver = dialect_of or (lambda name: SQL92)
    statement = context.statement
    single_node = route_result.is_single

    if isinstance(statement, ast.SelectStatement):
        return _rewrite_select(context, route_result, resolver, single_node)
    if isinstance(statement, ast.InsertStatement):
        return _rewrite_insert(context, route_result, resolver, single_node)
    return _rewrite_generic(context, route_result, resolver)


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


def _rewrite_select(
    context: StatementContext,
    route_result: RouteResult,
    resolver: DialectResolver,
    single_node: bool,
) -> RewriteResult:
    logical = context.statement
    assert isinstance(logical, ast.SelectStatement)
    if single_node:
        # Single-node optimization: no derivation / pagination revision /
        # stream-merge rewrite, so the logical AST can be shared read-only.
        shared = logical
    else:
        shared = ast.clone_statement(logical)
        assert isinstance(shared, ast.SelectStatement)
        _optimize_stream_merge(shared)
        _derive_columns(shared)
        _revise_pagination(shared, context.params)

    merge_spec = _build_merge_spec(logical, shared, single_node, context.params)

    result = RewriteResult(merge_spec=merge_spec)
    for unit in route_result.units:
        per_unit = ast.clone_statement(shared)
        _rename_tables(per_unit, unit)
        params = _collect_params(per_unit, context.params)
        result.execution_units.append(
            ExecutionUnit(unit.data_source, params, per_unit, unit, resolver(unit.data_source))
        )
    return result


def _optimize_stream_merge(stmt: ast.SelectStatement) -> None:
    """GROUP BY without ORDER BY gains ORDER BY on the group keys."""
    if stmt.group_by and not stmt.order_by:
        stmt.order_by = [ast.OrderByItem(ast.clone_expression(expr)) for expr in stmt.group_by]


def _select_has_star(stmt: ast.SelectStatement) -> bool:
    return any(isinstance(item.expression, ast.Star) for item in stmt.select_items)


def _find_select_index(stmt: ast.SelectStatement, expr: ast.Expression) -> int | None:
    """Index of the select item matching ``expr`` textually or by alias."""
    text = format_expression(expr).lower()
    for i, item in enumerate(stmt.select_items):
        if item.alias and isinstance(expr, ast.ColumnRef) and expr.table is None:
            if item.alias.lower() == expr.name.lower():
                return i
        if format_expression(item.expression).lower() == text:
            return i
        # Unqualified ORDER BY may match a qualified select column.
        if (
            isinstance(expr, ast.ColumnRef)
            and expr.table is None
            and isinstance(item.expression, ast.ColumnRef)
            and item.expression.name.lower() == expr.name.lower()
        ):
            return i
    return None


def _derive_columns(stmt: ast.SelectStatement) -> None:
    """Append derived select items required by the merger."""
    star = _select_has_star(stmt)
    derived_index = 0
    # AVG decomposition first (aggregates are explicit select items).
    avg_items = [
        item
        for item in stmt.select_items
        if isinstance(item.expression, ast.FunctionCall)
        and item.expression.name.upper() == "AVG"
    ]
    for n, item in enumerate(avg_items):
        call = item.expression
        assert isinstance(call, ast.FunctionCall)
        count_call = ast.FunctionCall("COUNT", [ast.clone_expression(a) for a in call.args], distinct=call.distinct)
        sum_call = ast.FunctionCall("SUM", [ast.clone_expression(a) for a in call.args], distinct=call.distinct)
        stmt.select_items.append(
            ast.SelectItem(count_call, alias=f"AVG_DERIVED_COUNT_{n}", derived=True)
        )
        stmt.select_items.append(
            ast.SelectItem(sum_call, alias=f"AVG_DERIVED_SUM_{n}", derived=True)
        )
    if star:
        return  # every column already present for order/group resolution
    for expr in stmt.group_by:
        if _find_select_index(stmt, expr) is None:
            stmt.select_items.append(
                ast.SelectItem(ast.clone_expression(expr), alias=f"GROUP_BY_DERIVED_{derived_index}", derived=True)
            )
            derived_index += 1
    for item in stmt.order_by:
        if _find_select_index(stmt, item.expression) is None:
            stmt.select_items.append(
                ast.SelectItem(
                    ast.clone_expression(item.expression),
                    alias=f"ORDER_BY_DERIVED_{derived_index}",
                    derived=True,
                )
            )
            derived_index += 1


def _revise_pagination(stmt: ast.SelectStatement, params: Sequence[Any]) -> None:
    """Each shard must return the first offset+count rows."""
    if stmt.limit is None:
        return
    count = _resolve_int(stmt.limit.count, params)
    offset = _resolve_int(stmt.limit.offset, params)
    if offset in (None, 0):
        if count is not None:
            stmt.limit = ast.Limit(count=ast.Literal(count))
        return
    new_count = None if count is None else count + offset
    stmt.limit = ast.Limit(count=None if new_count is None else ast.Literal(new_count))
    if stmt.limit.count is None:
        stmt.limit = None


def _resolve_int(expr: ast.Expression | None, params: Sequence[Any]) -> int | None:
    if expr is None:
        return None
    if isinstance(expr, ast.Literal):
        return int(expr.value)
    if isinstance(expr, ast.Placeholder):
        try:
            return int(params[expr.index])
        except (IndexError, TypeError):
            raise RewriteError("pagination placeholder missing a bound parameter") from None
    raise RewriteError("LIMIT/OFFSET must be a literal or placeholder")


def _build_merge_spec(
    logical: ast.SelectStatement,
    shared: ast.SelectStatement,
    single_node: bool,
    params: Sequence[Any] = (),
) -> MergeSpec:
    aggregates: list[AggregateSpec] = []
    avg_seen = 0
    derived_names = {
        (item.alias or "").lower(): i
        for i, item in enumerate(shared.select_items)
        if item.derived
    }
    for i, item in enumerate(shared.select_items):
        expr = item.expression
        if item.derived:
            continue
        if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
            func = expr.name.upper()
            spec = AggregateSpec(func=func, index=i, distinct=expr.distinct)
            if func == "AVG":
                spec.count_index = derived_names.get(f"avg_derived_count_{avg_seen}")
                spec.sum_index = derived_names.get(f"avg_derived_sum_{avg_seen}")
                avg_seen += 1
            aggregates.append(spec)

    group_keys: list[int | str] = []
    for expr in shared.group_by:
        index = _find_select_index(shared, expr)
        if index is not None:
            group_keys.append(index)
        elif isinstance(expr, ast.ColumnRef):
            group_keys.append(expr.name)
        else:
            group_keys.append(format_expression(expr))

    order_keys: list[tuple[int | str, bool]] = []
    for item in shared.order_by:
        index = _find_select_index(shared, item.expression)
        if index is not None:
            order_keys.append((index, item.desc))
        elif isinstance(item.expression, ast.ColumnRef):
            order_keys.append((item.expression.name, item.desc))
        else:
            order_keys.append((format_expression(item.expression), item.desc))

    output_width = sum(1 for item in shared.select_items if not item.derived)
    if _select_has_star(shared):
        output_width = -1  # pass everything through

    limit_count = _resolve_int(logical.limit.count, params) if logical.limit else None
    limit_offset = _resolve_int(logical.limit.offset, params) if logical.limit else None

    group_equals_order = False
    if shared.group_by and shared.order_by:
        group_text = [format_expression(e).lower() for e in shared.group_by]
        order_text = [format_expression(i.expression).lower() for i in shared.order_by[: len(group_text)]]
        group_equals_order = group_text == order_text and len(shared.order_by) == len(group_text)

    return MergeSpec(
        is_query=True,
        single_node=single_node,
        output_width=output_width,
        aggregates=aggregates,
        group_keys=group_keys,
        order_keys=order_keys,
        distinct=logical.distinct,
        limit_count=limit_count,
        limit_offset=limit_offset,
        group_equals_order=group_equals_order,
        has_group_by=bool(shared.group_by),
    )


# ---------------------------------------------------------------------------
# INSERT
# ---------------------------------------------------------------------------


def _rewrite_insert(
    context: StatementContext,
    route_result: RouteResult,
    resolver: DialectResolver,
    single_node: bool,
) -> RewriteResult:
    logical = context.statement
    assert isinstance(logical, ast.InsertStatement)
    result = RewriteResult(merge_spec=MergeSpec(is_query=False, single_node=single_node))
    for unit in route_result.units:
        per_unit = ast.clone_statement(logical)
        assert isinstance(per_unit, ast.InsertStatement)
        if unit.row_indexes is not None and not single_node:
            per_unit.values_rows = [per_unit.values_rows[i] for i in unit.row_indexes]
        _rename_tables(per_unit, unit)
        params = _collect_params(per_unit, context.params)
        result.execution_units.append(
            ExecutionUnit(unit.data_source, params, per_unit, unit, resolver(unit.data_source))
        )
    return result


# ---------------------------------------------------------------------------
# Other statements
# ---------------------------------------------------------------------------


def _rewrite_generic(
    context: StatementContext, route_result: RouteResult, resolver: DialectResolver
) -> RewriteResult:
    result = RewriteResult(
        merge_spec=MergeSpec(is_query=False, single_node=route_result.is_single)
    )
    for unit in route_result.units:
        per_unit = ast.clone_statement(context.statement)
        _rename_tables(per_unit, unit)
        params = _collect_params(per_unit, context.params)
        result.execution_units.append(
            ExecutionUnit(unit.data_source, params, per_unit, unit, resolver(unit.data_source))
        )
    return result


# ---------------------------------------------------------------------------
# Identifier rewrite + parameter re-binding
# ---------------------------------------------------------------------------


def _rename_tables(stmt: ast.Statement, unit: RouteUnit) -> None:
    """Swap logic table names for the unit's actual tables."""
    renames: dict[str, str] = {}
    for ref in stmt.tables():
        if ref is None:
            continue
        actual = unit.table_map.get(ref.name.lower())
        if actual is not None and actual != ref.name:
            # A logic name used as a column qualifier must follow the rename
            # unless an alias shields it.
            if ref.alias is None:
                renames[ref.name.lower()] = actual
            ref.name = actual
    if renames:
        for expr in _iter_expressions(stmt):
            for node in expr.walk():
                if isinstance(node, ast.ColumnRef) and node.table and node.table.lower() in renames:
                    node.table = renames[node.table.lower()]
                if isinstance(node, ast.Star) and node.table and node.table.lower() in renames:
                    node.table = renames[node.table.lower()]


def _iter_expressions(stmt: ast.Statement) -> Iterator[ast.Expression]:
    """All expression roots of a statement in deterministic order."""
    if isinstance(stmt, ast.SelectStatement):
        for item in stmt.select_items:
            yield item.expression
        for join in stmt.joins:
            if join.condition is not None:
                yield join.condition
        if stmt.where is not None:
            yield stmt.where
        yield from stmt.group_by
        if stmt.having is not None:
            yield stmt.having
        for item in stmt.order_by:
            yield item.expression
        if stmt.limit is not None:
            if stmt.limit.count is not None:
                yield stmt.limit.count
            if stmt.limit.offset is not None:
                yield stmt.limit.offset
    elif isinstance(stmt, ast.InsertStatement):
        for row in stmt.values_rows:
            yield from row
    elif isinstance(stmt, ast.UpdateStatement):
        for _, expr in stmt.assignments:
            yield expr
        if stmt.where is not None:
            yield stmt.where
    elif isinstance(stmt, ast.DeleteStatement):
        if stmt.where is not None:
            yield stmt.where


def _collect_params(stmt: ast.Statement, params: tuple[Any, ...]) -> tuple[Any, ...]:
    """Rebind placeholders after row splitting; renumber them 0..n-1."""
    placeholders: list[ast.Placeholder] = []
    for expr in _iter_expressions(stmt):
        for node in expr.walk():
            if isinstance(node, ast.Placeholder):
                placeholders.append(node)
    if not placeholders:
        return ()
    unit_params = []
    for new_index, node in enumerate(placeholders):
        try:
            unit_params.append(params[node.index])
        except IndexError:
            raise RewriteError(f"missing parameter for placeholder #{node.index}") from None
        node.index = new_index
    return tuple(unit_params)
