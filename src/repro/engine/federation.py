"""Federation executor: cross-source joins without co-located shards.

The cartesian route (Section V-B) requires every joined table to have a
shard in the same data source. When tables live in disjoint sources —
e.g. vertically-sharded tables on different servers — upstream
ShardingSphere 5.x falls back to its *Federation* engine: pull the
(filtered) rows of each table into the middleware and finish the query
there. This module is that fallback.

It is deliberately a last resort: the pipeline only federates when the
router raises the no-co-located-shards error, and per-table WHERE
conjuncts are pushed down so each shard ships only matching rows.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..exceptions import UnsupportedSQLError
from ..sql import ast
from ..storage.database import Database
from ..storage.executor import QueryResult, execute_statement
from .context import StatementContext

if TYPE_CHECKING:
    from ..metadata import MetadataContext
    from .pipeline import SQLEngine

#: refuse to materialize more rows than this into the federation scratch DB
MAX_FEDERATION_ROWS = 500_000


class _RowBudget:
    """Exact shared row-count guard for concurrent materialization.

    Every pulled row is charged under a lock, so the limit cannot be
    overshot by racing per-table tasks losing each other's counts; the
    first task to cross it raises and the others are surfaced via their
    futures.
    """

    __slots__ = ("limit", "_count", "_lock")

    def __init__(self, limit: int):
        self.limit = limit
        self._count = 0
        self._lock = threading.Lock()

    def charge(self, rows: int = 1) -> None:
        with self._lock:
            self._count += rows
            if self._count > self.limit:
                raise UnsupportedSQLError(
                    f"federated query would materialize more than "
                    f"{self.limit} rows; add narrowing predicates"
                )


def federate_select(
    engine: "SQLEngine",
    context: StatementContext,
    snap: "MetadataContext | None" = None,
) -> QueryResult:
    """Execute a SELECT by materializing each referenced table locally.

    Per-table pulls are independent, so they fan out over the engine's
    worker pool; a single-table statement stays on the calling thread.
    ``snap`` pins the statement to one metadata snapshot (rule + data
    sources); None falls back to the engine's live view.
    """
    statement = context.statement
    if not isinstance(statement, ast.SelectStatement):
        raise UnsupportedSQLError("only SELECT statements can be federated")

    scratch = Database("federation")
    # Predicates on the nullable side of an outer join filter *after* the
    # join produces NULLs; pushing them below the join would change results.
    no_pushdown = {
        join.table.exposed_name.lower()
        for join in statement.joins
        if join.kind in ("LEFT", "RIGHT", "FULL")
    }
    refs: list[ast.TableRef] = []
    seen: set[str] = set()
    for ref in statement.tables():
        if ref.name.lower() in seen:
            continue
        seen.add(ref.name.lower())
        refs.append(ref)
    budget = _RowBudget(MAX_FEDERATION_ROWS)
    if len(refs) <= 1:
        for ref in refs:
            pushdown_ok = ref.exposed_name.lower() not in no_pushdown
            _materialize(engine, context, ref, scratch, budget, pushdown_ok, snap)
    else:
        futures = [
            engine.executor.submit(
                _materialize, engine, context, ref, scratch, budget,
                ref.exposed_name.lower() not in no_pushdown, snap,
            )
            for ref in refs
        ]
        first_error: Exception | None = None
        for future in futures:
            try:
                future.result()
            except Exception as exc:  # collect all; every task must finish
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
    return execute_statement(scratch, statement, context.params)


def _materialize(
    engine: "SQLEngine",
    context: StatementContext,
    ref: ast.TableRef,
    scratch: Database,
    budget: _RowBudget,
    pushdown_ok: bool = True,
    snap: "MetadataContext | None" = None,
) -> int:
    """Copy one logic table's (filtered) rows into the scratch database."""
    logic = ref.name
    sources = snap.data_sources if snap is not None else engine.data_sources
    nodes = _nodes_of(engine, logic, snap)
    schema = None
    fetched = 0
    pushdown = _pushdown_predicate(context, ref) if pushdown_ok else None
    for ds_name, actual in nodes:
        source = sources[ds_name]
        table = source.database.table(actual)
        if schema is None:
            schema = table.schema.clone_renamed(logic)
            scratch.create_table(schema)
        target = scratch.table(logic)
        per_shard = ast.SelectStatement(
            select_items=[ast.SelectItem(ast.Star())],
            from_table=ast.TableRef(actual, alias=ref.alias),
            where=ast.clone_expression(pushdown) if pushdown is not None else None,
        )
        connection = source.pool.acquire()
        try:
            cursor = connection.execute(per_shard, context.params)
            columns = cursor.columns
            for row in cursor:
                budget.charge()
                target.insert(dict(zip(columns, row)))
                fetched += 1
        finally:
            source.pool.release(connection)
    return fetched


def _nodes_of(
    engine: "SQLEngine", logic: str, snap: "MetadataContext | None" = None
) -> list[tuple[str, str]]:
    rule = snap.rule if snap is not None else engine.rule
    sources = snap.data_sources if snap is not None else engine.data_sources
    if rule.is_sharded(logic):
        return [(n.data_source, n.table) for n in rule.table_rule(logic).data_nodes]
    # broadcast tables are replicated everywhere (one copy suffices) and
    # unsharded tables live on the default source
    default = rule.default_data_source or next(iter(sources))
    return [(default, logic)]


def _pushdown_predicate(context: StatementContext, ref: ast.TableRef) -> ast.Expression | None:
    """AND of the WHERE conjuncts that reference only this table.

    A conjunct qualifies when every column it mentions is either qualified
    by this table's exposed name or unqualified-and-unclaimed by other
    tables (single-table queries never reach federation, so unqualified
    columns are kept only when no other table could own them).
    """
    statement = context.statement
    where = getattr(statement, "where", None)
    if where is None:
        return None
    exposed = ref.exposed_name.lower()
    other_names = {
        t.exposed_name.lower() for t in statement.tables() if t.exposed_name.lower() != exposed
    }
    kept: list[ast.Expression] = []
    for predicate in _conjuncts(where):
        qualifiers = {
            node.table.lower()
            for node in predicate.walk()
            if isinstance(node, ast.ColumnRef) and node.table is not None
        }
        has_unqualified = any(
            isinstance(node, ast.ColumnRef) and node.table is None
            for node in predicate.walk()
        )
        if has_unqualified:
            continue  # ambiguous ownership; evaluate after the join
        if qualifiers and qualifiers <= {exposed}:
            kept.append(ast.clone_expression(predicate))
    if not kept:
        return None
    out = kept[0]
    for predicate in kept[1:]:
        out = ast.BinaryOp("AND", out, predicate)
    # Rewrite the qualifier to the per-shard alias-or-name (the alias is
    # preserved on the per-shard FROM, so qualified refs still resolve).
    return out


def _conjuncts(expr: ast.Expression):
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr
