"""Result merger: combine per-shard result sets into one (Section VI-E).

Merger selection follows the paper:

- *iteration*: plain concatenation of shard cursors (stream);
- *order-by*: multi-way merge of per-shard sorted streams on a heap
  (stream) — each shard's ORDER BY guarantees local order;
- *group-by stream*: when the rewriter made ORDER BY cover GROUP BY, rows
  with equal group keys are adjacent in the merged stream, so groups are
  folded without buffering more than one group;
- *group-by memory*: otherwise a hash aggregation over all rows;
- *aggregation*: no GROUP BY — every shard returns one row, combined per
  aggregate function (AVG from derived SUM/COUNT);
- *distinct* and *pagination* decorate the merged stream; derived columns
  are trimmed from the visible output last.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Protocol, Sequence

from ..exceptions import MergeError
from ..storage.expression import OrderToken, sort_key


class ShardResult(Protocol):
    """What the merger needs from one shard's result (Cursor satisfies it)."""

    @property
    def columns(self) -> list[str]: ...

    def __iter__(self) -> Iterator[tuple[Any, ...]]: ...


@dataclass
class MaterializedResult:
    """An in-memory shard result (used by the memory-merge path)."""

    columns: list[str]
    rows: list[tuple[Any, ...]]

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)


@dataclass
class AggregateSpec:
    """One aggregate select item and where to find its inputs."""

    func: str
    index: int
    distinct: bool = False
    sum_index: int | None = None  # AVG only
    count_index: int | None = None  # AVG only


@dataclass
class MergeSpec:
    """Merging plan computed by the rewriter."""

    is_query: bool
    single_node: bool = False
    output_width: int = -1  # -1: pass all columns through
    aggregates: list[AggregateSpec] = field(default_factory=list)
    group_keys: list[int | str] = field(default_factory=list)
    order_keys: list[tuple[int | str, bool]] = field(default_factory=list)
    distinct: bool = False
    limit_count: int | None = None
    limit_offset: int | None = None
    group_equals_order: bool = False
    has_group_by: bool = False


@dataclass
class MergedResult:
    """The single logical result returned to the application."""

    columns: list[str]
    rows: Iterator[tuple[Any, ...]]
    merger_kind: str = "passthrough"

    def fetchall(self) -> list[tuple[Any, ...]]:
        return list(self.rows)


def merge(spec: MergeSpec, results: Sequence[ShardResult]) -> MergedResult:
    """Merge shard results according to the plan."""
    if not results:
        return MergedResult(columns=[], rows=iter(()))
    columns = list(results[0].columns)
    visible = columns if spec.output_width < 0 else columns[: spec.output_width]

    if spec.single_node or len(results) == 1:
        rows: Iterator[tuple[Any, ...]] = iter(results[0])
        if spec.output_width >= 0 and len(columns) > spec.output_width:
            rows = (row[: spec.output_width] for row in rows)
        return MergedResult(columns=visible, rows=rows, merger_kind="passthrough")

    order_indexes = [(_resolve_key(k, columns), desc) for k, desc in spec.order_keys]

    if spec.aggregates and not spec.has_group_by:
        merged, kind = _merge_aggregation(spec, results, columns)
    elif spec.has_group_by:
        group_indexes = [_resolve_key(k, columns) for k in spec.group_keys]
        if spec.group_equals_order and order_indexes:
            stream = _heap_merge(results, order_indexes)
            merged = _fold_adjacent_groups(spec, stream, group_indexes, columns)
            kind = "group-by-stream"
        else:
            merged = _memory_group(spec, results, group_indexes, columns, order_indexes)
            kind = "group-by-memory"
    elif order_indexes:
        merged = _heap_merge(results, order_indexes)
        kind = "order-by-stream"
    else:
        merged = itertools.chain.from_iterable(results)
        kind = "iteration"

    if spec.distinct:
        merged = _distinct(merged, len(visible))
    if spec.limit_offset is not None or spec.limit_count is not None:
        offset = spec.limit_offset or 0
        stop = None if spec.limit_count is None else offset + spec.limit_count
        merged = itertools.islice(merged, offset, stop)
    if spec.output_width >= 0 and len(columns) > spec.output_width:
        merged = (row[: spec.output_width] for row in merged)
    return MergedResult(columns=visible, rows=iter(merged), merger_kind=kind)


# ---------------------------------------------------------------------------
# Key resolution and ordering helpers
# ---------------------------------------------------------------------------


def _resolve_key(key: int | str, columns: list[str]) -> int:
    if isinstance(key, int):
        return key
    lower = key.lower()
    for i, name in enumerate(columns):
        if name.lower() == lower:
            return i
    for i, name in enumerate(columns):
        if name.rsplit(".", 1)[-1].lower() == lower:
            return i
    raise MergeError(f"cannot resolve merge key {key!r} in columns {columns}")


# Direction-aware sort token shared with the storage layer.
_OrderToken = OrderToken


def _row_token(row: tuple[Any, ...], order_indexes: list[tuple[int, bool]]) -> tuple:
    return tuple(_OrderToken(row[i], desc) for i, desc in order_indexes)


def _heap_merge(
    results: Sequence[ShardResult], order_indexes: list[tuple[int, bool]]
) -> Iterator[tuple[Any, ...]]:
    """Multi-way merge of per-shard sorted streams (priority queue)."""
    return heapq.merge(*results, key=lambda row: _row_token(row, order_indexes))


# ---------------------------------------------------------------------------
# Aggregation (no GROUP BY)
# ---------------------------------------------------------------------------


class _AggAccumulator:
    """Combines one aggregate column across shard partials."""

    def __init__(self, spec: AggregateSpec):
        self.spec = spec
        self.count_total: Any = None
        self.sum_total: Any = None
        self.value: Any = None
        self.seen = False

    def feed(self, row: tuple[Any, ...]) -> None:
        func = self.spec.func
        if self.spec.distinct and func in ("COUNT", "SUM", "AVG"):
            # Per-shard distinct sets may overlap, so their counts/sums
            # cannot be added. Upstream routes such queries to federation;
            # we fail loudly instead of merging a wrong answer.
            raise MergeError(
                f"{func}(DISTINCT ...) cannot be merged across shards; "
                "add a sharding condition so the query routes to one shard"
            )
        partial = row[self.spec.index]
        if func == "AVG":
            count_part = row[self.spec.count_index] if self.spec.count_index is not None else None
            sum_part = row[self.spec.sum_index] if self.spec.sum_index is not None else None
            if count_part:
                self.count_total = (self.count_total or 0) + count_part
                self.sum_total = (self.sum_total or 0) + (sum_part or 0)
            return
        if partial is None:
            return
        if func in ("SUM", "COUNT"):
            self.value = partial if self.value is None else self.value + partial
        elif func == "MAX":
            self.value = partial if not self.seen else max(self.value, partial, key=sort_key)
            self.seen = True
        elif func == "MIN":
            self.value = partial if not self.seen else min(self.value, partial, key=sort_key)
            self.seen = True
        else:
            raise MergeError(f"cannot merge aggregate {func}")

    def result(self) -> Any:
        if self.spec.func == "AVG":
            if not self.count_total:
                return None
            return self.sum_total / self.count_total
        if self.spec.func == "COUNT" and self.value is None:
            return 0
        return self.value


def _merge_aggregation(
    spec: MergeSpec, results: Sequence[ShardResult], columns: list[str]
) -> tuple[Iterator[tuple[Any, ...]], str]:
    accumulators = [_AggAccumulator(a) for a in spec.aggregates]
    sample: tuple[Any, ...] | None = None
    for result in results:
        for row in result:
            if sample is None:
                sample = row
            for acc in accumulators:
                acc.feed(row)
    if sample is None:
        sample = tuple(None for _ in columns)
    out = list(sample)
    for acc in accumulators:
        out[acc.spec.index] = acc.result()
    return iter([tuple(out)]), "aggregation"


# ---------------------------------------------------------------------------
# GROUP BY merging
# ---------------------------------------------------------------------------


def _group_key(row: tuple[Any, ...], group_indexes: list[int]) -> tuple:
    return tuple(sort_key(row[i]) for i in group_indexes)


def _combine_group(
    spec: MergeSpec, rows: list[tuple[Any, ...]]
) -> tuple[Any, ...]:
    out = list(rows[0])
    for agg in spec.aggregates:
        acc = _AggAccumulator(agg)
        for row in rows:
            acc.feed(row)
        out[agg.index] = acc.result()
    return tuple(out)


def _fold_adjacent_groups(
    spec: MergeSpec,
    stream: Iterator[tuple[Any, ...]],
    group_indexes: list[int],
    columns: list[str],
) -> Iterator[tuple[Any, ...]]:
    """Stream group merge: the merged stream is ordered by the group keys,
    so each group is a contiguous run at the heads of the shard cursors."""
    pending: list[tuple[Any, ...]] = []
    pending_key: tuple | None = None
    for row in stream:
        key = _group_key(row, group_indexes)
        if pending_key is None or key == pending_key:
            pending.append(row)
            pending_key = key
        else:
            yield _combine_group(spec, pending)
            pending = [row]
            pending_key = key
    if pending:
        yield _combine_group(spec, pending)


def _memory_group(
    spec: MergeSpec,
    results: Sequence[ShardResult],
    group_indexes: list[int],
    columns: list[str],
    order_indexes: list[tuple[int, bool]],
) -> Iterator[tuple[Any, ...]]:
    """Memory group merge: hash-aggregate every row, then re-sort."""
    groups: dict[tuple, list[tuple[Any, ...]]] = {}
    order: list[tuple] = []
    for result in results:
        for row in result:
            key = _group_key(row, group_indexes)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [row]
                order.append(key)
            else:
                bucket.append(row)
    combined = [_combine_group(spec, groups[key]) for key in order]
    if order_indexes:
        combined.sort(key=lambda row: _row_token(row, order_indexes))
    return iter(combined)


def _distinct(rows: Iterable[tuple[Any, ...]], width: int) -> Iterator[tuple[Any, ...]]:
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(sort_key(v) for v in row[:width])
        if key not in seen:
            seen.add(key)
            yield row
