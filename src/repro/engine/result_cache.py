"""Engine-level result cache for hot point reads.

Cache-aside with a bounded LRU, per-entry TTL and single-flight loading.
Keys are ``(sql, params, plan_epoch)``; values are fully materialized
(small) result sets. A fully-hot cached point select does **zero** storage
work — no routing, no connection checkout, no storage execute.

Correctness rests on three guards checked on every lookup:

* **data-version guards** — each entry records the ``(database, table,
  data_version)`` triples it read; any committed write to those tables
  (from this engine, a peer runtime sharing the storage, or replication
  apply on a replica) bumps the version and invalidates by comparison.
  The same versions are captured *before* execution and re-validated at
  store time, closing the classic cache-aside race where a slow reader
  stores a pre-invalidation result after the write landed.
* **causal guards** — entries served from replica-group members record
  the group LSN their snapshot covered; a session whose causal token
  exceeds it bypasses the cache (read-your-writes holds through the
  cache, not just through routing).
* **TTL** — bounds staleness against writers the version guards cannot
  see (e.g. a different process).

Metadata epoch bumps clear the cache wholesale (and retire old keys,
which embed the epoch).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Hashable, Sequence


class _Entry:
    __slots__ = ("columns", "rows", "expires_at", "guards", "causal")

    def __init__(self, columns: list[str], rows: tuple, expires_at: float,
                 guards: tuple, causal: tuple):
        self.columns = columns
        self.rows = rows
        self.expires_at = expires_at
        self.guards = guards  # ((database, table_name, data_version), ...)
        self.causal = causal  # ((group_name, covered_lsn), ...)


class ResultCache:
    """Bounded LRU of materialized SELECT results with guarded lookups."""

    def __init__(self, capacity: int = 32768, ttl: float = 30.0,
                 max_rows: int = 128, single_flight_timeout: float = 0.05):
        self.capacity = capacity
        self.ttl = ttl
        #: result sets larger than this are never cached (they are not
        #: the hot point reads this cache exists for)
        self.max_rows = max_rows
        self.single_flight_timeout = single_flight_timeout
        self.enabled = False
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        #: in-flight loads: key -> Event set when the leader finishes
        self._loading: dict[Hashable, threading.Event] = {}
        # counters (read by SHOW RESULT CACHE and bench --profile)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.causal_bypasses = 0
        self.clears = 0

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: Hashable,
               session_token: Any = None) -> _Entry | None:
        """Guarded cache read; None on miss/expiry/invalidation/bypass."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.expires_at < time.monotonic():
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            for database, table, version in entry.guards:
                if database.data_version(table) != version:
                    del self._entries[key]
                    self.invalidations += 1
                    self.misses += 1
                    return None
            if session_token is not None:
                for group, lsn in entry.causal:
                    if session_token(group) > lsn:
                        # Entry predates this session's write: not stale
                        # for *other* sessions, so bypass without evicting.
                        self.causal_bypasses += 1
                        self.misses += 1
                        return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    # -- single-flight -------------------------------------------------------

    def lease(self, key: Hashable) -> tuple[bool, threading.Event]:
        """Claim the load for ``key``. Returns (is_leader, event): the
        leader executes and must call :meth:`release`; followers wait on
        the event (bounded) and re-lookup."""
        with self._lock:
            event = self._loading.get(key)
            if event is not None:
                return False, event
            event = threading.Event()
            self._loading[key] = event
            return True, event

    def release(self, key: Hashable) -> None:
        """Finish a leased load (store done, store skipped, or error)."""
        with self._lock:
            event = self._loading.pop(key, None)
        if event is not None:
            event.set()

    # -- store ---------------------------------------------------------------

    def store(self, key: Hashable, columns: Sequence[str], rows: Sequence[tuple],
              guards: Sequence[tuple], causal: Sequence[tuple]) -> bool:
        """Insert iff every guard still holds (validated store)."""
        if len(rows) > self.max_rows:
            return False
        expires_at = time.monotonic() + self.ttl
        with self._lock:
            for database, table, version in guards:
                if database.data_version(table) != version:
                    # A write landed while we were reading: storing now
                    # would resurrect the pre-write rows. Count it as an
                    # invalidation of the would-be entry.
                    self.invalidations += 1
                    return False
            self._entries[key] = _Entry(
                list(columns), tuple(rows), expires_at,
                tuple(guards), tuple(causal),
            )
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    # -- maintenance ---------------------------------------------------------

    def clear(self, reason: str = "") -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.clears += 1
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "ttl_s": self.ttl,
            "max_rows": self.max_rows,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "causal_bypasses": self.causal_bypasses,
            "clears": self.clears,
        }
