"""The complete SQL engine: parse -> route -> rewrite -> execute -> merge.

This is the paper's Figure 2 "SQL Engine" box. Features (read-write
splitting, encryption, shadow, circuit breaking...) plug into the pipeline
through the :class:`Feature` hook interface, which is what makes the
platform "pluggable": every feature sees the statement context, may veto
or mutate it, may redirect routed units, and may post-process results.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..cache import LruCache
from ..exceptions import RouteError, ShardingSphereError
from ..metadata import ContextManager, MetadataContext
from ..sharding import ShardingRule
from ..sql import ast, parse
from ..sql.formatter import format_statement
from ..storage import Connection, DataSource
from ..session import current_session
from ..storage.replication import primary_pinned, session_token
from .context import StatementContext, build_context
from .executor import ConnectionMode, ExecutionEngine, ExecutionResult
from .merger import MergedResult, MergeSpec, merge
from .plan import CompiledPlan, PlanCache, compile_plan
from .resilience import REROUTABLE_ERRORS, ResiliencePolicy
from .result_cache import ResultCache
from .rewriter import ExecutionUnit, RewriteResult, rewrite
from .router import RouteResult, route

if TYPE_CHECKING:
    from ..observability import Observability
    from ..observability.trace import Trace


class Feature:
    """Pluggable pipeline hook (SPI analogue for features).

    Subclasses override any subset of the hooks; the engine calls them in
    registration order. Hooks may mutate their arguments in place.
    """

    #: short identifier used in SHOW output and diagnostics
    name = "feature"

    #: True when every hook leaves statement ASTs untouched, so executions
    #: may take the plan-cache hot path (hooks still run against the
    #: immutable cached AST). Any registered feature with the conservative
    #: default False — e.g. encrypt, which rewrites statements in
    #: ``on_context`` — disables plan caching engine-wide while present.
    plan_cache_safe = False

    def on_context(self, context: StatementContext) -> None:
        """Inspect/mutate the statement context before routing."""

    def on_route(self, route_result: RouteResult, context: StatementContext) -> None:
        """Inspect/mutate the route result (e.g. redirect data sources)."""

    def on_units(self, units: list[ExecutionUnit], context: StatementContext) -> None:
        """Inspect/mutate rewritten execution units before execution."""

    def on_result(self, result: "EngineResult", context: StatementContext) -> None:
        """Post-process the merged result."""

    def on_error(self, error: Exception, context: StatementContext) -> None:
        """Observe a failed execution (circuit breakers count these)."""


@dataclass
class EngineResult:
    """Outcome of one logical statement."""

    merged: MergedResult | None = None
    update_count: int = 0
    generated_keys: tuple[str, list[Any]] | None = None
    # diagnostics
    route_type: str = ""
    unit_count: int = 0
    modes: dict[str, ConnectionMode] = field(default_factory=dict)
    merger_kind: str = ""
    units: list[ExecutionUnit] = field(default_factory=list)
    #: True when DOWN sources were skipped (graceful degradation)
    partial_results: bool = False
    skipped_sources: list[str] = field(default_factory=list)
    #: the statement's Trace when tracing was on (``TRACE <sql>``)
    trace: Any = None

    @property
    def sqls(self) -> list[str]:
        """Rewritten per-shard SQL texts (rendered lazily)."""
        return [u.sql for u in self.units]

    @property
    def is_query(self) -> bool:
        return self.merged is not None

    def fetchall(self) -> list[tuple[Any, ...]]:
        if self.merged is None:
            return []
        return self.merged.fetchall()

    @property
    def columns(self) -> list[str]:
        return self.merged.columns if self.merged else []


class SQLEngine:
    """Five-stage engine bound to versioned metadata + a fleet of sources.

    Configuration lives in a :class:`~repro.metadata.ContextManager`;
    every statement pins ``metadata.current()`` once and reads rule,
    data sources, features and dialects from that immutable snapshot for
    its whole parse→route→rewrite→execute→merge lifetime. Concurrent
    DistSQL mutations swap in the *next* snapshot without ever tearing an
    in-flight statement.
    """

    def __init__(
        self,
        data_sources: Mapping[str, DataSource] | None = None,
        rule: ShardingRule | None = None,
        max_connections_per_query: int = 1,
        features: Sequence[Feature] = (),
        worker_threads: int = 32,
        enable_federation: bool = True,
        resilience: ResiliencePolicy | None = None,
        metadata: ContextManager | None = None,
    ):
        self.enable_federation = enable_federation
        if metadata is None:
            # Direct-embedding path (tests, examples): wrap the caller's
            # dict/rule in a standalone manager. The caller's dict is kept
            # by reference as the live-source map, and the bootstrap rule
            # stays unfrozen so incremental setup keeps working.
            metadata = ContextManager(
                data_sources if isinstance(data_sources, dict) else dict(data_sources or {}),
                rule if rule is not None else ShardingRule(),
                features=features,
            )
        self.metadata = metadata
        self.executor = ExecutionEngine(
            metadata.live_sources,
            max_connections_per_query=max_connections_per_query,
            worker_threads=worker_threads,
            resilience=resilience,
        )
        #: attached via attach_observability; None = no metrics/trace cost
        self.observability: "Observability | None" = None
        self._parse_cache: LruCache[str, ast.Statement] = LruCache(self._PARSE_CACHE_LIMIT)
        #: compiled plans for parameterized statements (the hot path)
        self.plan_cache = PlanCache()
        self.plan_cache.epoch = metadata.current().plan_epoch
        #: materialized hot point-read results (off by default; enabled
        #: via ``SET VARIABLE result_cache = ON`` or the bench harness).
        #: Keys embed the plan epoch; entries carry storage data-version
        #: and replica-group causal guards (see .result_cache).
        self.result_cache = ResultCache()
        metadata.subscribe(self._on_metadata_swap)

    # -- metadata views (always the *current* snapshot) --------------------

    @property
    def data_sources(self) -> dict[str, DataSource]:
        """The live (mutable, manager-synced) data-source map."""
        return self.metadata.live_sources

    @property
    def rule(self) -> ShardingRule:
        return self.metadata.current().rule

    @property
    def features(self) -> tuple[Feature, ...]:
        return self.metadata.current().features

    def _on_metadata_swap(self, old: MetadataContext, new: MetadataContext) -> None:
        """Single invalidation point: caches are keyed by plan epoch, so a
        swap that changed rule/sources/features drops them by version
        comparison (replacing the old scattered ``_invalidate_plans``)."""
        if new.plan_epoch != old.plan_epoch:
            self.plan_cache.advance_epoch(new.plan_epoch, new.reason)
            # Parsed ASTs are config-independent, but clearing on the same
            # epoch keeps one uniform invalidation story and bounds how
            # long pre-change statements stay warm.
            self._parse_cache.clear()
            # Result-cache keys embed the epoch, so stale entries could
            # never *hit* again — clearing reclaims their memory at once.
            self.result_cache.clear("plan epoch advanced")

    def attach_observability(self, observability: "Observability") -> None:
        """Wire tracing, stage metrics and pool gauges into this engine."""
        self.observability = observability
        self.executor.observability = observability
        observability.register_execution_metrics(self.executor.metrics)
        observability.register_plan_cache(self.plan_cache)
        for name, source in self.data_sources.items():
            observability.watch_pool(name, source.pool)
            observability.register_storage_plan_cache(name, source.database.plan_cache)

    def close(self) -> None:
        self.executor.close()

    def add_feature(self, feature: Feature) -> None:
        self.metadata.add_feature(feature)

    def remove_feature(self, name: str) -> None:
        self.metadata.remove_feature(name)

    def _federated(self, context: StatementContext, snap: MetadataContext) -> EngineResult:
        """Cross-source join fallback (see :mod:`repro.engine.federation`)."""
        from .federation import federate_select

        query_result = federate_select(self, context, snap)
        result = EngineResult(
            route_type="federation",
            unit_count=0,
            merger_kind="federation",
        )
        result.merged = MergedResult(
            columns=list(query_result.columns),
            rows=iter(query_result.rows),
            merger_kind="federation",
        )
        return result

    _PARSE_CACHE_LIMIT = 2048

    def _parse_cached(self, sql: str) -> ast.Statement:
        """Parse with a per-engine bounded LRU statement cache.

        Cached ASTs are cloned before use because downstream stages mutate
        statements in place (INSERT key generation, encrypt rewrites).
        """
        cached = self._parse_cache.get(sql)
        if cached is None:
            cached = parse(sql)
            self._parse_cache.put(sql, cached)
        return ast.clone_statement(cached)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: str | ast.Statement,
        params: Sequence[Any] = (),
        held_connections: Mapping[str, Connection] | None = None,
        hint_values: Sequence[Any] | None = None,
        force_trace: bool = False,
    ) -> EngineResult:
        """Run one logical statement through the full pipeline.

        With a :class:`ResiliencePolicy` attached, idempotent reads that
        fail with a re-routable error (transient fault, source DOWN,
        breaker open) re-enter the pipeline from routing: health-aware
        routing then picks a different replica, turning a replica outage
        into extra latency instead of an error.

        ``force_trace`` traces this one statement even while the tracer
        is globally disabled (DistSQL ``TRACE <sql>``); the finished
        :class:`~repro.observability.trace.Trace` rides on
        ``result.trace``.
        """
        observability = self.observability
        trace: "Trace | None" = None
        if observability is not None and (force_trace or observability.tracer.enabled):
            if isinstance(sql, str):
                text = sql
            else:
                # pre-parsed statement: render it back so the trace still
                # shows SQL, not an AST class name (traced statements only)
                try:
                    from ..sql.formatter import format_statement

                    text = format_statement(sql)
                except Exception:
                    text = type(sql).__name__
            trace = observability.tracer.start_trace(text)
        reroutes = 0
        try:
            while True:
                try:
                    result = self._execute_once(sql, params, held_connections, hint_values, trace)
                except REROUTABLE_ERRORS as exc:
                    if not self._can_reroute(sql, held_connections, reroutes):
                        raise
                    reroutes += 1
                    self.executor.metrics.reroutes += 1
                    self.executor._emit("reroute", attempt=reroutes, error=exc)
                    if trace is not None:
                        trace.root.add_event(
                            "reroute", attempt=reroutes, error=type(exc).__name__
                        )
                    continue
                if trace is not None:
                    root = trace.root
                    root.attributes["route_type"] = result.route_type
                    root.attributes["units"] = result.unit_count
                    root.attributes["merger_kind"] = result.merger_kind
                    if result.partial_results:
                        root.attributes["partial"] = True
                        root.attributes["skipped_sources"] = ",".join(result.skipped_sources)
                    if reroutes:
                        root.attributes["reroutes"] = reroutes
                    trace.finish()
                    observability.record_trace(trace)
                    result.trace = trace
                return result
        except Exception as exc:
            if observability is not None:
                observability.on_statement({}, "", 0, error=True)
                if observability.workload.enabled and isinstance(sql, str):
                    observability.workload.record_error(sql)
                if trace is not None:
                    trace.finish(error=exc)
                    observability.record_trace(trace)
            raise

    def _can_reroute(
        self,
        sql: str | ast.Statement,
        held_connections: Mapping[str, Connection] | None,
        reroutes: int,
    ) -> bool:
        policy = self.executor.resilience
        if policy is None or reroutes >= policy.max_reroutes:
            return False
        if held_connections is not None:
            return False  # pinned to a transaction's connections
        # Only re-parsed statements re-enter cleanly (rewrite mutates ASTs
        # in place, so a caller-supplied AST cannot be safely re-routed).
        if not isinstance(sql, str):
            return False
        statement = self._parse_cached(sql)
        return isinstance(statement, ast.SelectStatement) and not statement.for_update

    def _execute_once(
        self,
        sql: str | ast.Statement,
        params: Sequence[Any] = (),
        held_connections: Mapping[str, Connection] | None = None,
        hint_values: Sequence[Any] | None = None,
        trace: "Trace | None" = None,
    ) -> EngineResult:
        # Pin ONE metadata snapshot for this statement's whole lifetime:
        # every stage below reads rule/sources/features/dialects from
        # ``snap``, so a concurrent DistSQL mutation (which swaps in the
        # *next* snapshot) can never be half-observed. The snapshot is
        # also recorded on the session so any worker that continues this
        # statement (steal/fan-out) can reach it, and SHOW SESSIONS can
        # attribute in-flight statements to a metadata version.
        snap = self.metadata.current()
        session = current_session()
        prev_snapshot = session.snapshot
        session.snapshot = snap
        try:
            return self._execute_pinned(
                sql, params, held_connections, hint_values, trace, snap)
        finally:
            session.snapshot = prev_snapshot

    def _execute_pinned(
        self,
        sql: str | ast.Statement,
        params: Sequence[Any],
        held_connections: Mapping[str, Connection] | None,
        hint_values: Sequence[Any] | None,
        trace: "Trace | None",
        snap: MetadataContext,
    ) -> EngineResult:
        cache_key = self._result_cache_key(sql, params, held_connections,
                                           hint_values, snap)
        if cache_key is None:
            return self._execute_uncached(
                sql, params, held_connections, hint_values, trace, snap, None)
        result_cache = self.result_cache
        entry = result_cache.lookup(cache_key, session_token)
        if entry is not None:
            return self._cached_result(entry, trace)
        leader, event = result_cache.lease(cache_key)
        if leader:
            try:
                return self._execute_uncached(
                    sql, params, held_connections, hint_values, trace, snap,
                    cache_key)
            finally:
                result_cache.release(cache_key)
        # Single-flight follower: give the in-flight leader a bounded
        # chance to populate the entry, then fall through and execute
        # independently (still eligible to store) if it did not.
        event.wait(result_cache.single_flight_timeout)
        entry = result_cache.lookup(cache_key, session_token)
        if entry is not None:
            return self._cached_result(entry, trace)
        return self._execute_uncached(
            sql, params, held_connections, hint_values, trace, snap, cache_key)

    def _result_cache_key(
        self,
        sql: str | ast.Statement,
        params: Sequence[Any],
        held_connections: Mapping[str, Connection] | None,
        hint_values: Sequence[Any] | None,
        snap: MetadataContext,
    ) -> tuple | None:
        """Cache key for this call, or None when it must not use the cache.

        Eligible statements are plain-text SELECTs outside transactions
        and hints, on a feature set that never mutates ASTs (the same
        ``plan_cache_safe`` contract the plan cache relies on), from a
        session not pinned to primaries.
        """
        if (
            not self.result_cache.enabled
            or held_connections is not None
            or hint_values is not None
            or not isinstance(sql, str)
            or not snap.plan_cache_safe
            or primary_pinned()
        ):
            return None
        if not sql.lstrip()[:6].upper().startswith("SELECT"):
            return None
        try:
            key = (sql, tuple(params), snap.plan_epoch)
            hash(key)
        except TypeError:
            return None
        return key

    def _cached_result(self, entry: Any, trace: "Trace | None") -> EngineResult:
        """Serve a guarded cache hit: no routing, no storage work."""
        result = EngineResult(
            route_type="result_cache", unit_count=0, merger_kind="cached")
        result.merged = MergedResult(
            columns=list(entry.columns), rows=iter(entry.rows),
            merger_kind="cached")
        if trace is not None:
            trace.root.add_event("result_cache_hit")
        if self.observability is not None:
            self.observability.on_statement(
                {}, "result_cache", 0, error=False, weight=0)
        return result

    def _execute_uncached(
        self,
        sql: str | ast.Statement,
        params: Sequence[Any],
        held_connections: Mapping[str, Connection] | None,
        hint_values: Sequence[Any] | None,
        trace: "Trace | None",
        snap: MetadataContext,
        cache_key: tuple | None,
    ) -> EngineResult:
        observability = self.observability
        # Histogram sampling: unsampled statements (weight 0) skip the
        # perf_counter calls and stage dict entirely; counters stay exact.
        # A forced TRACE of an unsampled statement records unweighted.
        weight = observability.stage_weight() if observability is not None else 0
        if weight == 0 and trace is not None:
            weight = 1
        timed = weight > 0
        stages: dict[str, float] = {}
        if trace is not None:
            trace.root.attributes["metadata_version"] = snap.version

        plan_cache = self.plan_cache
        use_plans = (
            plan_cache.enabled
            and snap.plan_cache_safe
            and hint_values is None
            and isinstance(sql, str)
        )
        compile_after_parse = False
        if use_plans:
            plan = plan_cache.get(sql, snap.plan_epoch)  # type: ignore[arg-type]
            if plan is None:
                plan_cache.misses += 1
                compile_after_parse = True
            elif not plan.cacheable or len(params) < plan.param_count:
                plan_cache.bypasses += 1
            else:
                plan_cache.hits += 1
                plan.hits += 1
                try:
                    return self._execute_plan(
                        plan, params, held_connections, trace, stages, timed,
                        weight, snap, cache_key,
                    )
                except _PlanRouteError as exc:
                    # The route template proved unusable at bind time (e.g.
                    # the statement needs the federation fallback). Demote
                    # to a negative entry and take the slow path.
                    plan_cache.mark_uncacheable(
                        sql, f"route: {exc.error}", snap.plan_epoch  # type: ignore[arg-type]
                    )
                    if trace is not None:
                        trace.root.add_event(
                            "plan_cache_fallback", error=type(exc.error).__name__
                        )
                    stages = {}

        t0 = time.perf_counter() if timed else 0.0
        span = (
            trace.start_span("parse", metadata_version=snap.version)
            if trace is not None else None
        )
        if isinstance(sql, str):
            statement = self._parse_cached(sql)
            sql_text = sql
        else:
            statement = sql
            # Render pre-parsed statements back to SQL once so diagnostics
            # (slow-query log, PREVIEW, traces) never show empty text.
            try:
                sql_text = format_statement(statement)
            except Exception:
                sql_text = type(statement).__name__

        if statement.category == "DDL":
            plan_cache.invalidate("DDL")
        if compile_after_parse:
            plan_cache.store(  # type: ignore[arg-type]
                compile_plan(sql, statement, snap.rule), snap.plan_epoch
            )

        context = build_context(statement, sql_text, params, snap.rule, hint_values)
        for feature in snap.features:
            feature.on_context(context)
        if span is not None:
            span.finish()
        if timed:
            now = time.perf_counter()
            stages["parse"] = now - t0
            t0 = now

        span = (
            trace.start_span("route", metadata_version=snap.version)
            if trace is not None else None
        )
        try:
            route_result = route(context, snap.rule)
        except RouteError as exc:
            if (
                self.enable_federation
                and isinstance(statement, ast.SelectStatement)
                and "co-located" in str(exc)
            ):
                if span is not None:
                    span.attributes["fallback"] = "federation"
                    span.finish()
                if timed:
                    now = time.perf_counter()
                    stages["route"] = now - t0
                    t0 = now
                if use_plans:
                    # A federated statement can never run from a plan.
                    plan_cache.mark_uncacheable(
                        sql, "federation fallback", snap.plan_epoch  # type: ignore[arg-type]
                    )
                span = trace.start_span("federation") if trace is not None else None
                result = self._federated(context, snap)
                if span is not None:
                    span.finish()
                if timed:
                    stages["federation"] = time.perf_counter() - t0
                if observability is not None:
                    observability.on_statement(
                        stages, "federation", 0, error=False, weight=weight
                    )
                    workload = observability.workload
                    if weight and workload.enabled:
                        row_sink = workload.record_statement(
                            context=context, route_type="federation", units=(),
                            stages=stages, weight=weight, update_count=0,
                            is_query=True,
                        )
                        if row_sink is not None and result.merged is not None:
                            result.merged.rows = _counting(result.merged.rows, row_sink)
                return result
            if span is not None:
                span.finish(error=exc)
            raise
        for feature in snap.features:
            feature.on_route(route_result, context)
        if span is not None:
            span.attributes["route_type"] = route_result.route_type
            span.attributes["units"] = len(route_result.units)
            span.finish()
        if timed:
            now = time.perf_counter()
            stages["route"] = now - t0
            t0 = now

        span = (
            trace.start_span("rewrite", metadata_version=snap.version)
            if trace is not None else None
        )
        rewrite_result = rewrite(context, route_result, snap.dialect_of)
        units = rewrite_result.execution_units
        for feature in snap.features:
            feature.on_units(units, context)
        if span is not None:
            span.attributes["units"] = len(units)
            span.finish()
        if timed:
            now = time.perf_counter()
            stages["rewrite"] = now - t0
            t0 = now

        return self._run_units(
            context, route_result.route_type, units, rewrite_result.merge_spec,
            held_connections, trace, stages, timed, weight, snap,
            cache_key=cache_key,
        )

    # ------------------------------------------------------------------
    # Statement pipelining
    # ------------------------------------------------------------------

    def execute_pipeline(
        self,
        statements: Sequence[tuple[str | ast.Statement, Sequence[Any]]],
        held_connections: Mapping[str, Connection] | None = None,
    ) -> list[EngineResult]:
        """Fused transaction pipelining across the five-stage engine.

        Every statement is prepared up front (plan-cache hot path when
        possible); runs of *consecutive* statements that each route to a
        single unit on the same data source are shipped through one
        connection checkout and one storage round trip
        (:meth:`ExecutionEngine.execute_pipeline`), which coalesces their
        write-I/O per written table — the transaction-pipelining analog
        of group commit. Statements that fan out to several shards (or
        need the federation fallback) flush the pending group and run
        through the normal execute path, preserving statement order.

        Returns one :class:`EngineResult` per statement, in order.
        Semantics are serial-equivalent; on a mid-batch error the
        exception propagates with earlier statements' effects in place
        (an enclosing distributed transaction's undo still covers them).
        Pipelined statements skip per-statement tracing and workload heat
        sampling — the batch is the unit of observability — and their
        ``execute`` stage is recorded as the batch time amortized over
        the batch.
        """
        observability = self.observability
        snap = self.metadata.current()
        results: list[EngineResult | None] = [None] * len(statements)
        #: buffered (index, context, route_type, unit, merge_spec, is_query)
        pending: list[tuple[int, StatementContext, str, ExecutionUnit,
                            MergeSpec | None, bool]] = []

        def flush() -> None:
            if not pending:
                return
            ds_name = pending[0][3].data_source
            t0 = time.perf_counter()
            try:
                outs = self.executor.execute_pipeline(
                    ds_name,
                    [(p[3].statement, p[3].params, p[5]) for p in pending],
                    held_connections,
                    sources=snap.data_sources,
                )
            except Exception as exc:
                for p in pending:
                    for feature in snap.features:
                        feature.on_error(exc, p[1])
                pending.clear()
                raise
            per_statement = (time.perf_counter() - t0) / len(pending)
            for (index, context, route_type, unit, merge_spec, is_query), out \
                    in zip(pending, outs):
                result = EngineResult(
                    generated_keys=context.generated_keys,
                    route_type=route_type,
                    unit_count=1,
                    modes={ds_name: ConnectionMode.CONNECTION_STRICTLY},
                    units=[unit],
                )
                if is_query:
                    spec = merge_spec or MergeSpec(is_query=True, single_node=True)
                    merged = merge(spec, [out])
                    result.merged = MergedResult(
                        columns=merged.columns,
                        rows=merged.rows,
                        merger_kind=merged.merger_kind,
                    )
                    result.merger_kind = merged.merger_kind
                else:
                    result.update_count = out
                    result.merger_kind = "update"
                if observability is not None:
                    weight = observability.stage_weight()
                    observability.on_statement(
                        {"execute": per_statement} if weight else {},
                        route_type, 1, error=False, weight=weight,
                    )
                for feature in snap.features:
                    feature.on_result(result, context)
                results[index] = result
            pending.clear()

        for index, (sql, params) in enumerate(statements):
            try:
                context, route_type, units, merge_spec = self._prepare_units(
                    sql, params, snap)
            except RouteError:
                # e.g. a cross-shard join needing federation: run the
                # statement through the full path (which owns the fallback)
                flush()
                results[index] = self.execute(sql, params, held_connections)
                continue
            is_query = isinstance(context.statement, ast.SelectStatement)
            if len(units) != 1:
                flush()
                results[index] = self._run_units(
                    context, route_type, units, merge_spec,
                    held_connections, None, {}, False, 0, snap,
                )
                continue
            unit = units[0]
            if pending and pending[0][3].data_source != unit.data_source:
                flush()
            pending.append((index, context, route_type, unit, merge_spec, is_query))
        flush()
        return results  # type: ignore[return-value]

    def _prepare_units(
        self,
        sql: str | ast.Statement,
        params: Sequence[Any],
        snap: MetadataContext,
    ) -> tuple[StatementContext, str, list[ExecutionUnit], MergeSpec | None]:
        """Front half of the pipeline (parse→route→rewrite) without
        executing: shared by statement pipelining, which needs to see all
        routed units *before* deciding how to batch them.

        Takes the plan-cache hot path when possible (counters included);
        raises :class:`RouteError` for statements the router cannot place
        (the caller owns the federation fallback).
        """
        plan_cache = self.plan_cache
        use_plans = (
            plan_cache.enabled and snap.plan_cache_safe and isinstance(sql, str)
        )
        compile_after_parse = False
        if use_plans:
            plan = plan_cache.get(sql, snap.plan_epoch)  # type: ignore[arg-type]
            if plan is None:
                plan_cache.misses += 1
                compile_after_parse = True
            elif not plan.cacheable or len(params) < plan.param_count:
                plan_cache.bypasses += 1
            else:
                plan_cache.hits += 1
                plan.hits += 1
                bound = tuple(params)
                conditions = plan.bind_conditions(bound)
                context = plan.make_context(bound, conditions)
                for feature in snap.features:
                    feature.on_context(context)
                route_result = plan.route_bound(
                    conditions, snap.rule, lambda: context)
                for feature in snap.features:
                    feature.on_route(route_result, context)
                units, merge_spec = plan.build_units(
                    route_result, bound, snap.dialect_of)
                for feature in snap.features:
                    feature.on_units(units, context)
                return context, route_result.route_type, units, merge_spec

        if isinstance(sql, str):
            statement = self._parse_cached(sql)
            sql_text = sql
        else:
            statement = sql
            try:
                sql_text = format_statement(statement)
            except Exception:
                sql_text = type(statement).__name__
        if statement.category == "DDL":
            plan_cache.invalidate("DDL")
        if compile_after_parse:
            plan_cache.store(  # type: ignore[arg-type]
                compile_plan(sql, statement, snap.rule), snap.plan_epoch
            )
        context = build_context(statement, sql_text, params, snap.rule, None)
        for feature in snap.features:
            feature.on_context(context)
        route_result = route(context, snap.rule)
        for feature in snap.features:
            feature.on_route(route_result, context)
        rewrite_result = rewrite(context, route_result, snap.dialect_of)
        units = rewrite_result.execution_units
        for feature in snap.features:
            feature.on_units(units, context)
        return context, route_result.route_type, units, rewrite_result.merge_spec

    def _execute_plan(
        self,
        plan: CompiledPlan,
        params: Sequence[Any],
        held_connections: Mapping[str, Connection] | None,
        trace: "Trace | None",
        stages: dict[str, float],
        timed: bool,
        weight: int,
        snap: MetadataContext,
        cache_key: tuple | None = None,
    ) -> EngineResult:
        """Hot path: bind parameters into a compiled plan.

        Replaces parse, context build, route and rewrite (and the per-hit
        AST clone) with condition binding + shard-key -> data-node mapping
        + a rewrite-template lookup. Feature hooks still run — against the
        immutable cached AST, which ``plan_cache_safe`` features never
        mutate — so admission guards (circuit breaker, throttle) and unit
        redirection (read-write splitting, shadow) keep working.
        """
        params = tuple(params)
        t0 = time.perf_counter() if timed else 0.0
        span = (
            trace.start_span("plan_cache_hit", metadata_version=snap.version)
            if trace is not None else None
        )
        conditions = plan.bind_conditions(params)
        context = plan.make_context(params, conditions)
        for feature in snap.features:
            feature.on_context(context)
        try:
            route_result = plan.route_bound(conditions, snap.rule, lambda: context)
        except RouteError as exc:
            if span is not None:
                span.finish(error=exc)
            raise _PlanRouteError(exc) from exc
        for feature in snap.features:
            feature.on_route(route_result, context)
        units, merge_spec = plan.build_units(route_result, params, snap.dialect_of)
        for feature in snap.features:
            feature.on_units(units, context)
        if span is not None:
            span.attributes["route_type"] = route_result.route_type
            span.attributes["units"] = len(units)
            span.finish()
        if timed:
            stages["plan_cache_hit"] = time.perf_counter() - t0
        return self._run_units(
            context, route_result.route_type, units, merge_spec,
            held_connections, trace, stages, timed, weight, snap,
            cache_key=cache_key,
        )

    def _run_units(
        self,
        context: StatementContext,
        route_type: str,
        units: list[ExecutionUnit],
        merge_spec: MergeSpec | None,
        held_connections: Mapping[str, Connection] | None,
        trace: "Trace | None",
        stages: dict[str, float],
        timed: bool,
        weight: int,
        snap: MetadataContext,
        cache_key: tuple | None = None,
    ) -> EngineResult:
        """Shared execute+merge tail of both the slow and plan-hit paths."""
        observability = self.observability
        is_query = isinstance(context.statement, ast.SelectStatement)
        # Result-cache guards must be captured BEFORE the storage read so
        # a write racing the read bumps a captured version and the store
        # below is rejected (validated cache-aside).
        cache_capture = None
        if (
            cache_key is not None
            and is_query
            and not getattr(context.statement, "for_update", False)
        ):
            cache_capture = self._capture_cache_guards(context, units, snap)
        # Workload analytics piggyback on the same sampling decision as the
        # stage histograms: unsampled statements (weight 0) pay one branch.
        workload = observability.workload if observability is not None else None
        heat = None
        if workload is not None and weight and workload.enabled:
            heat = workload.begin_statement(weight)
        t0 = time.perf_counter() if timed else 0.0
        span = (
            trace.start_span("execute", metadata_version=snap.version)
            if trace is not None else None
        )
        try:
            execution = self.executor.execute(
                units, is_query, held_connections,
                route_type=route_type,
                trace=trace, parent_span=span,
                sources=snap.data_sources,
                heat=heat,
            )
        except Exception as exc:
            if span is not None:
                span.finish(error=exc)
            for feature in snap.features:
                feature.on_error(exc, context)
            raise
        if span is not None:
            if execution.partial_results:
                span.attributes["partial"] = True
            span.finish()
        if timed:
            stages["execute"] = time.perf_counter() - t0

        result = EngineResult(
            update_count=execution.update_count,
            generated_keys=context.generated_keys,
            route_type=route_type,
            unit_count=len(units),
            modes=dict(execution.modes),
            units=list(units),
            partial_results=execution.partial_results,
            skipped_sources=list(execution.skipped_sources),
        )
        if is_query:
            t0 = time.perf_counter() if timed else 0.0
            span = (
                trace.start_span("merge", metadata_version=snap.version)
                if trace is not None else None
            )
            spec = merge_spec or MergeSpec(is_query=True, single_node=True)
            merged = merge(spec, execution.results)
            result.merged = MergedResult(
                columns=merged.columns,
                rows=_releasing(merged.rows, execution),
                merger_kind=merged.merger_kind,
            )
            result.merger_kind = merged.merger_kind
            if span is not None:
                span.attributes["merger_kind"] = merged.merger_kind
                span.finish()
            if timed:
                stages["merge"] = time.perf_counter() - t0
        else:
            result.merger_kind = "update"
            execution.release()

        if observability is not None:
            observability.on_statement(
                stages, route_type, len(units), error=False,
                weight=weight,
            )
        if heat is not None:
            row_sink = workload.record_statement(
                context=context, route_type=route_type, units=units,
                stages=stages, weight=weight,
                update_count=execution.update_count,
                is_query=is_query, heat_sample=heat,
            )
            if row_sink is not None and result.merged is not None:
                result.merged.rows = _counting(result.merged.rows, row_sink)
        for feature in snap.features:
            feature.on_result(result, context)
        if (
            cache_capture is not None
            and result.merged is not None
            and not result.partial_results
        ):
            self._store_cached_result(cache_key, result, cache_capture)
        return result

    def _capture_cache_guards(
        self,
        context: StatementContext,
        units: list[ExecutionUnit],
        snap: MetadataContext,
    ) -> tuple[list[tuple], list[tuple]] | None:
        """(data-version guards, causal guards) for a cacheable read.

        One guard per (unit, actual table); replica members are brought
        current first (the same lazy apply the connection layer performs)
        so pending-but-due replication never poisons the captured
        versions. Returns None when any target is unresolvable.
        """
        guards: list[tuple] = []
        causal: list[tuple] = []
        for unit in units:
            source = snap.data_sources.get(unit.data_source)
            if source is None:
                return None
            replica = getattr(source, "replica", None)
            group = getattr(source, "replica_group", None)
            if replica is not None:
                replica.apply_due()
                causal.append((replica.log.group, replica.applied_lsn))
            elif group is not None:
                causal.append((group.name, group.last_lsn()))
            database = source.database
            for logic in context.logic_tables:
                actual = unit.unit.actual_table(logic)
                guards.append(
                    (database, actual, database.data_version(actual)))
        return guards, causal

    def _store_cached_result(
        self,
        cache_key: tuple | None,
        result: EngineResult,
        cache_capture: tuple[list[tuple], list[tuple]],
    ) -> None:
        """Materialize a small result and store it under its guards.

        Drains up to ``max_rows + 1`` rows through the merged iterator
        (wrappers included, so pooled connections release and row sinks
        fire); oversized results pass through untouched via chaining.
        """
        result_cache = self.result_cache
        merged = result.merged
        assert merged is not None
        rows_iter = iter(merged.rows)
        buffered = list(itertools.islice(rows_iter, result_cache.max_rows + 1))
        if len(buffered) <= result_cache.max_rows:
            guards, causal = cache_capture
            result_cache.store(
                cache_key, merged.columns, buffered, guards, causal)
        merged.rows = itertools.chain(buffered, rows_iter)


class _PlanRouteError(Exception):
    """Internal: a compiled plan's route template failed at bind time."""

    def __init__(self, error: RouteError):
        super().__init__(str(error))
        self.error = error


def _releasing(rows, execution: ExecutionResult):
    """Wrap the merged iterator so pooled connections are returned when the
    stream is exhausted (or the generator is closed/garbage-collected)."""
    try:
        yield from rows
    finally:
        execution.release()


def _counting(rows, sink):
    """Count merged rows as the caller drains them, reporting the total to
    the workload tracker's row sink when the stream finishes (streaming
    merges don't know their row count up front)."""
    produced = 0
    try:
        for row in rows:
            produced += 1
            yield row
    finally:
        sink(produced)
