"""SQL router: map a statement context onto route units (Section V-B).

Implements the paper's two strategies and their sub-strategies:

- **Broadcast route** — statements without usable sharding keys, DDL on
  sharded tables, and writes to broadcast tables fan out to every
  relevant node/data source.
- **Sharding route**
  - *standard route*: one logic table, or several tables within one
    binding group — conditions narrow the node set; binding partners are
    derived by node index so joins stay shard-local;
  - *cartesian route*: joined tables without a binding relationship —
    per data source, the cross product of both tables' actual tables.

INSERT batches are routed per values-row, so one logical multi-row INSERT
becomes one unit per shard holding only that shard's rows.

Concurrency contract: ``route(context, rule)`` is a pure function of its
arguments. The pipeline always passes the rule of the statement's pinned
:class:`~repro.metadata.MetadataContext` snapshot — frozen, so neither
this module nor a concurrent DistSQL mutation can change it mid-route —
which is what makes routing lock-free under live reconfiguration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..exceptions import RouteError
from ..sharding import DataNode, ShardingRule
from ..sql import ast
from .context import StatementContext


@dataclass
class RouteUnit:
    """One executable target: a data source plus logic->actual table map."""

    data_source: str
    table_map: dict[str, str] = field(default_factory=dict)
    #: for INSERT: indexes of values-rows this unit receives
    row_indexes: tuple[int, ...] | None = None

    def actual_table(self, logic_table: str) -> str:
        return self.table_map.get(logic_table.lower(), logic_table)


@dataclass
class RouteResult:
    """Outcome of routing one statement."""

    units: list[RouteUnit]
    route_type: str  # "standard" | "broadcast" | "cartesian" | "unicast"

    @property
    def is_single(self) -> bool:
        return len(self.units) == 1

    def data_sources(self) -> list[str]:
        seen: dict[str, None] = {}
        for unit in self.units:
            seen.setdefault(unit.data_source)
        return list(seen)


def shard_key_values(context: StatementContext) -> list[tuple[str, str, Any]]:
    """(logic table, column, value) triples this statement routed by.

    Feeds the workload tracker's hot-key sketches: only *point* values
    count (equality / small IN lists / per-row INSERT keys) — ranges and
    wide IN lists say nothing about individual key popularity.
    """
    out: list[tuple[str, str, Any]] = []
    statement = context.statement
    if isinstance(statement, ast.InsertStatement):
        logic = statement.table.name.lower()
        for row in context.insert_row_conditions:
            for column, condition in row.items():
                if condition.values:
                    out.append((logic, column, condition.values[0]))
        return out
    for table, columns in context.conditions.items():
        if table.startswith("__"):  # marker entries such as "__join__"
            continue
        for column, condition in columns.items():
            values = condition.values
            if values is not None and 0 < len(values) <= 8:
                for value in values:
                    out.append((table, column, value))
    return out


def route(context: StatementContext, rule: ShardingRule) -> RouteResult:
    """Route one statement context against the sharding rule."""
    statement = context.statement
    if isinstance(statement, ast.InsertStatement):
        return _route_insert(context, rule)
    if statement.category == "DDL":
        return _route_ddl(context, rule)
    if statement.category in ("TCL", "DAL"):
        return _route_all_sources(rule)

    sharded = [t for t in context.logic_tables if rule.is_sharded(t)]
    broadcast = [t for t in context.logic_tables if rule.is_broadcast(t)]

    if not sharded:
        if broadcast and statement.category == "DML":
            return _route_all_sources(rule)
        return _unicast(rule)

    unique_sharded = list(dict.fromkeys(t.lower() for t in sharded))
    if len(unique_sharded) == 1:
        return _standard_route(context, rule, unique_sharded[0])
    if rule.are_binding(unique_sharded):
        return _binding_route(context, rule, unique_sharded)
    return _cartesian_route(context, rule, unique_sharded)


# ---------------------------------------------------------------------------
# Sub-strategies
# ---------------------------------------------------------------------------


def _standard_route(context: StatementContext, rule: ShardingRule, logic_table: str) -> RouteResult:
    table_rule = rule.table_rule(logic_table)
    nodes = table_rule.route(context.conditions_for(logic_table))
    units = [
        RouteUnit(node.data_source, {logic_table: node.table}) for node in nodes
    ]
    route_type = "standard"
    if len(nodes) == len(table_rule.data_nodes) and not context.conditions_for(logic_table):
        route_type = "broadcast"
    return RouteResult(units, route_type)


def _binding_route(context: StatementContext, rule: ShardingRule, tables: list[str]) -> RouteResult:
    """Route the primary table, then align partners by node index."""
    primary_name = tables[0]
    primary = rule.table_rule(primary_name)
    # Conditions may be attached to any binding member (e.g. WHERE on the
    # order table while the user table is primary); merge them since all
    # members share the sharding key semantics.
    merged_conditions = dict(context.conditions_for(primary_name))
    for other in tables[1:]:
        for column, condition in context.conditions_for(other).items():
            existing = merged_conditions.get(column)
            merged_conditions[column] = existing.intersect(condition) if existing else condition
    nodes = primary.route(merged_conditions)
    units = []
    for node in nodes:
        table_map = {primary_name: node.table}
        for other in tables[1:]:
            partner = rule.binding_partner_node(primary, node, rule.table_rule(other))
            table_map[other] = partner.table
        units.append(RouteUnit(node.data_source, table_map))
    return RouteResult(units, "standard")


def _cartesian_route(context: StatementContext, rule: ShardingRule, tables: list[str]) -> RouteResult:
    """Per data source, cross-product the routed tables of each logic table."""
    per_table_nodes: dict[str, list[DataNode]] = {
        t: rule.table_rule(t).route(context.conditions_for(t)) for t in tables
    }
    data_sources: list[str] = []
    for nodes in per_table_nodes.values():
        for node in nodes:
            if node.data_source not in data_sources:
                data_sources.append(node.data_source)
    units: list[RouteUnit] = []
    for ds in data_sources:
        tables_in_ds: list[list[str]] = []
        for t in tables:
            local = [n.table for n in per_table_nodes[t] if n.data_source == ds]
            tables_in_ds.append(local)
        if any(not local for local in tables_in_ds):
            continue  # join cannot execute here; some table has no shard in ds
        for combo in itertools.product(*tables_in_ds):
            units.append(RouteUnit(ds, dict(zip(tables, combo))))
    if not units:
        raise RouteError(
            f"cartesian route found no co-located shards for tables {tables}"
        )
    return RouteResult(units, "cartesian")


def _route_insert(context: StatementContext, rule: ShardingRule) -> RouteResult:
    statement = context.statement
    assert isinstance(statement, ast.InsertStatement)
    logic = statement.table.name
    if rule.is_broadcast(logic):
        return _route_all_sources(rule)
    if not rule.is_sharded(logic):
        return _unicast(rule)
    table_rule = rule.table_rule(logic)
    if not context.insert_row_conditions:
        # No sharding columns on this rule (vertical / single-node table):
        # the whole batch goes to the rule's one data node.
        nodes = table_rule.route({})
        if len(nodes) != 1:
            raise RouteError(
                f"INSERT into {logic!r} has no sharding values but the rule "
                f"spans {len(nodes)} data nodes"
            )
        unit = RouteUnit(nodes[0].data_source, {logic.lower(): nodes[0].table})
        return RouteResult([unit], "standard")
    by_node: dict[DataNode, list[int]] = {}
    for row_index, conditions in enumerate(context.insert_row_conditions):
        nodes = table_rule.route(conditions)
        if len(nodes) != 1:
            raise RouteError(
                f"INSERT row #{row_index} routed to {len(nodes)} nodes; "
                "sharding values must identify exactly one shard"
            )
        by_node.setdefault(nodes[0], []).append(row_index)
    units = [
        RouteUnit(node.data_source, {logic.lower(): node.table}, row_indexes=tuple(rows))
        for node, rows in by_node.items()
    ]
    return RouteResult(units, "standard")


def _route_ddl(context: StatementContext, rule: ShardingRule) -> RouteResult:
    tables = [t for t in context.logic_tables]
    if tables and rule.is_sharded(tables[0]):
        table_rule = rule.table_rule(tables[0])
        units = [
            RouteUnit(node.data_source, {tables[0].lower(): node.table})
            for node in table_rule.data_nodes
        ]
        return RouteResult(units, "broadcast")
    if tables and rule.is_broadcast(tables[0]):
        return _route_all_sources(rule)
    return _unicast(rule)


def _route_all_sources(rule: ShardingRule) -> RouteResult:
    sources = rule.all_data_sources()
    if not sources:
        raise RouteError("no data sources configured")
    return RouteResult([RouteUnit(ds) for ds in sources], "broadcast")


def _unicast(rule: ShardingRule) -> RouteResult:
    sources = rule.all_data_sources()
    if not sources:
        raise RouteError("no data sources configured")
    target = rule.default_data_source or sources[0]
    return RouteResult([RouteUnit(target)], "unicast")
