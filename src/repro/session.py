"""Thread-portable session identity: the :class:`SessionContext`.

Historically every piece of per-session state in this codebase lived in
its own ``threading.local`` — causal replication tokens in
``storage/replication.py``, the metadata mutation guard in
``metadata.py``, the Governor publish guard in ``adaptors/runtime.py``.
That equates "session" with "OS thread", which breaks down the moment a
statement crosses a thread boundary (the work-stealing executor, the
federation fan-out) and makes a multiplexing proxy — thousands of client
sessions over a small worker pool — impossible.

This module replaces all of them with one explicit object:

* :class:`SessionContext` carries **everything** a logical session owns:
  causal replication tokens (read-your-writes), the primary-pin depth,
  re-entrant guard counters (metadata mutation / Governor publishing),
  per-session variables, the statement's pinned metadata snapshot, and
  bookkeeping surfaced by ``SHOW SESSIONS``.
* The *current* session is tracked in a ``contextvars.ContextVar``.
  Contexts are per-thread by default, so code that never activates a
  session explicitly (direct embedding, benches, tests) still gets
  thread-scoped sessions — the old behavior — via the lazily-created
  **thread-root session** of :func:`current_session`.
* Thread boundaries propagate sessions *explicitly*: capture with
  :func:`current_session` on the submitting side, resume with
  :func:`activate` on whichever worker picks the work up. The
  work-stealing executor, ``ExecutionEngine.submit`` (federation) and
  the proxy reactor all do this, so a statement started by one thread
  can be continued by any other without losing read-your-writes or
  transaction pinning.

The one ``SessionContext`` may be shared by several threads at once (a
fanned-out statement), so token/guard updates go through a small
per-session lock; plain reads stay lock-free.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import threading
import time
import weakref
from typing import Any, Iterator

_session_ids = itertools.count(1)


class SessionContext:
    """All state owned by one logical session, portable across threads."""

    __slots__ = (
        "session_id", "kind", "client", "created_at",
        "tokens", "pin_depth", "variables", "trace", "snapshot",
        "statements", "last_sql", "in_transaction",
        "_guards", "_lock", "__weakref__",
    )

    def __init__(self, kind: str = "embedded", client: str | None = None):
        #: monotonically increasing id (``SHOW SESSIONS``)
        self.session_id = next(_session_ids)
        #: where the session came from: "thread" (implicit thread-root),
        #: "jdbc" (ShardingConnection), "proxy" (wire protocol client)
        self.kind = kind
        #: remote peer ("host:port") for proxy sessions
        self.client = client
        self.created_at = time.time()
        #: causal replication tokens: group name -> highest written LSN
        self.tokens: dict[str, int] = {}
        #: depth of PRIMARY-hint pinning (reads bypass replicas while > 0)
        self.pin_depth = 0
        #: per-session variables (reserved for session-scoped SET)
        self.variables: dict[str, Any] = {}
        #: active trace, when tracing attributes spans to this session
        self.trace: Any = None
        #: the MetadataContext snapshot pinned by the statement in flight
        #: (informational: set/restored around each engine execution)
        self.snapshot: Any = None
        #: statements executed through this session (SHOW SESSIONS)
        self.statements = 0
        self.last_sql: str | None = None
        self.in_transaction = False
        #: re-entrant guard depths keyed by owner object — the portable
        #: replacement for per-subsystem ``threading.local`` depth flags
        self._guards: dict[Any, int] = {}
        self._lock = threading.Lock()

    # -- causal tokens (read-your-writes) --------------------------------

    def token(self, group: str) -> int:
        """Highest LSN this session has written in ``group`` (0 = none)."""
        return self.tokens.get(group, 0)

    def note_write(self, group: str, lsn: int) -> None:
        """Advance the causal token for ``group`` to ``lsn``.

        Locked: concurrent fan-out workers of one statement may commit to
        different shards of the same group at the same time.
        """
        with self._lock:
            if lsn > self.tokens.get(group, 0):
                self.tokens[group] = lsn

    def reset(self) -> None:
        """Forget causal tokens and pinning (a brand-new session)."""
        with self._lock:
            self.tokens = {}
        self.pin_depth = 0

    # -- primary pinning ---------------------------------------------------

    @contextlib.contextmanager
    def pin(self) -> Iterator[None]:
        """Force reads in this block to primaries (the PRIMARY hint)."""
        self.pin_depth += 1
        try:
            yield
        finally:
            self.pin_depth -= 1

    @property
    def pinned(self) -> bool:
        return self.pin_depth > 0

    # -- re-entrant guards -------------------------------------------------

    def enter_guard(self, key: Any) -> None:
        with self._lock:
            self._guards[key] = self._guards.get(key, 0) + 1

    def exit_guard(self, key: Any) -> None:
        with self._lock:
            depth = self._guards.get(key, 0) - 1
            if depth <= 0:
                self._guards.pop(key, None)
            else:
                self._guards[key] = depth

    def guard_depth(self, key: Any) -> int:
        return self._guards.get(key, 0)

    @contextlib.contextmanager
    def guard(self, key: Any) -> Iterator[None]:
        self.enter_guard(key)
        try:
            yield
        finally:
            self.exit_guard(key)

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """One ``SHOW SESSIONS`` row."""
        return {
            "id": self.session_id,
            "kind": self.kind,
            "client": self.client or "",
            "age_s": round(time.time() - self.created_at, 3),
            "statements": self.statements,
            "in_transaction": self.in_transaction,
            "pinned_primary": self.pinned,
            "causal_groups": len(self.tokens),
            "last_sql": (self.last_sql or "")[:80],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionContext(id={self.session_id}, kind={self.kind!r})"


#: the active session of the current execution context. Context = thread
#: unless explicitly propagated, so un-instrumented code keeps the old
#: thread-scoped behavior.
_current: contextvars.ContextVar[SessionContext | None] = contextvars.ContextVar(
    "repro_session", default=None
)


def current_session() -> SessionContext:
    """The active session, lazily creating a thread-root session.

    Call sites that never activate a session (direct embedding, tests,
    benches driving the engine from their own threads) get one implicit
    session per thread — exactly the scoping the old ``threading.local``s
    provided.
    """
    session = _current.get()
    if session is None:
        session = SessionContext(kind="thread")
        _current.set(session)
    return session


def try_current() -> SessionContext | None:
    """The active session or None — never creates one."""
    return _current.get()


@contextlib.contextmanager
def activate(session: SessionContext) -> Iterator[SessionContext]:
    """Make ``session`` current for the block; restores the previous one.

    This is the explicit capture/restore point at every thread boundary:
    the submitting side captures :func:`current_session`, the executing
    side runs inside ``with activate(captured):``.
    """
    token = _current.set(session)
    try:
        yield session
    finally:
        _current.reset(token)


class SessionRegistry:
    """Live sessions of one runtime (``SHOW SESSIONS`` / metrics).

    Holds weak references so an abandoned, never-closed connection cannot
    keep its session alive (the old proxy's unbounded ``_clients`` set
    bug, generalized away).
    """

    def __init__(self) -> None:
        self._sessions: "weakref.WeakValueDictionary[int, SessionContext]" = (
            weakref.WeakValueDictionary()
        )
        self._lock = threading.Lock()
        self.sessions_served = 0

    def register(self, session: SessionContext) -> SessionContext:
        with self._lock:
            self._sessions[session.session_id] = session
            self.sessions_served += 1
        return session

    def unregister(self, session: SessionContext) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)

    def sessions(self) -> list[SessionContext]:
        with self._lock:
            return sorted(self._sessions.values(), key=lambda s: s.session_id)

    def rows(self) -> list[dict[str, Any]]:
        return [session.describe() for session in self.sessions()]
