"""ZooKeeper-like coordination registry (in-process).

The paper stores configuration in Apache ZooKeeper. This module provides
the ZooKeeper features the Governor actually uses: a hierarchy of znodes
with versioned values, watches on data and children changes, and ephemeral
nodes bound to sessions (a crashed ShardingSphere-Proxy instance's
ephemeral registration disappears, which is how health detection notices).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..exceptions import BadVersionError, NodeExistsError, NodeNotFoundError

#: watch callback: (event, path, value) — event in {"created","changed","deleted","child"}
WatchCallback = Callable[[str, str, Any], None]


def _split(path: str) -> list[str]:
    parts = [p for p in path.split("/") if p]
    return parts


def _normalize(path: str) -> str:
    return "/" + "/".join(_split(path))


@dataclass
class _Node:
    value: Any = None
    version: int = 0
    ephemeral_owner: int | None = None
    children: dict[str, "_Node"] = field(default_factory=dict)


class Session:
    """A client session; closing it removes its ephemeral nodes."""

    _ids = itertools.count(1)

    def __init__(self, registry: "Registry"):
        self.id = next(self._ids)
        self.registry = registry
        self.open = True

    def close(self) -> None:
        if self.open:
            self.open = False
            self.registry._expire_session(self.id)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class Registry:
    """Hierarchical key-value store with watches and ephemeral nodes."""

    def __init__(self) -> None:
        self._root = _Node()
        self._lock = threading.RLock()
        self._watches: dict[str, list[WatchCallback]] = {}
        self._child_watches: dict[str, list[WatchCallback]] = {}
        self._subtree_watches: dict[str, list[WatchCallback]] = {}

    def session(self) -> Session:
        return Session(self)

    # -- navigation -------------------------------------------------------

    def _find(self, path: str) -> _Node | None:
        node = self._root
        for part in _split(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def _find_parent(self, path: str) -> tuple[_Node | None, str]:
        parts = _split(path)
        if not parts:
            return None, ""
        node = self._root
        for part in parts[:-1]:
            node = node.children.get(part)
            if node is None:
                return None, parts[-1]
        return node, parts[-1]

    # -- reads ----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        with self._lock:
            return self._find(path) is not None

    def get(self, path: str) -> Any:
        with self._lock:
            node = self._find(path)
            if node is None:
                raise NodeNotFoundError(f"no node at {path!r}")
            return node.value

    def get_with_version(self, path: str) -> tuple[Any, int]:
        with self._lock:
            node = self._find(path)
            if node is None:
                raise NodeNotFoundError(f"no node at {path!r}")
            return node.value, node.version

    def children(self, path: str) -> list[str]:
        with self._lock:
            node = self._find(path)
            if node is None:
                raise NodeNotFoundError(f"no node at {path!r}")
            return sorted(node.children)

    # -- writes -----------------------------------------------------------------

    def create(self, path: str, value: Any = None, session: Session | None = None) -> None:
        """Create a node (parents are created implicitly as persistent)."""
        path = _normalize(path)
        events: list[tuple[str, str, Any]] = []
        with self._lock:
            node = self._root
            parts = _split(path)
            for i, part in enumerate(parts):
                is_last = i == len(parts) - 1
                child = node.children.get(part)
                if child is None:
                    child = _Node()
                    if is_last:
                        child.value = value
                        if session is not None:
                            child.ephemeral_owner = session.id
                    node.children[part] = child
                    partial = "/" + "/".join(parts[: i + 1])
                    events.append(("created", partial, child.value))
                    events.append(("child", "/" + "/".join(parts[:i]) if i else "/", part))
                elif is_last:
                    raise NodeExistsError(f"node {path!r} already exists")
                node = child
        self._fire(events)

    def set(self, path: str, value: Any, expected_version: int | None = None) -> int:
        """Set a node's value (creating it if absent); returns new version."""
        path = _normalize(path)
        events: list[tuple[str, str, Any]] = []
        with self._lock:
            node = self._find(path)
            if node is None:
                self_created = True
            else:
                self_created = False
                if expected_version is not None and node.version != expected_version:
                    raise BadVersionError(
                        f"version mismatch at {path!r}: expected {expected_version}, "
                        f"found {node.version}"
                    )
        if self_created:
            self.create(path, value)
            return 0
        with self._lock:
            node = self._find(path)
            assert node is not None
            node.value = value
            node.version += 1
            events.append(("changed", path, value))
            version = node.version
        self._fire(events)
        return version

    def delete(self, path: str) -> None:
        path = _normalize(path)
        events: list[tuple[str, str, Any]] = []
        with self._lock:
            parent, leaf = self._find_parent(path)
            if parent is None or leaf not in parent.children:
                raise NodeNotFoundError(f"no node at {path!r}")
            self._delete_subtree(parent, leaf, path, events)
        self._fire(events)

    def _delete_subtree(self, parent: _Node, leaf: str, path: str, events: list) -> None:
        node = parent.children.pop(leaf)
        self._collect_deleted(node, path, events)
        events.append(("deleted", path, None))
        parent_path = path.rsplit("/", 1)[0] or "/"
        events.append(("child", parent_path, leaf))

    def _collect_deleted(self, node: _Node, path: str, events: list) -> None:
        for name, child in node.children.items():
            child_path = f"{path}/{name}"
            self._collect_deleted(child, child_path, events)
            events.append(("deleted", child_path, None))

    def _expire_session(self, session_id: int) -> None:
        events: list[tuple[str, str, Any]] = []
        with self._lock:
            self._expire_in(self._root, "", session_id, events)
        self._fire(events)

    def _expire_in(self, node: _Node, path: str, session_id: int, events: list) -> None:
        for name in list(node.children):
            child = node.children[name]
            child_path = f"{path}/{name}"
            if child.ephemeral_owner == session_id:
                self._delete_subtree(node, name, child_path, events)
            else:
                self._expire_in(child, child_path, session_id, events)

    # -- watches ---------------------------------------------------------------

    def watch(self, path: str, callback: WatchCallback) -> Callable[[], None]:
        """Watch data events on ``path``; returns an unsubscribe function."""
        path = _normalize(path)
        with self._lock:
            self._watches.setdefault(path, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                callbacks = self._watches.get(path, [])
                if callback in callbacks:
                    callbacks.remove(callback)

        return unsubscribe

    def watch_children(self, path: str, callback: WatchCallback) -> Callable[[], None]:
        """Watch child add/remove under ``path``."""
        path = _normalize(path)
        with self._lock:
            self._child_watches.setdefault(path, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                callbacks = self._child_watches.get(path, [])
                if callback in callbacks:
                    callbacks.remove(callback)

        return unsubscribe

    def watch_subtree(self, path: str, callback: WatchCallback) -> Callable[[], None]:
        """Watch data events (created/changed/deleted) on ``path`` and every
        descendant — the cluster-propagation primitive: a ``set`` on an
        existing rule node fires no child event, so child watches alone miss
        ALTERs. Returns an unsubscribe function."""
        path = _normalize(path)
        with self._lock:
            self._subtree_watches.setdefault(path, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                callbacks = self._subtree_watches.get(path, [])
                if callback in callbacks:
                    callbacks.remove(callback)

        return unsubscribe

    def _fire(self, events: list[tuple[str, str, Any]]) -> None:
        for event, path, value in events:
            if event == "child":
                for callback in list(self._child_watches.get(path, [])):
                    self._invoke(callback, event, path, value)
            else:
                for callback in list(self._watches.get(path, [])):
                    self._invoke(callback, event, path, value)
                with self._lock:
                    subtree = [
                        cb
                        for base, cbs in self._subtree_watches.items()
                        if path == base or path.startswith(base + "/")
                        for cb in cbs
                    ]
                for callback in subtree:
                    self._invoke(callback, event, path, value)

    @staticmethod
    def _invoke(callback: WatchCallback, event: str, path: str, value: Any) -> None:
        """Fire one watcher, isolating its failures: a broken peer watcher
        must not abort the writer's mutation (or starve later watchers)."""
        try:
            callback(event, path, value)
        except Exception:
            pass

    # -- utility -------------------------------------------------------------------

    def dump(self, path: str = "/") -> dict[str, Any]:
        """Flatten a subtree into {path: value} (diagnostics, RQL output)."""
        out: dict[str, Any] = {}
        with self._lock:
            node = self._find(path) if path != "/" else self._root
            if node is None:
                return out
            base = _normalize(path) if path != "/" else ""
            self._dump_into(node, base, out)
        return out

    def _dump_into(self, node: _Node, path: str, out: dict[str, Any]) -> None:
        for name, child in sorted(node.children.items()):
            child_path = f"{path}/{name}"
            out[child_path] = child.value
            self._dump_into(child, child_path, out)
