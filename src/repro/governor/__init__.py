"""Governor: configuration management + health detection (Section V)."""

from .config import ConfigCenter
from .health import FailoverEvent, HealthDetector, ReplicaGroup
from .registry import Registry, Session

__all__ = [
    "Registry",
    "Session",
    "ConfigCenter",
    "HealthDetector",
    "ReplicaGroup",
    "FailoverEvent",
]
