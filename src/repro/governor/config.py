"""Configuration management on the coordination registry (Section V-A).

Stores and manages "the metadata of data sources, the sharding rules, the
configurations, and the running status of the ShardingSphere cluster".
Cluster members (JDBC adaptors, proxy instances) share one
:class:`ConfigCenter`; rule changes propagate through registry watches so
every member reconfigures without restarts.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from ..exceptions import GovernanceError, NodeNotFoundError
from .registry import Registry, Session

RULES_PATH = "/rules"
DATASOURCES_PATH = "/metadata/datasources"
PROPS_PATH = "/props"
STATUS_PATH = "/status"
INSTANCES_PATH = "/status/instances"
METADATA_VERSION_PATH = "/status/metadata_version"


class ConfigCenter:
    """Typed facade over the registry for ShardingSphere configuration."""

    def __init__(self, registry: Registry | None = None):
        self.registry = registry if registry is not None else Registry()

    # -- data source metadata -----------------------------------------------

    def register_data_source(self, name: str, metadata: dict[str, Any]) -> None:
        self.registry.set(f"{DATASOURCES_PATH}/{name}", json.dumps(metadata))

    def data_source_metadata(self, name: str) -> dict[str, Any]:
        try:
            raw = self.registry.get(f"{DATASOURCES_PATH}/{name}")
        except NodeNotFoundError:
            raise GovernanceError(f"data source {name!r} is not registered") from None
        return json.loads(raw)

    def data_source_names(self) -> list[str]:
        try:
            return self.registry.children(DATASOURCES_PATH)
        except NodeNotFoundError:
            return []

    def remove_data_source(self, name: str) -> None:
        self.registry.delete(f"{DATASOURCES_PATH}/{name}")

    # -- rule configuration ---------------------------------------------------

    def store_rule(self, kind: str, name: str, config: dict[str, Any]) -> None:
        """Persist one rule config, e.g. kind='sharding', name='t_user'."""
        self.registry.set(f"{RULES_PATH}/{kind}/{name}", json.dumps(config))

    def load_rule(self, kind: str, name: str) -> dict[str, Any]:
        try:
            return json.loads(self.registry.get(f"{RULES_PATH}/{kind}/{name}"))
        except NodeNotFoundError:
            raise GovernanceError(f"no {kind} rule named {name!r}") from None

    def rule_names(self, kind: str) -> list[str]:
        try:
            return self.registry.children(f"{RULES_PATH}/{kind}")
        except NodeNotFoundError:
            return []

    def drop_rule(self, kind: str, name: str) -> None:
        try:
            self.registry.delete(f"{RULES_PATH}/{kind}/{name}")
        except NodeNotFoundError:
            raise GovernanceError(f"no {kind} rule named {name!r}") from None

    def watch_rules(self, kind: str, callback: Callable[[str, str, Any], None]) -> Callable[[], None]:
        return self.registry.watch_children(f"{RULES_PATH}/{kind}", callback)

    def watch_rule_data(self, kind: str, callback: Callable[[str, str, Any], None]) -> Callable[[], None]:
        """Watch data events on every rule node of ``kind`` (subtree watch).

        Unlike :meth:`watch_rules` (child add/remove only), this also fires
        when an *existing* rule node is overwritten — the ALTER case a
        cluster member must converge on.
        """
        return self.registry.watch_subtree(f"{RULES_PATH}/{kind}", callback)

    def watch_data_sources(self, callback: Callable[[str, str, Any], None]) -> Callable[[], None]:
        return self.registry.watch_subtree(DATASOURCES_PATH, callback)

    # -- properties --------------------------------------------------------------

    def set_prop(self, name: str, value: Any) -> None:
        self.registry.set(f"{PROPS_PATH}/{name}", value)

    def get_prop(self, name: str, default: Any = None) -> Any:
        try:
            return self.registry.get(f"{PROPS_PATH}/{name}")
        except NodeNotFoundError:
            return default

    def props(self) -> dict[str, Any]:
        return {
            path.rsplit("/", 1)[-1]: value
            for path, value in self.registry.dump(PROPS_PATH).items()
        }

    def watch_props(self, callback: Callable[[str, str, Any], None]) -> Callable[[], None]:
        return self.registry.watch_subtree(PROPS_PATH, callback)

    # -- metadata versions --------------------------------------------------------

    def publish_metadata_version(self, version: int, reason: str = "") -> None:
        """Record the latest metadata snapshot version a member produced.

        Written on every :class:`~repro.metadata.ContextManager` mutation so
        operators (SHOW METADATA, dashboards) can correlate a cluster's
        config generation; also a convenient wake-up node for coarse
        watchers."""
        self.registry.set(
            METADATA_VERSION_PATH, json.dumps({"version": version, "reason": reason})
        )

    def metadata_version(self) -> dict[str, Any] | None:
        """Latest published snapshot version (``{"version", "reason"}``) or None."""
        try:
            return json.loads(self.registry.get(METADATA_VERSION_PATH))
        except NodeNotFoundError:
            return None

    # -- cluster instances (ephemeral) ----------------------------------------------

    def register_instance(self, instance_id: str, metadata: dict[str, Any] | None = None) -> Session:
        """Register a running cluster member as an ephemeral node.

        The returned session keeps the registration alive; closing it (or
        crashing) removes the node, which watchers interpret as the
        instance going down.
        """
        session = self.registry.session()
        self.registry.create(
            f"{INSTANCES_PATH}/{instance_id}",
            json.dumps({"registered_at": time.time(), **(metadata or {})}),
            session=session,
        )
        return session

    def online_instances(self) -> list[str]:
        try:
            return self.registry.children(INSTANCES_PATH)
        except NodeNotFoundError:
            return []

    def watch_instances(self, callback: Callable[[str, str, Any], None]) -> Callable[[], None]:
        return self.registry.watch_children(INSTANCES_PATH, callback)

    # -- running status ----------------------------------------------------------------

    def set_status(self, component: str, status: str) -> None:
        self.registry.set(f"{STATUS_PATH}/components/{component}", status)

    def get_status(self, component: str) -> str | None:
        try:
            return self.registry.get(f"{STATUS_PATH}/components/{component}")
        except NodeNotFoundError:
            return None
