"""Health detection (Section V-B).

"Governor launches a thread to check periodically the statuses of each
ShardingSphere-Proxy instance and the underlying databases. If one
ShardingSphere-Proxy is down or the primary nodes are changed, Governor
would change the configurations automatically."

:class:`HealthDetector` pings every data source (``SELECT 1``), records
UP/DOWN in the config center, and — for primary/replica groups used by
read-write splitting — promotes the first healthy replica when a primary
goes down, rewriting the group config so the system keeps working.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..storage import DataSource
from .config import ConfigCenter


@dataclass
class ReplicaGroup:
    """A primary with its replicas (the unit of failover)."""

    name: str
    primary: str
    replicas: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class FailoverEvent:
    """One recorded primary promotion, with its detection-to-promotion lag."""

    group: str
    old_primary: str
    new_primary: str
    detected_at: float
    promoted_at: float

    @property
    def latency(self) -> float:
        """Seconds between DOWN detection and the replacement promotion."""
        return self.promoted_at - self.detected_at


class HealthDetector:
    """Periodic health checks + automatic primary failover."""

    def __init__(
        self,
        data_sources: Mapping[str, DataSource],
        config: ConfigCenter,
        groups: list[ReplicaGroup] | None = None,
        interval: float = 1.0,
        prober: Callable[[DataSource], bool] | None = None,
    ):
        self.data_sources = dict(data_sources)
        self.config = config
        self.groups = {g.name: g for g in (groups or [])}
        self.interval = interval
        self.prober = prober or _default_probe
        self.failover_listeners: list[Callable[[str, str, str], None]] = []
        #: promotion history with detection->promotion latency per event
        self.failover_events: list[FailoverEvent] = []
        self._down: set[str] = set()
        self._down_since: dict[str, float] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True, name="ss-health")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.check_once()

    # -- checking --------------------------------------------------------------

    def is_up(self, name: str) -> bool:
        with self._lock:
            return name not in self._down

    def check_once(self) -> dict[str, bool]:
        """Probe everything once; returns {name: healthy}."""
        statuses: dict[str, bool] = {}
        for name, source in self.data_sources.items():
            healthy = self.prober(source)
            statuses[name] = healthy
            self.config.set_status(f"datasource/{name}", "UP" if healthy else "DOWN")
            with self._lock:
                was_down = name in self._down
                if healthy:
                    self._down.discard(name)
                    self._down_since.pop(name, None)
                else:
                    self._down.add(name)
                    if not was_down:
                        self._down_since[name] = time.monotonic()
            if not healthy and not was_down:
                self._handle_failure(name)
        return statuses

    def add_failover_listener(self, listener: Callable[[str, str, str], None]) -> None:
        """listener(group_name, old_primary, new_primary)"""
        self.failover_listeners.append(listener)

    def _handle_failure(self, name: str) -> None:
        for group in self.groups.values():
            if group.primary != name:
                continue
            promotion = self._storage_promote(group)
            if promotion is None:
                # Legacy (name-only) groups: promote the first healthy
                # replica and keep the old primary listed so a revived
                # source serves reads again.
                candidates = [r for r in group.replicas if self.is_up(r)]
                if not candidates:
                    continue
                new_primary = candidates[0]
                old_primary = group.primary
                group.replicas = [r for r in group.replicas if r != new_primary]
                group.replicas.append(old_primary)
                group.primary = new_primary
            elif promotion is False:
                continue  # storage group but nothing promotable yet
            else:
                old_primary, new_primary = promotion
                group.replicas = [r for r in group.replicas if r != new_primary]
                group.primary = new_primary
            self.config.store_rule(
                "readwrite_splitting",
                group.name,
                {"primary": group.primary, "replicas": group.replicas},
            )
            with self._lock:
                detected_at = self._down_since.get(name, time.monotonic())
            self.failover_events.append(
                FailoverEvent(
                    group=group.name,
                    old_primary=old_primary,
                    new_primary=new_primary,
                    detected_at=detected_at,
                    promoted_at=time.monotonic(),
                )
            )
            for listener in self.failover_listeners:
                listener(group.name, old_primary, new_primary)

    def _storage_promote(self, group: ReplicaGroup):
        """Promote through the storage replica group when one is wired.

        The storage layer fences the dead primary (writes to it fail
        fast), picks the most-caught-up replica by applied LSN, and
        drains the durable log into it before installing it — so no
        acknowledged write is lost, unlike the name-only path which has
        no replication state to consult. The fenced old primary is NOT
        re-added as a replica: its database is frozen at failover time.

        Returns ``None`` when the group is not storage-backed (caller
        takes the legacy path), ``False`` when it is but no replica is
        promotable, or ``(old_primary, new_primary)`` on success.
        """
        from ..exceptions import DataSourceUnavailableError

        source = self.data_sources.get(group.primary)
        storage_group = getattr(source, "replica_group", None)
        if storage_group is None or getattr(storage_group, "primary", None) is not source:
            return None
        try:
            event = storage_group.promote(is_up=self.is_up)
        except DataSourceUnavailableError:
            return False
        return event.old_primary, event.new_primary


def _default_probe(source: DataSource) -> bool:
    try:
        source.execute("SELECT 1")
        return True
    except Exception:
        return False
