"""ShardingRuntime: the shared state behind both adaptors.

One runtime bundles the fleet of data sources, the versioned metadata
contexts, the SQL engine, the transaction manager, the session variables
and the Governor's config center. ShardingSphere-JDBC embeds a runtime
in-process; ShardingSphere-Proxy hosts one behind a TCP server. Deploying
both against the same Governor is the paper's "share the same Governor"
deployment — and with :meth:`enable_cluster_mode` each member watches the
Governor's rule/prop nodes, so a DistSQL statement executed on one member
reconfigures every member without restarts.

All configuration mutations funnel through the runtime's
:class:`~repro.metadata.ContextManager`: each one produces the next
immutable snapshot, which the engine pins per statement. The runtime's
``data_sources``/``rule``/``variables`` attributes are therefore *views*
of the current snapshot (or the manager's live maps), not storage.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Callable, Mapping, Sequence

from ..engine import Feature, ResiliencePolicy, SQLEngine
from ..engine.context import build_context
from ..engine.rewriter import rewrite
from ..engine.router import route
from ..exceptions import DistSQLError, GovernanceError, ShardingConfigError
from ..features import ReadWriteGroup, ReadWriteSplittingFeature
from ..governor import ConfigCenter
from ..metadata import KNOWN_VARIABLES, ContextManager
from ..observability import Observability
from ..session import SessionRegistry, current_session
from ..sharding import ShardingRule, TableRule
from ..sql import parse
from ..sql.dialects import get_dialect
from ..storage import DataSource, LatencyModel
from ..transaction import TransactionManager, TransactionType

_instance_ids = itertools.count(1)


class ShardingRuntime:
    """Live configuration + engine of one ShardingSphere deployment."""

    def __init__(
        self,
        data_sources: Mapping[str, DataSource] | None = None,
        rule: ShardingRule | None = None,
        max_connections_per_query: int = 1,
        features: Sequence[Feature] = (),
        config_center: ConfigCenter | None = None,
        transaction_type: TransactionType = TransactionType.LOCAL,
        default_latency: LatencyModel | None = None,
        worker_threads: int = 32,
        resilience: ResiliencePolicy | None = None,
    ):
        self.default_latency = default_latency
        self.config_center = config_center if config_center is not None else ConfigCenter()
        #: tracer + metrics registry + slow-query log (the Agent analogue);
        #: the tracer stays disabled until SET VARIABLE tracing = on (or a
        #: one-shot TRACE), so the hot path only pays the stage histograms.
        self.observability = Observability()
        bootstrap_rule = rule if rule is not None else ShardingRule()
        bootstrap_sources = dict(data_sources or {})
        if bootstrap_rule.default_data_source is None and bootstrap_sources:
            bootstrap_rule.default_data_source = next(iter(bootstrap_sources))
        #: the single writer of versioned config snapshots
        self.metadata = ContextManager(
            bootstrap_sources,
            bootstrap_rule,
            features=list(features),
            variables={
                "transaction_type": transaction_type.value,
                "max_connections_per_query": max_connections_per_query,
                "tracing": "OFF",
                "slow_query_threshold_ms": self.observability.slow_log.threshold * 1000.0,
                "plan_cache": "ON",
                "workload_analytics": "ON",
                "result_cache": "OFF",
            },
            config_center=self.config_center,
        )
        self.engine = SQLEngine(
            max_connections_per_query=max_connections_per_query,
            worker_threads=worker_threads,
            resilience=resilience,
            metadata=self.metadata,
        )
        #: Governor health detector, once attached (health-aware routing)
        self.health_detector = None
        self.engine.attach_observability(self.observability)
        self.transaction_manager = TransactionManager(
            self.metadata.live_sources, transaction_type
        )
        self._rwsplit_feature: ReadWriteSplittingFeature | None = None
        # cluster mode state (enable_cluster_mode)
        self._cluster_session = None
        self._cluster_unwatch: list[Callable[[], None]] = []
        self._seen_rules: dict[str, dict[str, str]] = {}
        #: live logical sessions (JDBC connections + proxy clients) for
        #: SHOW SESSIONS and the proxy's session metrics
        self.sessions = SessionRegistry()
        for name, source in self.metadata.live_sources.items():
            self.config_center.register_data_source(name, {"dialect": source.dialect.name})

    # -- snapshot views -----------------------------------------------------

    @property
    def data_sources(self) -> dict[str, DataSource]:
        """The live (manager-synced) data-source map, shared with the
        execution engine and the transaction manager."""
        return self.metadata.live_sources

    @property
    def rule(self) -> ShardingRule:
        """The current snapshot's rule (frozen once any mutation ran)."""
        return self.metadata.current().rule

    @property
    def variables(self) -> dict[str, Any]:
        return dict(self.metadata.current().variables)

    def close(self) -> None:
        self.disable_cluster_mode()
        self.engine.close()

    # ------------------------------------------------------------------
    # Resilience + health (Governor integration)
    # ------------------------------------------------------------------

    def enable_resilience(self, policy: ResiliencePolicy) -> None:
        """Turn on retries/deadlines/per-source breakers for this runtime."""
        self.engine.executor.enable_resilience(policy)

    def attach_health_detector(self, detector) -> None:
        """Wire a Governor :class:`HealthDetector` into execution/routing.

        The executor then skips DOWN sources for degradable broadcast reads
        and fails writes to DOWN sources fast; read-write splitting (when
        configured) also steers replica reads through :meth:`_source_is_up`.
        """
        self.health_detector = detector
        self.engine.executor.set_health_check(detector.is_up)
        detector.add_failover_listener(self._on_failover)

    def _on_failover(self, group_name: str, old_primary: str,
                     new_primary: str) -> None:
        """Re-point the read-write group after a Governor-driven promotion.

        Groups are keyed by the *original* primary's name — the name the
        router emits — so the promoted group must replace the entry under
        its existing key, not appear under a new one. The result cache is
        cleared wholesale: entries created before the promotion guard
        against the fenced primary's now-frozen data versions and would
        otherwise keep validating forever.
        """
        feature = self._rwsplit_feature
        if feature is None:
            return
        group = feature.groups.get(group_name) or next(
            (g for g in feature.groups.values() if g.primary == old_primary),
            None)
        if group is None:
            return
        replicas = [r for r in group.replicas if r != new_primary]
        source = self.data_sources.get(new_primary)
        feature.replace_group(ReadWriteGroup(
            name=group.name,
            primary=new_primary,
            replicas=replicas,
            load_balancer=group.load_balancer,
            replication=getattr(source, "replica_group", None)
            or group.replication,
        ))
        self.engine.result_cache.clear(f"failover of {old_primary}")
        self.metadata.touch(f"failover: {old_primary} -> {new_primary}")

    def _source_is_up(self, name: str) -> bool:
        """UP per the Governor AND admitted by the source's breaker."""
        if self.health_detector is not None and not self.health_detector.is_up(name):
            return False
        breakers = self.engine.executor.breakers
        if breakers is not None and not breakers.available(name):
            return False
        return True

    # ------------------------------------------------------------------
    # Resource management (DistSQL RDL)
    # ------------------------------------------------------------------

    def register_resource(self, name: str, props: dict[str, Any] | None = None) -> DataSource:
        props = dict(props or {})
        dialect = get_dialect(str(props.get("dialect", "MySQL")))
        source = DataSource(
            name,
            dialect=dialect,
            latency=self.default_latency,
            pool_size=int(props.get("pool_size", 64)),
        )
        self.add_resource(name, source)
        return source

    def add_resource(self, name: str, source: DataSource) -> None:
        """Register an already-built DataSource object."""
        self.metadata.add_data_source(name, source)
        with self._publishing():
            self.config_center.register_data_source(
                name, {"dialect": source.dialect.name}
            )
        self.observability.watch_pool(name, source.pool)
        self.observability.register_storage_plan_cache(name, source.database.plan_cache)

    def unregister_resource(self, name: str) -> None:
        removed = self.metadata.remove_data_source(name)
        if removed is not None:
            removed.pool.close()
            # drop the source's gauges and storage plan-cache collector so
            # SHOW METRICS / Prometheus stop reporting a ghost source
            self.observability.unwatch_pool(name, removed.pool)
            self.observability.unregister_storage_plan_cache(
                name, removed.database.plan_cache
            )
        with self._publishing():
            try:
                self.config_center.remove_data_source(name)
            except GovernanceError:
                pass  # never registered with the Governor; nothing to remove

    # ------------------------------------------------------------------
    # Variables (DistSQL RAL)
    # ------------------------------------------------------------------

    def set_variable(self, name: str, value: Any, persist: bool = True) -> None:
        name = name.lower()
        if name not in KNOWN_VARIABLES:
            raise DistSQLError(
                f"unknown variable {name!r}; known variables: "
                f"{', '.join(sorted(KNOWN_VARIABLES))}"
            )
        if name == "transaction_type":
            self.transaction_manager.set_type(str(value))
            stored: Any = str(value).upper()
        elif name == "max_connections_per_query":
            count = int(value)
            if count < 1:
                raise DistSQLError("max_connections_per_query must be >= 1")
            self.engine.executor.max_connections_per_query = count
            stored = count
        elif name == "tracing":
            enabled = str(value).strip().lower() in ("1", "true", "on", "yes")
            self.observability.tracer.enabled = enabled
            stored = "ON" if enabled else "OFF"
        elif name == "slow_query_threshold_ms":
            millis = float(value)
            if millis < 0:
                raise DistSQLError("slow_query_threshold_ms must be >= 0")
            self.observability.slow_log.threshold = millis / 1000.0
            stored = millis
        elif name == "workload_analytics":
            enabled = str(value).strip().lower() in ("1", "true", "on", "yes")
            self.observability.workload.enabled = enabled
            stored = "ON" if enabled else "OFF"
        elif name == "result_cache":
            enabled = str(value).strip().lower() in ("1", "true", "on", "yes")
            self.engine.result_cache.enabled = enabled
            if not enabled:
                self.engine.result_cache.clear("SET VARIABLE result_cache = off")
            stored = "ON" if enabled else "OFF"
        else:  # plan_cache
            enabled = str(value).strip().lower() in ("1", "true", "on", "yes")
            self.engine.plan_cache.enabled = enabled
            if not enabled:
                self.engine.plan_cache.invalidate("SET VARIABLE plan_cache = off")
            stored = "ON" if enabled else "OFF"
        self.metadata.set_variable(name, stored)
        if persist:
            with self._publishing():
                self.config_center.set_prop(name, stored)

    # ------------------------------------------------------------------
    # Rule mutation + persistence + preview (DistSQL)
    # ------------------------------------------------------------------

    def apply_table_rule(self, table_rule: TableRule) -> None:
        """Install/replace one sharding table rule (next snapshot)."""
        self.metadata.apply_table_rule(table_rule)

    def drop_table_rule(self, logic_table: str) -> None:
        self.metadata.drop_table_rule(logic_table)

    def add_binding_group(self, tables: Sequence[str]) -> None:
        self.metadata.add_binding_group(tables)

    def add_broadcast_table(self, table: str) -> None:
        self.metadata.add_broadcast_table(table)

    def persist_rule(self, kind: str, name: str, config: dict[str, Any]) -> None:
        with self._publishing():
            self.config_center.store_rule(kind, name, config)
        if self._cluster_session is not None:
            # Our own watcher skipped this write (self-event); record the
            # fingerprint anyway so a later peer-triggered reconcile doesn't
            # mistake our rule for a fresh one and re-apply it.
            self._seen_rules.setdefault(kind, {})[name] = self._fingerprint(
                self.config_center.load_rule(kind, name)
            )

    def unpersist_rule(self, kind: str, name: str) -> None:
        if self._cluster_session is not None:
            self._seen_rules.get(kind, {}).pop(name, None)
        with self._publishing():
            try:
                self.config_center.drop_rule(kind, name)
            except GovernanceError:
                pass  # rule was never persisted

    def preview(self, sql: str) -> list[tuple[str, str]]:
        """Route+rewrite without executing (DistSQL PREVIEW)."""
        snap = self.metadata.current()
        statement = parse(sql)
        context = build_context(statement, sql, (), snap.rule)
        route_result = route(context, snap.rule)
        rewritten = rewrite(context, route_result, snap.dialect_of)
        return [(u.data_source, u.sql) for u in rewritten.execution_units]

    def load_rules_from_governor(self) -> int:
        """Rebuild sharding state from the config center (restart recovery).

        A runtime created against an existing Governor — e.g. a proxy
        instance rejoining the cluster, or a restart after a crash —
        replays the persisted sharding, binding, broadcast and
        read-write-splitting rules plus *all* persisted props. Returns how
        many rules were applied.
        """
        applied = 0
        for kind in ("sharding", "binding", "broadcast", "readwrite_splitting"):
            for name in self.config_center.rule_names(kind):
                if self._apply_governor_rule(kind, name, self.config_center.load_rule(kind, name)):
                    applied += 1
        for variable in sorted(KNOWN_VARIABLES):
            value = self.config_center.get_prop(variable)
            if value is not None:
                self.set_variable(variable, value, persist=False)
        return applied

    def _apply_governor_rule(self, kind: str, name: str, config: dict[str, Any]) -> bool:
        """Apply one persisted rule config locally; True when it changed state."""
        from ..sharding import build_auto_table_rule

        if kind == "sharding":
            missing = [r for r in config["resources"] if r not in self.data_sources]
            for resource in missing:
                self.register_resource(resource)
            table_rule = build_auto_table_rule(
                name,
                config["resources"],
                sharding_column=config["sharding_column"],
                algorithm_type=config.get("type", "HASH_MOD"),
                properties=config.get("props", {}),
            )
            self.apply_table_rule(table_rule)
            return True
        if kind == "binding":
            try:
                self.add_binding_group(config["tables"])
                return True
            except ShardingConfigError:
                return False  # already bound or member rules missing
        if kind == "broadcast":
            self.add_broadcast_table(config["table"])
            return True
        if kind == "readwrite_splitting":
            return self.apply_rwsplit_rule(name, config["primary"], config["replicas"])
        return False

    def apply_rwsplit_rule(self, name: str, primary: str, replicas: list[str]) -> bool:
        group = ReadWriteGroup(
            name=primary, primary=primary, replicas=list(replicas),
            replication=getattr(
                self.data_sources.get(primary), "replica_group", None),
        )
        feature = self._rwsplit_feature
        if feature is None:
            self._rwsplit_feature = ReadWriteSplittingFeature(
                [group], is_up=self._source_is_up,
                breakers=self.engine.executor.breakers,
            )
            self.engine.add_feature(self._rwsplit_feature)
            return True
        existing = feature.groups.get(group.name)
        if existing is not None and (existing.primary, list(existing.replicas)) == (
            group.primary, group.replicas
        ):
            return False  # replayed config; no version churn
        feature.replace_group(group)
        # in-place feature reconfiguration: bump the version so watchers
        # (and SHOW METADATA) still observe the change
        self.metadata.touch(f"readwrite_splitting group {group.name}")
        return True

    # ------------------------------------------------------------------
    # Cluster mode: converge on peers' Governor writes (Section V-A)
    # ------------------------------------------------------------------

    def enable_cluster_mode(self, instance_id: str | None = None) -> str:
        """Register as a cluster member and watch the Governor for changes.

        After this, a rule created/dropped or a variable set on *any*
        runtime sharing this runtime's :class:`ConfigCenter` is applied
        here live — no restart, no polling. Returns the instance id.
        """
        if self._cluster_session is not None:
            raise GovernanceError("cluster mode is already enabled")
        if instance_id is None:
            instance_id = f"runtime-{next(_instance_ids)}"
        self.instance_id = instance_id
        self._cluster_session = self.config_center.register_instance(
            instance_id, {"kind": "runtime"}
        )
        for kind in ("sharding", "binding", "broadcast", "readwrite_splitting"):
            self._seen_rules[kind] = {
                name: self._fingerprint(self.config_center.load_rule(kind, name))
                for name in self.config_center.rule_names(kind)
            }
            self._cluster_unwatch.append(
                self.config_center.watch_rule_data(
                    kind, lambda e, p, v, kind=kind: self._on_rule_event(kind)
                )
            )
        self._cluster_unwatch.append(
            self.config_center.watch_props(self._on_prop_event)
        )
        return instance_id

    def disable_cluster_mode(self) -> None:
        for unwatch in self._cluster_unwatch:
            unwatch()
        self._cluster_unwatch.clear()
        self._seen_rules.clear()
        if self._cluster_session is not None:
            self._cluster_session.close()
            self._cluster_session = None

    def _publishing(self):
        """Mark the current session as writing to the Governor, so
        synchronously fired watch events don't loop back into this
        runtime. Session-scoped (keyed by this runtime object) rather
        than a thread-local: correct even when the write happens on a
        proxy worker executing some client session's DistSQL."""
        return current_session().guard((self, "publishing"))

    def _is_self_event(self) -> bool:
        return (
            self.metadata.in_mutation
            or current_session().guard_depth((self, "publishing")) > 0
        )

    @staticmethod
    def _fingerprint(config: dict[str, Any]) -> str:
        return json.dumps(config, sort_keys=True, default=str)

    def _on_rule_event(self, kind: str) -> None:
        """Reconcile one rule kind against the Governor (watch callback).

        Registry watches fire synchronously on the *writer's* thread: when
        the writer is this runtime itself (flagged by ``in_mutation`` or a
        ``_publishing`` guard), the change is already applied locally and
        replaying it would deadlock-or-echo — skip. Reconciliation is
        idempotent (fingerprint comparison), so the subtree watch firing
        once per touched node is harmless.
        """
        if self._is_self_event():
            return
        seen = self._seen_rules.setdefault(kind, {})
        fresh: dict[str, str] = {}
        for name in self.config_center.rule_names(kind):
            try:
                fresh[name] = self._fingerprint(self.config_center.load_rule(kind, name))
            except GovernanceError:
                continue  # deleted between listing and load
        for name in [n for n in seen if n not in fresh]:
            del seen[name]
            if kind == "sharding":
                try:
                    self.drop_table_rule(name)
                except ShardingConfigError:
                    pass  # never applied locally
        for name, fingerprint in fresh.items():
            if seen.get(name) == fingerprint:
                continue
            try:
                self._apply_governor_rule(kind, name, self.config_center.load_rule(kind, name))
                seen[name] = fingerprint
            except (GovernanceError, ShardingConfigError):
                pass  # partial peer write; the next event retries

    def _on_prop_event(self, event: str, path: str, value: Any) -> None:
        if self._is_self_event() or event == "deleted":
            return
        name = path.rsplit("/", 1)[-1]
        if name not in KNOWN_VARIABLES:
            return
        try:
            self.set_variable(name, value, persist=False)
        except DistSQLError:
            pass  # malformed peer value; keep the local setting


