"""ShardingRuntime: the shared state behind both adaptors.

One runtime bundles the fleet of data sources, the live sharding rule, the
SQL engine, the transaction manager, the session variables and the
Governor's config center. ShardingSphere-JDBC embeds a runtime in-process;
ShardingSphere-Proxy hosts one behind a TCP server. Deploying both against
the same Governor is the paper's "share the same Governor" deployment.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..engine import Feature, ResiliencePolicy, SQLEngine
from ..engine.context import build_context
from ..engine.rewriter import rewrite
from ..engine.router import route
from ..exceptions import DistSQLError, ShardingConfigError
from ..features import ReadWriteGroup, ReadWriteSplittingFeature
from ..governor import ConfigCenter
from ..observability import Observability
from ..sharding import ShardingRule
from ..sql import parse
from ..sql.dialects import get_dialect
from ..storage import DataSource, LatencyModel
from ..transaction import TransactionManager, TransactionType


class ShardingRuntime:
    """Live configuration + engine of one ShardingSphere deployment."""

    def __init__(
        self,
        data_sources: Mapping[str, DataSource] | None = None,
        rule: ShardingRule | None = None,
        max_connections_per_query: int = 1,
        features: Sequence[Feature] = (),
        config_center: ConfigCenter | None = None,
        transaction_type: TransactionType = TransactionType.LOCAL,
        default_latency: LatencyModel | None = None,
        worker_threads: int = 32,
        resilience: ResiliencePolicy | None = None,
    ):
        self.data_sources: dict[str, DataSource] = dict(data_sources or {})
        self.rule = rule if rule is not None else ShardingRule()
        if self.rule.default_data_source is None and self.data_sources:
            self.rule.default_data_source = next(iter(self.data_sources))
        self.default_latency = default_latency
        self.config_center = config_center if config_center is not None else ConfigCenter()
        self.engine = SQLEngine(
            self.data_sources,
            self.rule,
            max_connections_per_query=max_connections_per_query,
            features=list(features),
            worker_threads=worker_threads,
            resilience=resilience,
        )
        #: Governor health detector, once attached (health-aware routing)
        self.health_detector = None
        #: tracer + metrics registry + slow-query log (the Agent analogue);
        #: the tracer stays disabled until SET VARIABLE tracing = on (or a
        #: one-shot TRACE), so the hot path only pays the stage histograms.
        self.observability = Observability()
        self.engine.attach_observability(self.observability)
        self.transaction_manager = TransactionManager(self.data_sources, transaction_type)
        self.variables: dict[str, Any] = {
            "transaction_type": transaction_type.value,
            "max_connections_per_query": max_connections_per_query,
            "tracing": "OFF",
            "slow_query_threshold_ms": self.observability.slow_log.threshold * 1000.0,
            "plan_cache": "ON",
        }
        self._rwsplit_feature: ReadWriteSplittingFeature | None = None
        for name, source in self.data_sources.items():
            self.config_center.register_data_source(name, {"dialect": source.dialect.name})

    def close(self) -> None:
        self.engine.close()

    # ------------------------------------------------------------------
    # Resilience + health (Governor integration)
    # ------------------------------------------------------------------

    def enable_resilience(self, policy: ResiliencePolicy) -> None:
        """Turn on retries/deadlines/per-source breakers for this runtime."""
        self.engine.executor.enable_resilience(policy)

    def attach_health_detector(self, detector) -> None:
        """Wire a Governor :class:`HealthDetector` into execution/routing.

        The executor then skips DOWN sources for degradable broadcast reads
        and fails writes to DOWN sources fast; read-write splitting (when
        configured) also steers replica reads through :meth:`_source_is_up`.
        """
        self.health_detector = detector
        self.engine.executor.set_health_check(detector.is_up)

    def _source_is_up(self, name: str) -> bool:
        """UP per the Governor AND admitted by the source's breaker."""
        if self.health_detector is not None and not self.health_detector.is_up(name):
            return False
        breakers = self.engine.executor.breakers
        if breakers is not None and not breakers.available(name):
            return False
        return True

    # ------------------------------------------------------------------
    # Resource management (DistSQL RDL)
    # ------------------------------------------------------------------

    def register_resource(self, name: str, props: dict[str, Any] | None = None) -> DataSource:
        props = dict(props or {})
        dialect = get_dialect(str(props.get("dialect", "MySQL")))
        source = DataSource(
            name,
            dialect=dialect,
            latency=self.default_latency,
            pool_size=int(props.get("pool_size", 64)),
        )
        self.data_sources[name] = source
        if self.rule.default_data_source is None:
            self.rule.default_data_source = name
        self.config_center.register_data_source(name, {"dialect": dialect.name})
        self.observability.watch_pool(name, source.pool)
        self.observability.register_storage_plan_cache(name, source.database.plan_cache)
        return source

    def add_resource(self, name: str, source: DataSource) -> None:
        """Register an already-built DataSource object."""
        self.data_sources[name] = source
        if self.rule.default_data_source is None:
            self.rule.default_data_source = name
        self.config_center.register_data_source(name, {"dialect": source.dialect.name})
        self.observability.watch_pool(name, source.pool)
        self.observability.register_storage_plan_cache(name, source.database.plan_cache)

    def unregister_resource(self, name: str) -> None:
        source = self.data_sources.pop(name, None)
        if source is not None:
            source.pool.close()
        if self.rule.default_data_source == name:
            self.rule.default_data_source = next(iter(self.data_sources), None)
        try:
            self.config_center.remove_data_source(name)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Variables (DistSQL RAL)
    # ------------------------------------------------------------------

    def set_variable(self, name: str, value: Any) -> None:
        name = name.lower()
        if name == "transaction_type":
            self.transaction_manager.set_type(str(value))
            self.variables[name] = str(value).upper()
        elif name == "max_connections_per_query":
            count = int(value)
            if count < 1:
                raise DistSQLError("max_connections_per_query must be >= 1")
            self.engine.executor.max_connections_per_query = count
            self.variables[name] = count
        elif name == "tracing":
            enabled = str(value).strip().lower() in ("1", "true", "on", "yes")
            self.observability.tracer.enabled = enabled
            self.variables[name] = "ON" if enabled else "OFF"
        elif name == "slow_query_threshold_ms":
            millis = float(value)
            if millis < 0:
                raise DistSQLError("slow_query_threshold_ms must be >= 0")
            self.observability.slow_log.threshold = millis / 1000.0
            self.variables[name] = millis
        elif name == "plan_cache":
            enabled = str(value).strip().lower() in ("1", "true", "on", "yes")
            self.engine.plan_cache.enabled = enabled
            if not enabled:
                self.engine.plan_cache.invalidate("SET VARIABLE plan_cache = off")
            self.variables[name] = "ON" if enabled else "OFF"
        else:
            self.variables[name] = value
        self.config_center.set_prop(name, self.variables[name])

    # ------------------------------------------------------------------
    # Rule persistence + preview (DistSQL)
    # ------------------------------------------------------------------

    def persist_rule(self, kind: str, name: str, config: dict[str, Any]) -> None:
        self.config_center.store_rule(kind, name, config)

    def preview(self, sql: str) -> list[tuple[str, str]]:
        """Route+rewrite without executing (DistSQL PREVIEW)."""
        statement = parse(sql)
        context = build_context(statement, sql, (), self.rule)
        route_result = route(context, self.rule)
        rewritten = rewrite(context, route_result, lambda ds: self.data_sources[ds].dialect)
        return [(u.data_source, u.sql) for u in rewritten.execution_units]

    def load_rules_from_governor(self) -> int:
        """Rebuild sharding state from the config center (restart recovery).

        A runtime created against an existing Governor — e.g. a proxy
        instance rejoining the cluster, or a restart after a crash —
        replays the persisted sharding, binding, broadcast and
        read-write-splitting rules. Returns how many rules were applied.
        """
        from ..sharding import build_auto_table_rule

        applied = 0
        for name in self.config_center.rule_names("sharding"):
            config = self.config_center.load_rule("sharding", name)
            missing = [r for r in config["resources"] if r not in self.data_sources]
            for resource in missing:
                self.register_resource(resource)
            table_rule = build_auto_table_rule(
                name,
                config["resources"],
                sharding_column=config["sharding_column"],
                algorithm_type=config.get("type", "HASH_MOD"),
                properties=config.get("props", {}),
            )
            self.rule.add_table_rule(table_rule)
            applied += 1
        for name in self.config_center.rule_names("binding"):
            config = self.config_center.load_rule("binding", name)
            try:
                self.rule.add_binding_group(config["tables"])
                applied += 1
            except ShardingConfigError:
                pass  # already bound or member rules missing
        for name in self.config_center.rule_names("broadcast"):
            config = self.config_center.load_rule("broadcast", name)
            self.rule.add_broadcast_table(config["table"])
            applied += 1
        for name in self.config_center.rule_names("readwrite_splitting"):
            config = self.config_center.load_rule("readwrite_splitting", name)
            self.apply_rwsplit_rule(name, config["primary"], config["replicas"])
            applied += 1
        for variable in ("transaction_type", "max_connections_per_query"):
            value = self.config_center.get_prop(variable)
            if value is not None:
                self.set_variable(variable, value)
        return applied

    def apply_rwsplit_rule(self, name: str, primary: str, replicas: list[str]) -> None:
        group = ReadWriteGroup(name=primary, primary=primary, replicas=list(replicas))
        if self._rwsplit_feature is None:
            self._rwsplit_feature = ReadWriteSplittingFeature(
                [group], is_up=self._source_is_up
            )
            self.engine.add_feature(self._rwsplit_feature)
        else:
            self._rwsplit_feature.groups[group.name] = group
