"""Adaptors (Section VII): ShardingSphere-JDBC and ShardingSphere-Proxy."""

from .jdbc import PreparedStatement, ShardingConnection, ShardingDataSource, ShardingResult
from .proxy import ShardingProxyServer
from .runtime import ShardingRuntime

__all__ = [
    "ShardingRuntime",
    "ShardingDataSource",
    "ShardingConnection",
    "PreparedStatement",
    "ShardingResult",
    "ShardingProxyServer",
]
