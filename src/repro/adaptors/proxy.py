"""ShardingSphere-Proxy adaptor: a session-multiplexing reactor server.

The proxy hosts a :class:`ShardingRuntime` behind the wire protocol of
:mod:`repro.protocol`, mimicking how the real ShardingSphere-Proxy
disguises itself as a MySQL/PostgreSQL server. Unlike the original
thread-per-connection implementation, this server follows the reactor /
queue-based-load-leveling patterns a sharding middleware needs to front
thousands of clients:

* **One reactor thread** owns a ``selectors`` loop: it accepts sockets,
  frames inbound bytes incrementally (:class:`~repro.protocol.message.
  Framer`) and flushes outbound buffers. It never parses JSON and never
  executes SQL, so no client can stall another at the framing layer.
* **A bounded worker pool** (default 2× CPU count) pulls requests off a
  bounded admission queue, resumes the client's
  :class:`~repro.session.SessionContext` (via the session-owning
  :class:`~repro.adaptors.jdbc.ShardingConnection`) and executes. A full
  queue is answered with a ``ServerBusyError`` backpressure response —
  load sheds instead of threads piling up.
* **Per-session ordering**: at most one in-flight request per client;
  further frames wait in the client's pending queue (bounded too), so a
  pipelining client cannot reorder its own statements or starve others.

Session state (causal replication tokens, transactions, pinning) is
carried by the connection's SessionContext and resumed on whichever
worker picks the request up — the thread serving a session changes from
request to request, and nothing observable depends on it.
"""

from __future__ import annotations

import collections
import os
import queue
import selectors
import socket
import threading
from typing import Any

from ..exceptions import ProtocolError, ShardingSphereError
from ..protocol.message import Framer, PacketType, decode_body, encode
from .jdbc import ShardingConnection
from .runtime import ShardingRuntime

ROW_BATCH_SIZE = 200

#: per-client cap on frames parked behind the in-flight one; a client
#: pipelining past this gets backpressure rather than unbounded buffering
MAX_PENDING_PER_SESSION = 32

#: bytes drained from a socket per readable event
RECV_SIZE = 64 * 1024


def default_worker_count() -> int:
    """The bounded pool size: 2x CPU count (the acceptance envelope),
    with a floor of 2 so one slow statement cannot idle the server."""
    return max(2, 2 * (os.cpu_count() or 1))


class _ClientSession:
    """Reactor-side state for one connected client.

    Mutated only on the reactor thread (framing, pending queue, outbox)
    except for ``connection``, which exactly one worker at a time uses —
    guaranteed by the per-session ordering discipline.
    """

    __slots__ = ("sock", "addr", "framer", "connection", "outbox",
                 "pending", "busy", "handshaken", "closing", "write_armed")

    def __init__(self, sock: socket.socket, addr: Any,
                 connection: ShardingConnection):
        self.sock = sock
        self.addr = addr
        self.framer = Framer()
        self.connection = connection
        #: outbound byte chunks not yet written to the socket
        self.outbox: collections.deque[memoryview] = collections.deque()
        #: frames received while a request is in flight (FIFO)
        self.pending: collections.deque[tuple[PacketType, bytes]] = collections.deque()
        self.busy = False          # a worker is executing for this client
        self.handshaken = False
        self.closing = False       # close once outbox drains / worker returns
        self.write_armed = False   # EVENT_WRITE currently registered


class ShardingProxyServer:
    """Multiplexing TCP server fronting one runtime.

    Serves N clients with ``1 + workers`` threads total (reactor + the
    bounded pool), regardless of N. ``max_queue`` bounds the admission
    queue; when it is full new requests get an immediate backpressure
    error response instead of queueing (queue-based load leveling).
    """

    def __init__(self, runtime: ShardingRuntime, host: str = "127.0.0.1",
                 port: int = 0, workers: int | None = None,
                 max_queue: int | None = None):
        self.runtime = runtime
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.workers = workers if workers is not None else default_worker_count()
        self.max_queue = max_queue if max_queue is not None else 1024
        self._sock: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._reactor_thread: threading.Thread | None = None
        self._worker_threads: list[threading.Thread] = []
        self._stop = threading.Event()
        #: admission queue: (client, packet_type, payload bytes)
        self._tasks: "queue.Queue[tuple[_ClientSession, PacketType, bytes] | None]" = (
            queue.Queue(maxsize=self.max_queue)
        )
        #: commands posted to the reactor by workers: ("output"|"done", ...)
        self._commands: collections.deque[tuple] = collections.deque()
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._wake_lock = threading.Lock()
        self._sessions: set[_ClientSession] = set()
        # -- counters (reactor-thread writes; racy reads are fine) --------
        self.sessions_served = 0
        self.requests = 0
        self.errors = 0
        self.backpressure_rejections = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ShardingProxyServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(512)
        sock.setblocking(False)
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._stop.clear()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(sock, selectors.EVENT_READ, "accept")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        self._worker_threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"ss-proxy-worker-{i}")
            for i in range(self.workers)
        ]
        for thread in self._worker_threads:
            thread.start()
        self._reactor_thread = threading.Thread(
            target=self._reactor_loop, daemon=True, name="ss-proxy-reactor")
        self._reactor_thread.start()
        self.runtime.observability.registry.register_collector(
            self._metric_families, key=self)
        return self

    def stop(self) -> None:
        """Clean shutdown: closes in-flight client sockets, drains the
        worker pool, and releases every session — no tracebacks."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._wakeup()
        if self._reactor_thread is not None:
            self._reactor_thread.join(timeout=5)
            self._reactor_thread = None
        # unblock and retire the workers (sentinels; queue may be full of
        # stale tasks, so drain opportunistically while feeding them)
        for _ in self._worker_threads:
            while True:
                try:
                    self._tasks.put_nowait(None)
                    break
                except queue.Full:
                    try:
                        self._tasks.get_nowait()
                    except queue.Empty:
                        pass
        for thread in self._worker_threads:
            thread.join(timeout=5)
        self._worker_threads = []
        # release sessions only after workers stopped touching them
        for session in list(self._sessions):
            self._close_quietly(session.sock)
            try:
                session.connection.close()
            except ShardingSphereError:
                pass
        self._sessions.clear()
        for sock in (self._wake_r, self._wake_w, self._sock):
            if sock is not None:
                self._close_quietly(sock)
        self._wake_r = self._wake_w = self._sock = None
        try:
            self.runtime.observability.registry.unregister_collector(self)
        except Exception:
            pass

    def __enter__(self) -> "ShardingProxyServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- observability -----------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    @property
    def queue_depth(self) -> int:
        return self._tasks.qsize()

    def stats(self) -> dict[str, Any]:
        return {
            "active_sessions": self.active_sessions,
            "sessions_served": self.sessions_served,
            "requests": self.requests,
            "errors": self.errors,
            "backpressure_rejections": self.backpressure_rejections,
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "workers": self.workers,
        }

    def _metric_families(self):
        return [
            ("proxy_sessions", "gauge", "connected proxy sessions",
             [({}, float(self.active_sessions))]),
            ("proxy_sessions_served_total", "counter",
             "proxy sessions accepted since start",
             [({}, float(self.sessions_served))]),
            ("proxy_requests_total", "counter", "requests executed",
             [({}, float(self.requests))]),
            ("proxy_errors_total", "counter", "requests answered with ERROR",
             [({}, float(self.errors))]),
            ("proxy_backpressure_total", "counter",
             "requests shed by admission-queue backpressure",
             [({}, float(self.backpressure_rejections))]),
            ("proxy_queue_depth", "gauge", "admission queue depth",
             [({}, float(self.queue_depth))]),
            ("proxy_workers", "gauge", "bounded worker pool size",
             [({}, float(self.workers))]),
        ]

    # -- the reactor -------------------------------------------------------

    def _wakeup(self) -> None:
        with self._wake_lock:
            wake = self._wake_w
            if wake is not None:
                try:
                    wake.send(b"\0")
                except OSError:
                    pass

    def _post(self, command: tuple) -> None:
        """Worker -> reactor handoff (the only cross-thread channel)."""
        self._commands.append(command)
        self._wakeup()

    def _reactor_loop(self) -> None:
        selector = self._selector
        assert selector is not None
        while not self._stop.is_set():
            try:
                events = selector.select(timeout=0.5)
            except OSError:
                break
            for key, mask in events:
                if key.data == "accept":
                    self._accept()
                elif key.data == "wakeup":
                    try:
                        key.fileobj.recv(4096)  # type: ignore[union-attr]
                    except OSError:
                        pass
                else:
                    session: _ClientSession = key.data
                    if mask & selectors.EVENT_READ:
                        self._on_readable(session)
                    if mask & selectors.EVENT_WRITE:
                        self._flush(session)
            self._run_commands()

    def _accept(self) -> None:
        assert self._sock is not None and self._selector is not None
        while True:
            try:
                sock, addr = self._sock.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            connection = ShardingConnection(self.runtime)
            connection.session.kind = "proxy"
            connection.session.client = f"{addr[0]}:{addr[1]}"
            session = _ClientSession(sock, addr, connection)
            self._sessions.add(session)
            self.sessions_served += 1
            try:
                self._selector.register(sock, selectors.EVENT_READ, session)
            except (OSError, ValueError):
                self._teardown(session)

    def _on_readable(self, session: _ClientSession) -> None:
        try:
            data = session.sock.recv(RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._disconnect(session)
            return
        if not data:
            self._disconnect(session)
            return
        try:
            packets = session.framer.feed(data)
        except ProtocolError as exc:
            # framing is unrecoverable: answer once, then hang up
            self._send(session, encode(PacketType.ERROR,
                                       {"message": str(exc),
                                        "type": "ProtocolError"}))
            session.closing = True
            self._maybe_close(session)
            return
        for packet_type, payload in packets:
            if session.closing:
                return
            self._on_packet(session, packet_type, payload)

    def _on_packet(self, session: _ClientSession, packet_type: PacketType,
                   payload: bytes) -> None:
        if not session.handshaken:
            if packet_type is not PacketType.HANDSHAKE:
                self._send(session, encode(PacketType.ERROR,
                                           {"message": "expected handshake"}))
                session.closing = True
                self._maybe_close(session)
                return
            session.handshaken = True
            self._send(session, encode(PacketType.HANDSHAKE_OK, {
                "server": "repro-shardingsphere-proxy",
                "version": "5.0.0-repro",
                "session_id": session.connection.session.session_id,
            }))
            return
        if packet_type is PacketType.QUIT:
            session.closing = True
            self._maybe_close(session)
            return
        if packet_type is not PacketType.QUERY:
            self._send(session, encode(
                PacketType.ERROR,
                {"message": f"unexpected {packet_type.name}"}))
            return
        if session.busy:
            if len(session.pending) >= MAX_PENDING_PER_SESSION:
                self._reject_busy(session, "session pipeline limit reached")
                return
            session.pending.append((packet_type, payload))
            return
        self._dispatch(session, payload)

    def _dispatch(self, session: _ClientSession, payload: bytes) -> None:
        """Admit one request to the worker queue, or shed it."""
        try:
            self._tasks.put_nowait((session, PacketType.QUERY, payload))
        except queue.Full:
            self._reject_busy(session, "admission queue full")
            return
        session.busy = True

    def _reject_busy(self, session: _ClientSession, why: str) -> None:
        self.backpressure_rejections += 1
        self._send(session, encode(PacketType.ERROR, {
            "message": f"server busy: {why}; retry",
            "type": "ServerBusyError",
            "backpressure": True,
        }))

    def _run_commands(self) -> None:
        commands = self._commands
        while commands:
            try:
                command = commands.popleft()
            except IndexError:
                break
            kind = command[0]
            if kind == "output":
                _, session, data = command
                if session in self._sessions:
                    self._send(session, data)
            elif kind == "done":
                _, session = command
                session.busy = False
                if session not in self._sessions:
                    continue
                if session.closing:
                    self._maybe_close(session)
                    continue
                if session.pending:
                    _packet_type, payload = session.pending.popleft()
                    self._dispatch(session, payload)

    # -- writes ------------------------------------------------------------

    def _send(self, session: _ClientSession, data: bytes) -> None:
        session.outbox.append(memoryview(data))
        self._flush(session)

    def _flush(self, session: _ClientSession) -> None:
        outbox = session.outbox
        try:
            while outbox:
                chunk = outbox[0]
                try:
                    sent = session.sock.send(chunk)
                except BlockingIOError:
                    break
                if sent < len(chunk):
                    outbox[0] = chunk[sent:]
                    break
                outbox.popleft()
        except OSError:
            self._disconnect(session)
            return
        self._arm_write(session, bool(outbox))
        if not outbox:
            self._maybe_close(session)

    def _arm_write(self, session: _ClientSession, want_write: bool) -> None:
        if want_write == session.write_armed or self._selector is None:
            return
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if want_write else 0)
        try:
            self._selector.modify(session.sock, events, session)
            session.write_armed = want_write
        except (KeyError, OSError, ValueError):
            pass

    # -- teardown ----------------------------------------------------------

    def _maybe_close(self, session: _ClientSession) -> None:
        if session.closing and not session.outbox and not session.busy:
            self._teardown(session)

    def _disconnect(self, session: _ClientSession) -> None:
        """Peer went away. If a worker is mid-request, defer the teardown
        to its 'done' command so the connection is never closed under it."""
        session.closing = True
        session.pending.clear()
        session.outbox.clear()
        if not session.busy:
            self._teardown(session)

    def _teardown(self, session: _ClientSession) -> None:
        if session not in self._sessions:
            return
        self._sessions.discard(session)
        if self._selector is not None:
            try:
                self._selector.unregister(session.sock)
            except (KeyError, OSError, ValueError):
                pass
        self._close_quietly(session.sock)
        try:
            session.connection.close()
        except ShardingSphereError:
            pass

    @staticmethod
    def _close_quietly(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass

    # -- the worker pool ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            session, packet_type, payload = task
            try:
                response = self._handle_query(session, payload)
            except Exception as exc:  # never let a worker die
                self.errors += 1
                response = encode(PacketType.ERROR, {
                    "message": str(exc), "type": type(exc).__name__})
            self._post(("output", session, response))
            self._post(("done", session))

    def _handle_query(self, session: _ClientSession, payload: bytes) -> bytes:
        """Execute one QUERY on the client's connection; returns the full
        encoded response (one or many packets).

        Runs on a pool worker. ``connection.execute`` resumes the
        client's SessionContext, so causal tokens, pinning and open
        transactions follow the *session* here no matter which worker
        got the request.
        """
        body = decode_body(payload) or {}
        sql = body.get("sql", "")
        params = tuple(body.get("params") or ())
        self.requests += 1
        try:
            result = session.connection.execute(sql, params)
        except ShardingSphereError as exc:
            self.errors += 1
            return encode(PacketType.ERROR,
                          {"message": str(exc), "type": type(exc).__name__})
        if result.description is None:
            return encode(PacketType.OK, {
                "rowcount": result.rowcount,
                "message": result.message or "OK",
                "generated_keys": result.generated_keys,
            })
        chunks = [encode(PacketType.RESULT_HEADER, {"columns": result.columns})]
        while True:
            batch = result.fetchmany(ROW_BATCH_SIZE)
            if not batch:
                break
            chunks.append(encode(PacketType.ROW_BATCH,
                                 {"rows": [list(r) for r in batch]}))
        chunks.append(encode(PacketType.RESULT_END, {}))
        return b"".join(chunks)
