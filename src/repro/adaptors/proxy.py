"""ShardingSphere-Proxy adaptor: a standalone TCP server.

The proxy hosts a :class:`ShardingRuntime` behind the wire protocol of
:mod:`repro.protocol`, mimicking how the real ShardingSphere-Proxy
disguises itself as a MySQL/PostgreSQL server. Each client session gets
its own :class:`ShardingConnection`, so transactions and hints are
per-session. Every request really crosses a socket — this is what makes
the SSJ-vs-SSP gap of the paper's tables measurable here.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from ..exceptions import ShardingSphereError
from ..protocol.message import PacketType, read_packet, send_packet
from .jdbc import ShardingConnection
from .runtime import ShardingRuntime

ROW_BATCH_SIZE = 200


class ShardingProxyServer:
    """Threaded TCP server fronting one runtime."""

    def __init__(self, runtime: ShardingRuntime, host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._clients: set[socket.socket] = set()
        self._lock = threading.Lock()
        self.sessions_served = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ShardingProxyServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(128)
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._stop.clear()
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True, name="ss-proxy-accept")
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        with self._lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ShardingProxyServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                client, _ = self._sock.accept()
            except OSError:
                return
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._clients.add(client)
                self.sessions_served += 1
            thread = threading.Thread(
                target=self._serve_client, args=(client,), daemon=True, name="ss-proxy-conn"
            )
            thread.start()

    def _serve_client(self, client: socket.socket) -> None:
        connection = ShardingConnection(self.runtime)
        try:
            packet_type, body = read_packet(client)
            if packet_type is not PacketType.HANDSHAKE:
                send_packet(client, PacketType.ERROR, {"message": "expected handshake"})
                return
            send_packet(
                client,
                PacketType.HANDSHAKE_OK,
                {"server": "repro-shardingsphere-proxy", "version": "5.0.0-repro"},
            )
            while not self._stop.is_set():
                packet_type, body = read_packet(client)
                if packet_type is PacketType.QUIT:
                    return
                if packet_type is not PacketType.QUERY:
                    send_packet(client, PacketType.ERROR, {"message": f"unexpected {packet_type.name}"})
                    continue
                self._handle_query(client, connection, body or {})
        except (ShardingSphereError, OSError):
            pass
        finally:
            connection.close()
            with self._lock:
                self._clients.discard(client)
            try:
                client.close()
            except OSError:
                pass

    def _handle_query(self, client: socket.socket, connection: ShardingConnection, body: dict) -> None:
        sql = body.get("sql", "")
        params = tuple(body.get("params") or ())
        try:
            result = connection.execute(sql, params)
        except ShardingSphereError as exc:
            send_packet(
                client, PacketType.ERROR,
                {"message": str(exc), "type": type(exc).__name__},
            )
            return
        if result.description is None:
            send_packet(
                client, PacketType.OK,
                {
                    "rowcount": result.rowcount,
                    "message": result.message or "OK",
                    "generated_keys": result.generated_keys,
                },
            )
            return
        send_packet(client, PacketType.RESULT_HEADER, {"columns": result.columns})
        while True:
            batch = result.fetchmany(ROW_BATCH_SIZE)
            if not batch:
                break
            send_packet(client, PacketType.ROW_BATCH, {"rows": [list(r) for r in batch]})
        send_packet(client, PacketType.RESULT_END, {})
