"""ShardingSphere-JDBC adaptor: the in-process enhanced driver.

Applications get DB-API-flavoured connections whose statements run through
the full sharding pipeline in the same process — no extra network hop,
which is why the paper's SSJ configurations outperform SSP. DistSQL
statements are recognized and dispatched to the DistSQL executor, so one
connection is enough to both configure and use the sharded fleet.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Sequence

from ..distsql import execute_distsql, is_distsql
from ..engine.pipeline import EngineResult
from ..exceptions import ConnectionClosedError, TransactionError, UnsupportedSQLError
from ..session import SessionContext, activate
from ..sql import ast, parse
from ..transaction import DistributedTransaction
from .runtime import ShardingRuntime


class ShardingResult:
    """Cursor-like view over one statement's outcome."""

    def __init__(self, columns: list[str], rows: Iterator[tuple[Any, ...]],
                 rowcount: int = -1, generated_keys: tuple[str, list[Any]] | None = None,
                 message: str | None = None, diagnostics: EngineResult | None = None):
        self.columns = columns
        self._rows = iter(rows)
        self.rowcount = rowcount
        self.generated_keys = generated_keys
        self.message = message
        self.diagnostics = diagnostics

    @property
    def description(self) -> list[tuple] | None:
        if not self.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self.columns]

    def fetchone(self) -> tuple[Any, ...] | None:
        return next(self._rows, None)

    def fetchmany(self, size: int = 100) -> list[tuple[Any, ...]]:
        return list(itertools.islice(self._rows, size))

    def fetchall(self) -> list[tuple[Any, ...]]:
        return list(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return self._rows


class _PinnedConnections:
    """dict-like view handing the execution engine the transaction's
    per-data-source connections, pinning them lazily on first use."""

    def __init__(self, transaction: DistributedTransaction):
        self.transaction = transaction

    def get(self, ds_name: str):
        return self.transaction.connection_for(ds_name)


class ShardingConnection:
    """A logical connection to the sharded fleet.

    Owns one :class:`~repro.session.SessionContext`: causal replication
    tokens, primary pinning and SHOW SESSIONS bookkeeping are scoped to
    the *connection*, not to whichever OS thread happens to run its
    statements. Every entry point activates the session, so the same
    connection driven from a proxy worker pool behaves identically to one
    driven by a dedicated thread.
    """

    def __init__(self, runtime: ShardingRuntime,
                 session: SessionContext | None = None):
        self.runtime = runtime
        self.session = (
            session if session is not None else SessionContext(kind="jdbc")
        )
        runtime.sessions.register(self.session)
        self._transaction: DistributedTransaction | None = None
        self._closed = False
        self.hint_values: list[Any] = []

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        if self._transaction is not None and not self._transaction.finished:
            with activate(self.session):
                self._transaction.rollback()
        self._transaction = None
        self._closed = True
        self.session.in_transaction = False
        self.runtime.sessions.unregister(self.session)

    def __enter__(self) -> "ShardingConnection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("sharding connection is closed")

    # -- transactions ------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None and not self._transaction.finished

    def begin(self) -> None:
        self._check_open()
        if self.in_transaction:
            raise TransactionError("transaction already in progress")
        self._transaction = self.runtime.transaction_manager.begin()
        self.session.in_transaction = True

    def commit(self) -> None:
        self._check_open()
        if self._transaction is not None:
            try:
                with activate(self.session):
                    self._transaction.commit()
            finally:
                self._transaction = None
                self.session.in_transaction = False

    def rollback(self) -> None:
        self._check_open()
        if self._transaction is not None:
            try:
                with activate(self.session):
                    self._transaction.rollback()
            finally:
                self._transaction = None
                self.session.in_transaction = False

    def set_transaction_type(self, type_name: str) -> None:
        """Per-deployment transaction type switch (DistSQL RAL shortcut)."""
        self.runtime.set_variable("transaction_type", type_name)

    # -- hints ----------------------------------------------------------------

    def set_hint(self, *values: Any) -> None:
        """Supply hint sharding values for subsequent statements."""
        self.hint_values = list(values)

    def clear_hint(self) -> None:
        self.hint_values = []

    def hint(self, *values: Any) -> "HintManager":
        """Scoped hint values::

            with conn.hint(7):
                conn.execute("SELECT * FROM t_user")   # routed by hint 7
        """
        return HintManager(self, values)

    def primary(self):
        """Scope reads to primaries (HintManager.setPrimaryRouteOnly)::

            with conn.primary():
                conn.execute("SELECT ...")   # never served by a replica

        Pins this connection's session: read-write splitting sends reads
        to the group primary and the result cache is bypassed for the
        block.
        """
        return self.session.pin()

    # -- DAL -----------------------------------------------------------------

    def _show(self, statement: ast.ShowStatement) -> ShardingResult:
        subject = statement.subject.upper()
        if subject == "TABLES":
            names: dict[str, None] = {}
            for table in self.runtime.rule.logic_tables():
                names.setdefault(table)
            for name in sorted(self.runtime.rule.broadcast_tables):
                names.setdefault(name)
            default = self.runtime.rule.default_data_source
            if default and default in self.runtime.data_sources:
                for name in self.runtime.data_sources[default].database.table_names():
                    # physical shards of known logic tables stay hidden
                    if not any(
                        name.lower().startswith(logic.lower() + "_")
                        for logic in names
                    ):
                        names.setdefault(name)
            rows = [(n,) for n in names]
            return ShardingResult(["table"], iter(rows))
        raise UnsupportedSQLError(f"SHOW {statement.subject} is not supported")


    # -- execution ----------------------------------------------------------------

    #: leading keywords that must be parsed here (transaction control and
    #: session statements the engine pipeline never sees)
    _CONTROL_VERBS = frozenset({"BEGIN", "START", "COMMIT", "ROLLBACK", "SET", "SHOW"})

    def prepare(self, sql: str) -> "PreparedStatement":
        """JDBC-style ``prepareStatement``: repeated executions of the
        returned statement run from the engine's plan cache."""
        self._check_open()
        return PreparedStatement(self, sql)

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ShardingResult:
        self._check_open()
        # Resume this connection's session for the whole statement: any
        # thread may drive this connection (proxy workers do), and causal
        # tokens / pinning / guards must land on the session, not the
        # thread.
        with activate(self.session):
            self.session.statements += 1
            self.session.last_sql = sql
            return self._execute_in_session(sql, params)

    def _execute_in_session(self, sql: str, params: Sequence[Any]) -> ShardingResult:
        if is_distsql(sql):
            result = execute_distsql(sql, self.runtime)
            return ShardingResult(result.columns, iter(result.rows), message=result.message)

        # Cheap leading-verb dispatch: only control/session statements are
        # parsed here. Everything else passes through as raw SQL text so
        # the engine's plan cache can key by it (pre-parsing would force
        # the slow path every time).
        head = sql.lstrip()[:12].upper()
        verb = head.split(None, 1)[0] if head else ""
        if verb in self._CONTROL_VERBS:
            statement = self.runtime.engine._parse_cached(sql)
            if isinstance(statement, ast.BeginStatement):
                self.begin()
                return ShardingResult([], iter(()), rowcount=0, message="BEGIN")
            if isinstance(statement, ast.CommitStatement):
                self.commit()
                return ShardingResult([], iter(()), rowcount=0, message="COMMIT")
            if isinstance(statement, ast.RollbackStatement):
                self.rollback()
                return ShardingResult([], iter(()), rowcount=0, message="ROLLBACK")
            if isinstance(statement, ast.SetStatement):
                self.runtime.set_variable(statement.name, statement.value)
                return ShardingResult([], iter(()), rowcount=0, message="OK")
            if isinstance(statement, ast.ShowStatement):
                return self._show(statement)

        if self.in_transaction:
            # Reads inside an explicit transaction must observe its own
            # uncommitted writes: pin the session so read-write splitting
            # keeps every statement on the primary's pinned connection.
            with self.session.pin():
                engine_result = self.runtime.engine.execute(
                    sql, params,
                    held_connections=_PinnedConnections(self._transaction),
                    hint_values=self.hint_values or None,
                )
        else:
            engine_result = self.runtime.engine.execute(
                sql, params,
                held_connections=None,
                hint_values=self.hint_values or None,
            )
        return self._wrap(engine_result)

    def execute_pipeline(
        self, statements: Sequence[tuple[str, Sequence[Any]]]
    ) -> list[ShardingResult]:
        """Fused statement pipelining: ship a batch of plain SQL statements
        through the engine in one go.

        Consecutive statements routing to one shard travel as a single
        connection checkout and storage round trip (write-I/O coalesced
        per written table — the group-commit analog); semantics stay
        serial-equivalent. Inside an open transaction the batch reuses the
        transaction's pinned connections. Only plain SQL is accepted —
        DistSQL, transaction control and session statements must go
        through :meth:`execute`.
        """
        self._check_open()
        for sql, _params in statements:
            head = sql.lstrip()[:12].upper()
            verb = head.split(None, 1)[0] if head else ""
            if verb in self._CONTROL_VERBS or is_distsql(sql):
                raise UnsupportedSQLError(
                    "execute_pipeline only accepts plain SQL statements; "
                    f"route {verb or sql!r} through execute()"
                )
        with activate(self.session):
            self.session.statements += len(statements)
            if statements:
                self.session.last_sql = statements[-1][0]
            if self.in_transaction:
                with self.session.pin():
                    engine_results = self.runtime.engine.execute_pipeline(
                        list(statements),
                        held_connections=_PinnedConnections(self._transaction))
            else:
                engine_results = self.runtime.engine.execute_pipeline(
                    list(statements), held_connections=None)
        return [self._wrap(engine_result) for engine_result in engine_results]

    def _wrap(self, engine_result: EngineResult) -> ShardingResult:
        if engine_result.is_query:
            merged = engine_result.merged
            assert merged is not None
            return ShardingResult(
                merged.columns, merged.rows,
                generated_keys=engine_result.generated_keys,
                diagnostics=engine_result,
            )
        return ShardingResult(
            [], iter(()), rowcount=engine_result.update_count,
            generated_keys=engine_result.generated_keys,
            diagnostics=engine_result,
        )


class PreparedStatement:
    """Client-side prepared statement bound to one connection.

    Mirrors JDBC's ``Connection#prepareStatement``: the first execution
    compiles the SQL text into the engine's plan cache; each subsequent
    ``execute`` binds parameters into the cached plan, skipping parse,
    context build, route and rewrite entirely::

        stmt = conn.prepare("SELECT c FROM sbtest WHERE id = ?")
        for key in keys:
            rows = stmt.execute((key,)).fetchall()
    """

    def __init__(self, connection: ShardingConnection, sql: str):
        self.connection = connection
        self.sql = sql

    def execute(self, params: Sequence[Any] = ()) -> ShardingResult:
        return self.connection.execute(self.sql, params)

    def plan(self):
        """The engine's CompiledPlan for this statement, if compiled yet.

        Peeks without touching hit/miss counters or LRU recency.
        """
        return self.connection.runtime.engine.plan_cache.peek(self.sql)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedStatement({self.sql!r})"


class ShardingDataSource:
    """The JDBC-mode entry point: hand out sharding connections."""

    def __init__(self, runtime: ShardingRuntime | None = None, **runtime_kwargs: Any):
        self.runtime = runtime if runtime is not None else ShardingRuntime(**runtime_kwargs)

    def get_connection(self) -> ShardingConnection:
        return ShardingConnection(self.runtime)

    def close(self) -> None:
        self.runtime.close()

    def __enter__(self) -> "ShardingDataSource":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class HintManager:
    """Context manager scoping hint sharding values to a block, mirroring
    the upstream HintManager API."""

    def __init__(self, connection: "ShardingConnection", values: Sequence[Any]):
        self.connection = connection
        self.values = list(values)
        self._saved: list[Any] = []

    def __enter__(self) -> "HintManager":
        self._saved = list(self.connection.hint_values)
        self.connection.hint_values = list(self.values)
        return self

    def __exit__(self, *exc: Any) -> None:
        self.connection.hint_values = self._saved
