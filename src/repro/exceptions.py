"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ShardingSphereError`,
so callers can catch one base type. Sub-hierarchies mirror the subsystems:
SQL parsing, storage, routing/rewriting, execution, transactions, governance
and DistSQL.
"""

from __future__ import annotations


class ShardingSphereError(Exception):
    """Base class for all errors raised by this library."""


class SQLParseError(ShardingSphereError):
    """A SQL statement could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class UnsupportedSQLError(SQLParseError):
    """The statement parsed but uses a feature the engine does not support."""


class StorageError(ShardingSphereError):
    """Base class for errors raised by the embedded storage engine."""


class TableNotFoundError(StorageError):
    """The referenced table does not exist in the data source."""


class TableAlreadyExistsError(StorageError):
    """CREATE TABLE for a name that already exists."""


class ColumnNotFoundError(StorageError):
    """The referenced column does not exist in the table."""


class DuplicateKeyError(StorageError):
    """A uniqueness constraint (primary key / unique index) was violated."""


class TypeCheckError(StorageError):
    """A value does not conform to the declared column type."""


class ConnectionPoolExhaustedError(StorageError):
    """No connection could be acquired from the pool within the timeout.

    Carries the pool diagnostics (``pool_name``, ``in_use``, ``max_size``,
    ``waited`` seconds) so callers and logs can tell saturation apart from
    leaks without reparsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        pool_name: str | None = None,
        in_use: int | None = None,
        max_size: int | None = None,
        waited: float | None = None,
    ):
        super().__init__(message)
        self.pool_name = pool_name
        self.in_use = in_use
        self.max_size = max_size
        self.waited = waited


class ConnectionClosedError(StorageError):
    """Operation attempted on a closed connection or cursor."""


class ShardingConfigError(ShardingSphereError):
    """Invalid sharding rule or algorithm configuration."""


class UnknownAlgorithmError(ShardingConfigError):
    """A sharding algorithm type was requested that is not registered."""


class RouteError(ShardingSphereError):
    """The router could not map a logical statement to data nodes."""


class RewriteError(ShardingSphereError):
    """The rewriter could not produce executable SQL."""


class MergeError(ShardingSphereError):
    """The result merger could not combine per-shard result sets."""


class ExecutionError(ShardingSphereError):
    """A routed statement failed during execution on a data source."""


class TransientError(ExecutionError):
    """A retryable backend hiccup (network jitter, deadlock victim, ...).

    The resilience policy may transparently retry statements that fail
    with this class; every other execution error is considered permanent.
    """


class ConnectionDropError(TransientError):
    """The server dropped the connection mid-statement (retryable on a
    fresh connection)."""


class DataSourceUnavailableError(ExecutionError):
    """The data source is down (crashed / injected outage).

    Not transparently retried against the same source: recovery is the
    job of health-aware routing (replica reads, broadcast degradation)
    and the per-source circuit breakers.
    """


class DeadlineExceededError(ExecutionError):
    """The statement's deadline/timeout budget ran out before completion."""


class TransactionError(ShardingSphereError):
    """Base class for distributed transaction failures."""


class XATransactionError(TransactionError):
    """A 2PC participant failed to prepare or commit."""


class BaseTransactionError(TransactionError):
    """A BASE (Seata-AT style) transaction failed."""


class GovernanceError(ShardingSphereError):
    """Registry / configuration management failure."""


class NodeNotFoundError(GovernanceError):
    """A registry path does not exist."""


class NodeExistsError(GovernanceError):
    """A registry path already exists."""


class BadVersionError(GovernanceError):
    """Optimistic version check failed on a registry write."""


class DistSQLError(ShardingSphereError):
    """A DistSQL statement is malformed or cannot be applied."""


class CircuitBreakerOpenError(ShardingSphereError):
    """The circuit breaker rejected the request."""


class ThrottledError(ShardingSphereError):
    """The rate limiter rejected the request."""


class ProtocolError(ShardingSphereError):
    """Wire-protocol framing or handshake failure."""


class ServerBusyError(ExecutionError):
    """The proxy's admission queue is full (backpressure, not failure).

    Deliberately retryable load-leveling: the server sheds the request
    with this response instead of growing its queue or spawning threads;
    clients back off and retry.
    """
