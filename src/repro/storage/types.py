"""Column type system for the embedded storage engine.

Each SQL type name maps to a :class:`ColumnType` that validates and coerces
Python values on INSERT/UPDATE. The mapping is deliberately permissive in
the same places real MySQL is (ints accepted into FLOAT columns, numeric
strings into VARCHAR), and strict where constraint checks matter (length
limits, NOT NULL handled at the schema layer).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any

from ..exceptions import TypeCheckError


@dataclass(frozen=True)
class ColumnType:
    """A column type with an optional length (VARCHAR(n), CHAR(n))."""

    name: str
    length: int | None = None

    def coerce(self, value: Any) -> Any:
        """Validate and coerce ``value``; raise TypeCheckError on mismatch."""
        if value is None:
            return None
        handler = _COERCERS.get(self.name)
        if handler is None:
            raise TypeCheckError(f"unknown column type {self.name!r}")
        return handler(self, value)

    def __str__(self) -> str:
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name


def _coerce_int(col: ColumnType, value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        _check_int_range(col, value)
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        try:
            return _coerce_int(col, int(value))
        except ValueError:
            raise TypeCheckError(f"cannot store {value!r} in {col}") from None
    raise TypeCheckError(f"cannot store {type(value).__name__} in {col}")


_INT_RANGES = {
    "SMALLINT": (-(2**15), 2**15 - 1),
    "INT": (-(2**31), 2**31 - 1),
    "INTEGER": (-(2**31), 2**31 - 1),
    "BIGINT": (-(2**63), 2**63 - 1),
}


def _check_int_range(col: ColumnType, value: int) -> None:
    low, high = _INT_RANGES.get(col.name, (-(2**63), 2**63 - 1))
    if not low <= value <= high:
        raise TypeCheckError(f"value {value} out of range for {col}")


def _coerce_float(col: ColumnType, value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise TypeCheckError(f"cannot store {value!r} in {col}") from None
    raise TypeCheckError(f"cannot store {type(value).__name__} in {col}")


def _coerce_str(col: ColumnType, value: Any) -> str:
    if isinstance(value, (str, int, float)):
        text = str(value)
    else:
        raise TypeCheckError(f"cannot store {type(value).__name__} in {col}")
    if col.length is not None and len(text) > col.length:
        raise TypeCheckError(f"value of length {len(text)} exceeds {col}")
    return text


def _coerce_bool(col: ColumnType, value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    raise TypeCheckError(f"cannot store {value!r} in {col}")


def _coerce_timestamp(col: ColumnType, value: Any) -> Any:
    if isinstance(value, (datetime.datetime, datetime.date)):
        return value
    if isinstance(value, str):
        try:
            return datetime.datetime.fromisoformat(value)
        except ValueError:
            raise TypeCheckError(f"cannot parse {value!r} as {col}") from None
    if isinstance(value, (int, float)):
        return datetime.datetime.fromtimestamp(value, tz=datetime.timezone.utc)
    raise TypeCheckError(f"cannot store {type(value).__name__} in {col}")


_COERCERS = {
    "INT": _coerce_int,
    "INTEGER": _coerce_int,
    "BIGINT": _coerce_int,
    "SMALLINT": _coerce_int,
    "FLOAT": _coerce_float,
    "DOUBLE": _coerce_float,
    "REAL": _coerce_float,
    "DECIMAL": _coerce_float,
    "NUMERIC": _coerce_float,
    "VARCHAR": _coerce_str,
    "CHAR": _coerce_str,
    "TEXT": _coerce_str,
    "BLOB": _coerce_str,
    "BOOLEAN": _coerce_bool,
    "BOOL": _coerce_bool,
    "DATE": _coerce_timestamp,
    "TIME": _coerce_timestamp,
    "TIMESTAMP": _coerce_timestamp,
    "DATETIME": _coerce_timestamp,
}

SUPPORTED_TYPE_NAMES = frozenset(_COERCERS)


def make_type(name: str, length: int | None = None) -> ColumnType:
    """Build a ColumnType from a SQL type name, validating the name."""
    upper = name.upper()
    if upper not in _COERCERS:
        raise TypeCheckError(f"unsupported column type {name!r}")
    return ColumnType(upper, length)
