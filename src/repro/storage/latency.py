"""Simulated I/O latency model for the embedded storage engine.

The paper's experiments run against real MySQL/PostgreSQL servers whose
per-operation cost grows with table size (B-tree height ~ log n) and whose
disk/network I/O dominates middleware CPU. Our engine executes in-process,
so without a latency model every middleware effect the paper measures
(smaller shards are faster; serial vs parallel fan-out; 2PC round trips)
would be drowned by Python overhead or vanish entirely.

:class:`LatencyModel` prices each storage operation:

- ``base`` — fixed per-statement cost (parse/plan/syscall floor),
- ``index_io * log2(table_rows)`` — B-tree descent cost for index lookups,
- ``row_cost * rows_touched`` — per-row read/write cost,
- ``write_io`` — per-DML dirty-page/WAL write cost, *paid while holding
  the written table's I/O lock* — the hot-table write bottleneck that
  sharding a big table into many small ones removes,
- ``commit_io`` — fsync-like cost on commit/prepare,
- ``buffer_pool_rows`` — working-set knee: a table larger than this no
  longer fits the buffer pool and its I/O costs are multiplied by
  ``disk_penalty`` (the Fig. 10 degradation at the largest data size).

All knobs are seconds. ``scale=0`` disables simulation (pure in-memory
speed, used by unit tests); benchmarks use the default profile so the
*shape* of the paper's results emerges from the same mechanics.

Costs are *computed* by the executor but *paid* (slept) by the connection
after it releases the database lock, so concurrent clients overlap their
simulated I/O the way they overlap real I/O.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace


def pay(seconds: float) -> None:
    """Sleep for the priced cost, releasing the GIL."""
    if seconds > 0:
        time.sleep(seconds)


@dataclass(frozen=True)
class LatencyModel:
    """Tunable cost model; see module docstring for the knobs."""

    base: float = 30e-6
    index_io: float = 4e-6
    row_cost: float = 0.6e-6
    write_io: float = 0.0
    commit_io: float = 80e-6
    buffer_pool_rows: int | None = None
    disk_penalty: float = 3.0
    scale: float = 1.0

    @classmethod
    def off(cls) -> "LatencyModel":
        """No simulated latency (unit tests)."""
        return cls(scale=0.0)

    def scaled(self, factor: float) -> "LatencyModel":
        return replace(self, scale=self.scale * factor)

    def _spill_factor(self, table_rows: int) -> float:
        if self.buffer_pool_rows is not None and table_rows > self.buffer_pool_rows:
            return self.disk_penalty
        return 1.0

    def statement_cost(self, table_rows: int, rows_touched: int, uses_index: bool) -> float:
        """Price one executed statement (seconds)."""
        if self.scale == 0.0:
            return 0.0
        cost = self.base
        io = self.index_io * math.log2(max(table_rows, 2)) if uses_index \
            else self.row_cost * table_rows  # full scan reads every row
        io += self.row_cost * rows_touched
        cost += io * self._spill_factor(table_rows)
        return cost * self.scale

    def write_cost(self, table_rows: int = 0) -> float:
        """Price the per-DML dirty-page/WAL write (seconds)."""
        return self.write_io * self._spill_factor(table_rows) * self.scale

    def commit_cost(self) -> float:
        """Price the fsync-like cost of a commit or prepare (seconds)."""
        return self.commit_io * self.scale

    def charge_commit(self) -> None:
        """Convenience: price and immediately pay a commit."""
        pay(self.commit_cost())
