"""DB-API-flavored connections and cursors for a data source.

This is the JDBC stand-in: the sharding executor, the adaptors and the
benchmarks all talk to data sources through :class:`Connection` /
:class:`Cursor`. Cursors stream rows from the engine lazily, which is what
lets the result merger choose stream merging over memory merging.

Isolation note: like the paper's setup, transactional isolation is provided
by the underlying data source. Our engine implements statement-atomic
writes with undo-based rollback (roughly READ COMMITTED without MVCC);
that is sufficient for every behaviour the paper measures.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..exceptions import (
    ConnectionClosedError,
    ConnectionDropError,
    DataSourceUnavailableError,
    TransactionError,
)
from ..sql import ast, parse
from .executor import QueryResult
from .latency import pay
from .plans import execute_planned, execute_planned_many
from .transaction import Transaction, commit_prepared, rollback_prepared

_TCL_STATEMENTS = (ast.BeginStatement, ast.CommitStatement, ast.RollbackStatement)

if TYPE_CHECKING:
    from .engine import DataSource

_connection_ids = itertools.count(1)


class Connection:
    """A session against one data source.

    Starts in autocommit mode (each DML statement commits immediately),
    like a fresh JDBC/MySQL connection. ``begin()`` or executing ``BEGIN``
    opens an explicit transaction ended by ``commit()``/``rollback()``.
    """

    #: trace context handed down by the execution engine for the duration
    #: of one statement: latency-model sleeps and lock waits in ``_run``
    #: are attributed to this span (class default None = not traced)
    trace_span = None

    def __init__(self, data_source: "DataSource"):
        self.data_source = data_source
        self.database = data_source.database
        self.id = next(_connection_ids)
        self.autocommit = True
        self._transaction: Transaction | None = None
        self._closed = False
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            if self._transaction is not None and self._transaction.status.value == "active":
                self._transaction.rollback()
            self._transaction = None
            self._closed = True
        self.data_source.on_connection_closed(self)

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")

    # -- transaction control ---------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None and self._transaction.status.value == "active"

    def current_transaction(self) -> Transaction | None:
        """The open transaction, if any (Seata-AT inspects its undo log)."""
        return self._transaction if self.in_transaction else None

    def begin(self) -> None:
        self._check_open()
        with self._lock:
            if self.in_transaction:
                raise TransactionError("transaction already in progress")
            self._transaction = Transaction(self.database)
            self.autocommit = False

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction is not None:
                self._transaction.commit()
                self._transaction = None
            self.autocommit = True

    def rollback(self) -> None:
        self._check_open()
        with self._lock:
            if self._transaction is not None:
                self._transaction.rollback()
                self._transaction = None
            self.autocommit = True

    # -- XA verbs ---------------------------------------------------------------

    def xa_prepare(self, xid: str) -> None:
        """2PC phase 1: park the open transaction as prepared under xid."""
        self._check_open()
        with self._lock:
            if self._transaction is None:
                # Read-only branch: nothing to prepare, vacuously OK.
                return
            self._transaction.prepare(xid)
            self._transaction = None
            self.autocommit = True

    def xa_commit(self, xid: str) -> None:
        commit_prepared(self.database, xid)

    def xa_rollback(self, xid: str) -> None:
        rollback_prepared(self.database, xid)

    # -- statement execution ------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str | ast.Statement, params: Sequence[Any] = ()) -> "Cursor":
        """Convenience: open a cursor and execute on it."""
        cursor = self.cursor()
        cursor.execute(sql, params)
        return cursor

    def _run(self, stmt: ast.Statement, params: Sequence[Any],
             defer_pay: bool = False) -> QueryResult:
        self._check_open()
        if isinstance(stmt, ast.BeginStatement):
            self.begin()
            return QueryResult(rowcount=0)
        if isinstance(stmt, ast.CommitStatement):
            self.commit()
            return QueryResult(rowcount=0)
        if isinstance(stmt, ast.RollbackStatement):
            self.rollback()
            return QueryResult(rowcount=0)

        self._admit(stmt)
        try:
            self.database.maybe_fail("statement")
        except ConnectionDropError:
            # The "server" dropped us: this session is dead. close() rolls
            # back any open transaction; the pool discards closed conns.
            self.close()
            raise
        span = self.trace_span
        if stmt.category in ("DML", "DDL"):
            with self._lock:
                implicit = False
                if self._transaction is None:
                    self._transaction = Transaction(self.database)
                    implicit = True
                txn = self._transaction
                try:
                    lock_t0 = time.perf_counter() if span is not None else 0.0
                    with self.database.write_lock():
                        if span is not None:
                            span.record_lock_wait(time.perf_counter() - lock_t0)
                        result, plan_status = execute_planned(self.database, stmt, params, txn)
                        # workload analytics read this off cursor._result
                        result.plan = plan_status
                        if span is not None:
                            span.attributes["storage_plan"] = plan_status
                except Exception:
                    if implicit:
                        txn.rollback()
                        self._transaction = None
                    raise
                if implicit:
                    txn.commit()
                    self._transaction = None
                    if span is not None:
                        # autocommit fsync happens inside this statement
                        span.record_simulated(self.database.latency.commit_cost())
            if not defer_pay:
                self._pay(result, span)
            return result

        result, plan_status = execute_planned(self.database, stmt, params, self._transaction)
        result.plan = plan_status
        if span is not None:
            span.attributes["storage_plan"] = plan_status
        if not defer_pay:
            self._pay(result, span)
        return result

    def _admit(self, stmt: ast.Statement) -> None:
        """Replica-group role checks + the storage statement counter.

        On a read replica, first lazily apply every replication-log record
        whose lag has elapsed, so this statement sees exactly the
        snapshot its staleness bound allows. Writes are rejected on
        replicas and on fenced (failed-over) primaries.
        """
        source = self.data_source
        replica = source.replica
        if replica is not None:
            replica.apply_due()
        if stmt.category in ("DML", "DDL"):
            if source.fenced:
                raise DataSourceUnavailableError(
                    f"data source {source.name!r} is fenced (failed-over primary)"
                )
            if replica is not None:
                raise DataSourceUnavailableError(
                    f"data source {source.name!r} is a read replica"
                )
        self.database.statements_executed += 1

    def _pay(self, result: QueryResult, span: Any) -> None:
        """Pay one statement's simulated I/O cost (sleep)."""
        if result.cost <= 0:
            return
        pay_t0 = time.perf_counter() if span is not None else 0.0
        if result.written_table is not None:
            # Write I/O serializes per table (page/WAL contention):
            # the hot-table bottleneck the paper's sharding removes.
            # Lock order: table io_lock, then a server I/O channel.
            with result.written_table.io_lock:
                with self.data_source.io_semaphore:
                    pay(result.cost)
        else:
            with self.data_source.io_semaphore:
                pay(result.cost)
        if span is not None:
            span.record_simulated(result.cost)
            span.record_lock_wait(time.perf_counter() - pay_t0 - result.cost)

    # -- statement pipelining ---------------------------------------------------

    def execute_pipeline(
        self, statements: Sequence[tuple[str | ast.Statement, Sequence[Any]]]
    ) -> list[QueryResult]:
        """Execute a batch of statements in order, one storage round trip.

        Per-statement semantics (3VL, errors, rowcounts, transaction
        undo) are identical to running the same statements serially; what
        changes is the simulated-I/O payment: the write-I/O slice of each
        statement's cost is coalesced to **one charge per distinct written
        table** in the batch (the group-commit / write-combining analog of
        a real engine flushing one dirty page per table), paid under that
        table's ``io_lock`` so hot-table serialization is preserved.

        Pending write I/O is flushed before any COMMIT/ROLLBACK in the
        batch so the write-before-fsync ordering holds. On a mid-batch
        error, costs accrued so far are paid and the original exception
        propagates — earlier statements' effects stand, exactly as in
        serial execution (an enclosing transaction's undo still covers
        them).
        """
        self._check_open()
        results: list[QueryResult] = []
        pending: list[QueryResult] = []
        try:
            for sql, params in statements:
                if isinstance(sql, str):
                    stmt = parse(sql)
                    stmt.storage_plan_key = sql
                else:
                    stmt = sql
                if isinstance(stmt, _TCL_STATEMENTS) and pending:
                    self._flush_pipeline_costs(pending)
                    pending = []
                result = self._run(stmt, params, defer_pay=True)
                results.append(result)
                pending.append(result)
        finally:
            self._flush_pipeline_costs(pending)
        return results

    def _flush_pipeline_costs(self, pending: list[QueryResult]) -> None:
        """Pay deferred costs: reads summed, writes coalesced per table."""
        span = self.trace_span
        read_cost = 0.0
        per_table: dict[int, list] = {}
        for result in pending:
            if result.cost <= 0:
                continue
            if result.written_table is None:
                read_cost += result.cost
                continue
            entry = per_table.get(id(result.written_table))
            if entry is None:
                per_table[id(result.written_table)] = [
                    result.written_table, result.cost - result.write_cost,
                    result.write_cost,
                ]
            else:
                entry[1] += result.cost - result.write_cost
                entry[2] = max(entry[2], result.write_cost)
        total = 0.0
        pay_t0 = time.perf_counter() if span is not None else 0.0
        for table, non_io, io in per_table.values():
            amount = non_io + io
            if amount <= 0:
                continue
            with table.io_lock:
                with self.data_source.io_semaphore:
                    pay(amount)
            total += amount
        if read_cost > 0:
            with self.data_source.io_semaphore:
                pay(read_cost)
            total += read_cost
        if span is not None and total > 0:
            span.record_simulated(total)
            span.record_lock_wait(time.perf_counter() - pay_t0 - total)

    def _run_many(self, stmt: ast.Statement,
                  seq_of_params: Sequence[Sequence[Any]]) -> QueryResult:
        """Batched executemany: one lock acquisition, one (implicit)
        transaction and one coalesced write-I/O charge for all bindings.

        In autocommit mode the batch commits once at the end, making it
        atomic — a mid-batch error rolls back every binding. Inside an
        explicit transaction semantics are unchanged (earlier bindings'
        effects stand until the transaction resolves).
        """
        self._check_open()
        seq = list(seq_of_params)
        if not seq:
            return QueryResult(rowcount=0)
        if stmt.category != "DML":
            # DDL/TCL/queries: keep per-binding execution (and its
            # per-binding payment); executemany on these is a rarity.
            total = 0
            counted = False
            result: QueryResult | None = None
            for params in seq:
                result = self._run(stmt, params)
                if result.rowcount >= 0:
                    counted = True
                    total += result.rowcount
            return QueryResult(
                columns=result.columns, rows=result.rows,
                rowcount=total if counted else -1, cost=result.cost,
                written_table=result.written_table,
            )
        self._admit(stmt)
        try:
            self.database.maybe_fail("statement")
        except ConnectionDropError:
            self.close()
            raise
        span = self.trace_span
        with self._lock:
            implicit = False
            if self._transaction is None:
                self._transaction = Transaction(self.database)
                implicit = True
            txn = self._transaction
            try:
                lock_t0 = time.perf_counter() if span is not None else 0.0
                with self.database.write_lock():
                    if span is not None:
                        span.record_lock_wait(time.perf_counter() - lock_t0)
                    result, plan_status = execute_planned_many(
                        self.database, stmt, seq, txn)
                    result.plan = plan_status
                    if span is not None:
                        span.attributes["storage_plan"] = plan_status
            except Exception:
                if implicit:
                    txn.rollback()
                    self._transaction = None
                raise
            if implicit:
                txn.commit()
                self._transaction = None
                if span is not None:
                    span.record_simulated(self.database.latency.commit_cost())
        self._pay(result, span)
        return result


class Cursor:
    """Streaming result cursor (DB-API style)."""

    arraysize = 100

    def __init__(self, connection: Connection):
        self.connection = connection
        self._result: QueryResult | None = None
        self._rows: Iterator[tuple[Any, ...]] = iter(())
        self._closed = False

    # -- metadata --------------------------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def columns(self) -> list[str]:
        return list(self._result.columns) if self._result else []

    @property
    def rowcount(self) -> int:
        return self._result.rowcount if self._result else -1

    # -- execution ----------------------------------------------------------------

    def execute(self, sql: str | ast.Statement, params: Sequence[Any] = ()) -> "Cursor":
        if self._closed:
            raise ConnectionClosedError("cursor is closed")
        if isinstance(sql, str):
            stmt = parse(sql)
            # Key the database's compiled-plan cache by SQL text so every
            # cursor executing this statement shares one storage plan.
            stmt.storage_plan_key = sql
        else:
            stmt = sql
        self._result = self.connection._run(stmt, params)
        self._rows = iter(self._result.rows)
        return self

    def executemany(self, sql: str | ast.Statement, seq_of_params: Sequence[Sequence[Any]]) -> "Cursor":
        """Execute once per parameter row, parsing/planning only once.

        DML bindings run as one batched plan invocation: a single lock
        acquisition, one (implicit) transaction and one coalesced
        write-I/O charge (see :meth:`Connection._run_many`). Reports the
        cumulative rowcount across all bindings (DB-API semantics).
        """
        if self._closed:
            raise ConnectionClosedError("cursor is closed")
        if isinstance(sql, str):
            stmt = parse(sql)
            stmt.storage_plan_key = sql
        else:
            stmt = sql
        self._result = self.connection._run_many(stmt, seq_of_params)
        self._rows = iter(self._result.rows)
        return self

    # -- fetching ---------------------------------------------------------------------

    def fetchone(self) -> tuple[Any, ...] | None:
        return next(self._rows, None)

    def fetchmany(self, size: int | None = None) -> list[tuple[Any, ...]]:
        limit = size if size is not None else self.arraysize
        return list(itertools.islice(self._rows, limit))

    def fetchall(self) -> list[tuple[Any, ...]]:
        return list(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return self._rows

    def close(self) -> None:
        self._rows = iter(())
        self._closed = True

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
