"""Heap table with primary-key and secondary indexes."""

from __future__ import annotations

import threading
from typing import Any, Iterator

from ..exceptions import DuplicateKeyError, StorageError
from .index import HashIndex, SortedIndex
from .schema import TableSchema


class Table:
    """One physical table: row heap + indexes + auto-increment counters.

    Rows live in a dict keyed by an internal row id, so deletes are O(1)
    and row ids are stable for the undo log. Indexes are maintained on
    every mutation. All methods assume the caller holds the database's
    table lock (see :class:`repro.storage.database.Database`).
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        #: serializes the simulated write I/O of this table: concurrent
        #: writers to one hot table queue up here, which is the physical
        #: reason sharding a big table into many small ones raises write
        #: throughput (Table IV of the paper). Readers never take it.
        self.io_lock = threading.Lock()
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 0
        self._auto_value = 0
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        if schema.primary_key:
            self._hash_indexes["__pk__"] = HashIndex("__pk__", list(schema.primary_key), unique=True)
            if len(schema.primary_key) == 1:
                self._sorted_indexes[schema.primary_key[0].lower()] = SortedIndex(
                    "__pk_sorted__", schema.primary_key[0]
                )
        for col in schema.columns:
            if col.unique and [col.name] != schema.primary_key:
                self._hash_indexes[f"__uniq_{col.name}__"] = HashIndex(
                    f"__uniq_{col.name}__", [col.name], unique=True
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate (row_id, row) pairs; snapshot to tolerate mutation."""
        return iter(list(self._rows.items()))

    def get(self, row_id: int) -> dict[str, Any]:
        return self._rows[row_id]

    def indexed_columns(self) -> set[str]:
        """Columns with an equality index available (lower-cased)."""
        cols: set[str] = set()
        for index in self._hash_indexes.values():
            if len(index.columns) == 1:
                cols.add(index.columns[0].lower())
        return cols

    def range_indexed_columns(self) -> set[str]:
        return set(self._sorted_indexes)

    def row_ids(self) -> list[int]:
        """Snapshot of all live row ids (full-scan access path)."""
        return list(self._rows)

    # ------------------------------------------------------------------
    # Index handles (used by compiled storage plans)
    #
    # These expose the same index objects the lookup helpers above use,
    # so a plan can bind a lookup closure once instead of re-running
    # index selection per statement. TRUNCATE clears index contents in
    # place, so captured handles stay valid across it; CREATE INDEX and
    # DROP/CREATE TABLE change the candidate set, which the schema
    # version bump (see Database.bump_schema_version) turns into a plan
    # recompile.
    # ------------------------------------------------------------------

    def equality_index(self, column: str) -> HashIndex | None:
        """First single-column hash index on `column` (find_equal's pick)."""
        lower = column.lower()
        for index in self._hash_indexes.values():
            if len(index.columns) == 1 and index.columns[0].lower() == lower:
                return index
        return None

    def sorted_index(self, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(column.lower())

    def covering_index(self, equality_columns: set[str]) -> HashIndex | None:
        """Most specific hash index fully covered by the given lower-cased
        equality columns — the compile-time twin of find_by_equalities
        (same strict-> comparison, same first-wins tie break)."""
        best: tuple[int, HashIndex] | None = None
        for index in self._hash_indexes.values():
            columns = [c.lower() for c in index.columns]
            if all(c in equality_columns for c in columns):
                if best is None or len(columns) > best[0]:
                    best = (len(columns), index)
        return best[1] if best else None

    # ------------------------------------------------------------------
    # Index lookups (used by the query executor)
    # ------------------------------------------------------------------

    def find_equal(self, column: str, value: Any) -> list[int] | None:
        """Row ids where column == value via an index, or None if no index."""
        lower = column.lower()
        for index in self._hash_indexes.values():
            if len(index.columns) == 1 and index.columns[0].lower() == lower:
                if len(index.columns) == 1:
                    return sorted(index.lookup(value))
        sorted_index = self._sorted_indexes.get(lower)
        if sorted_index is not None:
            return list(sorted_index.range(value, value))
        return None

    def find_by_equalities(self, equalities: dict[str, Any]) -> list[int] | None:
        """Row ids via the most specific hash index fully covered by the
        given equality predicates (lower-cased column -> value), e.g. a
        composite primary key (w_id, d_id, o_id). None if no index fits.
        """
        best: tuple[int, list[int]] | None = None
        for index in self._hash_indexes.values():
            columns = [c.lower() for c in index.columns]
            if all(c in equalities for c in columns):
                ids = sorted(index.lookup_values(equalities))
                if best is None or len(columns) > best[0]:
                    best = (len(columns), ids)
        return best[1] if best else None

    def find_range(self, column: str, low: Any, high: Any,
                   include_low: bool = True, include_high: bool = True) -> list[int] | None:
        sorted_index = self._sorted_indexes.get(column.lower())
        if sorted_index is None:
            return None
        return list(sorted_index.range(low, high, include_low, include_high))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, values: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Insert a row; returns (row_id, normalized_row)."""
        row = self.schema.normalize_row(values)
        for col in self.schema.columns:
            if col.auto_increment and row.get(col.name) is None:
                self._auto_value += 1
                row[col.name] = self._auto_value
            elif col.auto_increment and isinstance(row.get(col.name), int):
                self._auto_value = max(self._auto_value, row[col.name])
        row_id = self._next_row_id
        self._index_insert(row_id, row)
        self._rows[row_id] = row
        self._next_row_id += 1
        return row_id, row

    def delete(self, row_id: int) -> dict[str, Any]:
        """Delete by row id; returns the removed row (for the undo log)."""
        try:
            row = self._rows.pop(row_id)
        except KeyError:
            raise StorageError(f"row {row_id} not found in table {self.name}") from None
        self._index_remove(row_id, row)
        return row

    def update(self, row_id: int, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply column changes; returns the previous row (for undo)."""
        old_row = self._rows[row_id]
        new_row = dict(old_row)
        for column, value in changes.items():
            col = self.schema.column(column)
            new_row[col.name] = col.type.coerce(value)
        self._index_remove(row_id, old_row)
        try:
            self._index_insert(row_id, new_row)
        except DuplicateKeyError:
            self._index_insert(row_id, old_row)  # restore
            raise
        self._rows[row_id] = new_row
        return old_row

    def truncate(self) -> int:
        """Remove all rows; returns how many were removed."""
        count = len(self._rows)
        self._rows.clear()
        for index in self._hash_indexes.values():
            index._map.clear()
        for index in self._sorted_indexes.values():
            index._keys.clear()
            index._row_ids.clear()
        return count

    # -- undo-log cooperation (raw operations bypass constraints) --------

    def raw_reinsert(self, row_id: int, row: dict[str, Any]) -> None:
        """Re-insert a previously deleted row under its old id (rollback)."""
        self._index_insert(row_id, row)
        self._rows[row_id] = row
        self._next_row_id = max(self._next_row_id, row_id + 1)

    def raw_remove(self, row_id: int) -> None:
        """Remove a row inserted by a rolled-back transaction."""
        row = self._rows.pop(row_id, None)
        if row is not None:
            self._index_remove(row_id, row)

    def raw_restore(self, row_id: int, row: dict[str, Any]) -> None:
        """Restore a row image overwritten by a rolled-back update."""
        current = self._rows.get(row_id)
        if current is not None:
            self._index_remove(row_id, current)
        self._index_insert(row_id, row)
        self._rows[row_id] = row

    def raw_put(self, row_id: int, row: dict[str, Any]) -> None:
        """Install a replicated row image under its primary-side row id.

        Replace-or-insert like :meth:`raw_restore`, but also advances
        ``_next_row_id`` and the auto-increment counter so a replica
        promoted to primary continues both sequences without collisions.
        """
        current = self._rows.get(row_id)
        if current is not None:
            self._index_remove(row_id, current)
        try:
            self._index_insert(row_id, row)
        except DuplicateKeyError:
            if current is not None:
                self._index_insert(row_id, current)  # restore
            raise
        self._rows[row_id] = row
        self._next_row_id = max(self._next_row_id, row_id + 1)
        for col in self.schema.columns:
            if col.auto_increment and isinstance(row.get(col.name), int):
                self._auto_value = max(self._auto_value, row[col.name])

    def conflicting_row_ids(self, row: dict[str, Any]) -> set[int]:
        """Row ids holding any unique key the given row image claims
        (replication uses this to evict stale occupants on re-apply)."""
        ids: set[int] = set()
        for index in self._hash_indexes.values():
            if not index.unique:
                continue
            try:
                key = index.key_of(row)
            except KeyError:
                continue
            ids.update(index._map.get(key, ()))
        return ids

    # ------------------------------------------------------------------
    # Secondary index DDL
    # ------------------------------------------------------------------

    def create_index(self, name: str, columns: list[str], unique: bool = False) -> None:
        for col in columns:
            self.schema.column(col)  # validates existence
        if name in self._hash_indexes:
            raise StorageError(f"index {name!r} already exists on {self.name}")
        index = HashIndex(name, columns, unique=unique)
        for row_id, row in self._rows.items():
            index.insert(row_id, row)
        self._hash_indexes[name] = index
        if len(columns) == 1 and columns[0].lower() not in self._sorted_indexes:
            sorted_index = SortedIndex(name + "_sorted", columns[0], unique=False)
            for row_id, row in self._rows.items():
                sorted_index.insert(row_id, row)
            self._sorted_indexes[columns[0].lower()] = sorted_index

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _index_insert(self, row_id: int, row: dict[str, Any]) -> None:
        inserted: list[HashIndex] = []
        try:
            for index in self._hash_indexes.values():
                index.insert(row_id, row)
                inserted.append(index)
        except DuplicateKeyError:
            for index in inserted:
                index.remove(row_id, row)
            raise
        for sorted_index in self._sorted_indexes.values():
            sorted_index.insert(row_id, row)

    def _index_remove(self, row_id: int, row: dict[str, Any]) -> None:
        for index in self._hash_indexes.values():
            index.remove(row_id, row)
        for sorted_index in self._sorted_indexes.values():
            sorted_index.remove(row_id, row)
