"""Query executor: runs statement ASTs against a database's tables.

Supports the SQL subset the sharding pipeline emits: single-table and
joined SELECT with WHERE / GROUP BY / HAVING / ORDER BY / LIMIT, aggregate
functions, multi-row INSERT, UPDATE, DELETE, DDL and TRUNCATE. Point and
range predicates use hash/sorted indexes when available; other predicates
fall back to scans. Iteration-style SELECTs stream rows lazily so client
cursors behave like real database cursors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from ..exceptions import ExecutionError, StorageError, UnsupportedSQLError
from ..sql import ast
from ..sql.formatter import format_expression
from .expression import UNKNOWN, OrderToken, evaluate, is_truthy, sort_key
from .table import Table

if TYPE_CHECKING:
    from .database import Database
    from .transaction import Transaction


@dataclass
class QueryResult:
    """Execution outcome: column metadata + streaming rows or a rowcount.

    ``cost`` is the priced simulated-I/O latency in seconds; the connection
    pays it (sleeps) after releasing the database lock.
    """

    columns: list[str] = field(default_factory=list)
    rows: Iterator[tuple[Any, ...]] = iter(())
    rowcount: int = -1
    cost: float = 0.0
    #: the table whose write I/O this statement must serialize on (DML only)
    written_table: "Table | None" = None
    #: the write-I/O slice of ``cost`` — the portion a statement pipeline may
    #: coalesce into one payment per written table (group-commit analog)
    write_cost: float = 0.0

    def fetch_all(self) -> list[tuple[Any, ...]]:
        return list(self.rows)


def execute_statement(
    database: "Database",
    stmt: ast.Statement,
    params: Sequence[Any] = (),
    transaction: "Transaction | None" = None,
) -> QueryResult:
    """Execute one statement; DML requires a transaction for undo logging."""
    if isinstance(stmt, ast.SelectStatement):
        return _execute_select(database, stmt, params)
    if isinstance(stmt, ast.InsertStatement):
        return _execute_insert(database, stmt, params, transaction)
    if isinstance(stmt, ast.UpdateStatement):
        return _execute_update(database, stmt, params, transaction)
    if isinstance(stmt, ast.DeleteStatement):
        return _execute_delete(database, stmt, params, transaction)
    if isinstance(stmt, ast.CreateTableStatement):
        database.create_table_from_ast(stmt)
        return QueryResult(rowcount=0)
    if isinstance(stmt, ast.DropTableStatement):
        database.drop_table(stmt.table.name, if_exists=stmt.if_exists)
        return QueryResult(rowcount=0)
    if isinstance(stmt, ast.CreateIndexStatement):
        table = database.table(stmt.table.name)
        table.create_index(stmt.index_name, stmt.columns, unique=stmt.unique)
        database.bump_schema_version(stmt.table.name)
        if database.replication is not None:
            database.replication.publish([
                ("create_index", table.name, stmt.index_name,
                 tuple(stmt.columns), stmt.unique),
            ])
        return QueryResult(rowcount=0)
    if isinstance(stmt, ast.TruncateStatement):
        table = database.table(stmt.table.name)
        count = table.truncate()
        database.bump_schema_version(stmt.table.name)
        if database.replication is not None:
            database.replication.publish([("truncate", table.name)])
        return QueryResult(rowcount=count)
    raise UnsupportedSQLError(f"storage engine cannot execute {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


def _execute_select(database: "Database", stmt: ast.SelectStatement, params: Sequence[Any]) -> QueryResult:
    if stmt.from_table is None:
        # SELECT of pure expressions, e.g. SELECT 1.
        row = tuple(evaluate(item.expression, {}, params) for item in stmt.select_items)
        columns = [item.output_name for item in stmt.select_items]
        return QueryResult(columns=columns, rows=iter([row]))

    source, examined, used_index, base_rows = _build_row_source(database, stmt, params)
    cost = database.latency.statement_cost(base_rows, examined, used_index)

    aggregates = stmt.aggregates()
    if stmt.group_by or aggregates:
        rows = _aggregate_rows(stmt, source, params)
    else:
        rows = source
        if stmt.having is not None:
            having = stmt.having
            rows = (r for r in rows if is_truthy(evaluate(having, r, params)))

    if stmt.order_by:
        # Single composite-key sort (one pass) instead of one stable sort
        # per key in reverse; OrderToken folds per-key DESC into the key.
        materialized = list(rows)
        specs = [(item.expression, item.desc) for item in stmt.order_by]
        if len(specs) == 1:
            expr, desc = specs[0]
            materialized.sort(
                key=lambda r: sort_key(_order_value(expr, r, stmt, params)),
                reverse=desc,
            )
        elif not any(desc for _, desc in specs):
            materialized.sort(
                key=lambda r: tuple(
                    sort_key(_order_value(e, r, stmt, params)) for e, _ in specs
                )
            )
        else:
            materialized.sort(
                key=lambda r: tuple(
                    OrderToken(_order_value(e, r, stmt, params), d) for e, d in specs
                )
            )
        rows = iter(materialized)

    if stmt.distinct:
        rows = _distinct(stmt, rows, params)

    if stmt.limit is not None:
        rows = _apply_limit(stmt.limit, rows, params)

    columns, projector = _build_projection(stmt, database, params)
    return QueryResult(columns=columns, rows=(projector(r) for r in rows), cost=cost)


def _order_value(expr: ast.Expression, row: dict[str, Any], stmt: ast.SelectStatement, params: Sequence[Any]) -> Any:
    """Resolve an ORDER BY expression, honoring select-list aliases."""
    if isinstance(expr, ast.ColumnRef) and expr.table is None:
        for item in stmt.select_items:
            if item.alias and item.alias.lower() == expr.name.lower():
                value = evaluate(item.expression, row, params)
                return None if value is UNKNOWN else value
    value = evaluate(expr, row, params)
    return None if value is UNKNOWN else value


def _distinct(stmt: ast.SelectStatement, rows: Iterator[dict[str, Any]], params: Sequence[Any]) -> Iterator[dict[str, Any]]:
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(
            _freeze(evaluate(item.expression, row, params)) if not isinstance(item.expression, ast.Star)
            else _freeze(tuple(sorted(row.items())))
            for item in stmt.select_items
        )
        if key not in seen:
            seen.add(key)
            yield row


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _apply_limit(limit: ast.Limit, rows: Iterator[dict[str, Any]], params: Sequence[Any]) -> Iterator[dict[str, Any]]:
    offset = int(evaluate(limit.offset, {}, params)) if limit.offset is not None else 0
    count = int(evaluate(limit.count, {}, params)) if limit.count is not None else None
    emitted = 0
    for i, row in enumerate(rows):
        if i < offset:
            continue
        if count is not None and emitted >= count:
            return
        emitted += 1
        yield row


# -- FROM / JOIN row source --------------------------------------------------


def _build_row_source(
    database: "Database", stmt: ast.SelectStatement, params: Sequence[Any]
) -> tuple[Iterator[dict[str, Any]], int, bool, int]:
    """Produce the filtered row stream plus latency accounting numbers.

    Returns (rows, rows_examined, used_index, base_table_rows).
    """
    base_ref = stmt.from_table
    base_table = database.table(base_ref.name)

    if not stmt.joins:
        row_ids, used_index = _select_row_ids(base_table, base_ref.exposed_name, stmt.where, params)
        examined = len(row_ids) if used_index else base_table.row_count
        where = stmt.where

        def generate() -> Iterator[dict[str, Any]]:
            for row_id in row_ids:
                try:
                    raw = base_table.get(row_id)
                except KeyError:
                    continue
                row = _namespaced(raw, base_ref.exposed_name)
                if where is None or is_truthy(evaluate(where, row, params)):
                    yield row

        return generate(), examined, used_index, base_table.row_count

    # Joined query: start from the base table (index-filtered when possible),
    # then fold each join in sequence using hash joins for equality conditions.
    row_ids, used_index = _select_row_ids(base_table, base_ref.exposed_name, stmt.where, params)
    rows: Iterator[dict[str, Any]] = (
        _namespaced(base_table.get(rid), base_ref.exposed_name) for rid in row_ids
    )
    examined = len(row_ids) if used_index else base_table.row_count
    for join in stmt.joins:
        rows = _apply_join(database, rows, join, params)
        examined += database.table(join.table.name).row_count
    where = stmt.where
    if where is not None:
        rows = (r for r in rows if is_truthy(evaluate(where, r, params)))
    return rows, examined, used_index, base_table.row_count


def _namespaced(raw: dict[str, Any], exposed: str) -> dict[str, Any]:
    row = dict(raw)
    for key, value in raw.items():
        row[f"{exposed}.{key}"] = value
    return row


def _merge_ns(left: dict[str, Any], raw: dict[str, Any], exposed: str) -> dict[str, Any]:
    row = dict(left)
    for key, value in raw.items():
        row.setdefault(key, value)
        row[f"{exposed}.{key}"] = value
    return row


def _apply_join(
    database: "Database", rows: Iterator[dict[str, Any]], join: ast.Join, params: Sequence[Any]
) -> Iterator[dict[str, Any]]:
    if join.kind == "RIGHT":
        raise UnsupportedSQLError(
            "RIGHT JOIN is not supported; rewrite as a LEFT JOIN with the "
            "operands swapped"
        )
    right_table = database.table(join.table.name)
    right_name = join.table.exposed_name
    right_rows = [row for _, row in right_table.scan()]

    eq = _equi_join_columns(join.condition, right_name) if join.condition else None
    if eq is not None:
        left_expr, right_col = eq
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for raw in right_rows:
            buckets.setdefault(_freeze(raw.get(right_col)), []).append(raw)

        def hash_join() -> Iterator[dict[str, Any]]:
            for left in rows:
                try:
                    key = _freeze(evaluate(left_expr, left, params))
                except StorageError:
                    key = None
                matched = buckets.get(key, ()) if key is not None else ()
                emitted = False
                for raw in matched:
                    combined = _merge_ns(left, raw, right_name)
                    if join.condition is None or is_truthy(evaluate(join.condition, combined, params)):
                        emitted = True
                        yield combined
                if not emitted and join.kind == "LEFT":
                    yield _merge_ns(left, {c: None for c in right_table.schema.column_names}, right_name)

        return hash_join()

    def nested_loop() -> Iterator[dict[str, Any]]:
        for left in rows:
            emitted = False
            for raw in right_rows:
                combined = _merge_ns(left, raw, right_name)
                if join.condition is None or is_truthy(evaluate(join.condition, combined, params)):
                    emitted = True
                    yield combined
            if not emitted and join.kind == "LEFT":
                yield _merge_ns(left, {c: None for c in right_table.schema.column_names}, right_name)

    return nested_loop()


def _equi_join_columns(condition: ast.Expression, right_name: str) -> tuple[ast.Expression, str] | None:
    """If the join condition is `left_expr = right.col`, return the pair."""
    if not (isinstance(condition, ast.BinaryOp) and condition.op == "="):
        return None
    left, right = condition.left, condition.right
    for a, b in ((left, right), (right, left)):
        if isinstance(b, ast.ColumnRef) and b.table and b.table.lower() == right_name.lower():
            if isinstance(a, ast.ColumnRef) and a.table and a.table.lower() == right_name.lower():
                continue
            return a, b.name
    return None


# -- predicate-driven index selection ----------------------------------------


def _select_row_ids(
    table: Table, exposed_name: str, where: ast.Expression | None, params: Sequence[Any]
) -> tuple[list[int], bool]:
    """Choose row ids via an index when the WHERE allows it.

    Handles top-level conjunctions: `col = v`, `col IN (...)`,
    `col BETWEEN a AND b` and half-open comparisons on indexed columns,
    plus composite-key lookups when the conjunction pins every column of
    a multi-column hash index (e.g. TPC-C's (w_id, d_id, o_id) keys).
    Returns (row_ids, used_index).
    """
    if where is not None:
        predicates = list(_conjuncts(where))
        equalities: dict[str, Any] = {}
        for predicate in predicates:
            if isinstance(predicate, ast.BinaryOp) and predicate.op == "=":
                for col_expr, val_expr in (
                    (predicate.left, predicate.right),
                    (predicate.right, predicate.left),
                ):
                    column = _local_column(col_expr, table, exposed_name)
                    if column is None:
                        continue
                    ok, value = _const(val_expr, params)
                    if ok:
                        equalities[column.lower()] = value
                    break
        if len(equalities) >= 2:
            ids = table.find_by_equalities(equalities)
            if ids is not None:
                return ids, True
        for predicate in predicates:
            ids = _try_index(table, exposed_name, predicate, params)
            if ids is not None:
                return ids, True
    return [rid for rid, _ in table.scan()], False


def _conjuncts(expr: ast.Expression) -> Iterator[ast.Expression]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _local_column(expr: ast.Expression, table: Table, exposed_name: str) -> str | None:
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table.lower() != exposed_name.lower():
        return None
    if not table.schema.has_column(expr.name):
        return None
    return table.schema.column(expr.name).name


def _const(expr: ast.Expression, params: Sequence[Any]) -> tuple[bool, Any]:
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.Placeholder):
        try:
            return True, params[expr.index]
        except IndexError:
            return False, None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        ok, value = _const(expr.operand, params)
        if ok and isinstance(value, (int, float)):
            return True, -value
    return False, None


def _try_index(table: Table, exposed_name: str, predicate: ast.Expression, params: Sequence[Any]) -> list[int] | None:
    if isinstance(predicate, ast.BinaryOp) and predicate.op in ("=", "<", ">", "<=", ">="):
        column = _local_column(predicate.left, table, exposed_name)
        value_expr = predicate.right
        op = predicate.op
        if column is None:
            column = _local_column(predicate.right, table, exposed_name)
            value_expr = predicate.left
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        if column is None:
            return None
        ok, value = _const(value_expr, params)
        if not ok:
            return None
        if op == "=":
            return table.find_equal(column, value)
        bounds = {
            "<": (None, value, True, False),
            "<=": (None, value, True, True),
            ">": (value, None, False, True),
            ">=": (value, None, True, True),
        }[op]
        return table.find_range(column, *bounds)
    if isinstance(predicate, ast.InExpr) and not predicate.negated:
        column = _local_column(predicate.operand, table, exposed_name)
        if column is None or column.lower() not in table.indexed_columns():
            return None
        ids: list[int] = []
        for item in predicate.items:
            ok, value = _const(item, params)
            if not ok:
                return None
            found = table.find_equal(column, value)
            if found:
                ids.extend(found)
        return sorted(set(ids))
    if isinstance(predicate, ast.BetweenExpr) and not predicate.negated:
        column = _local_column(predicate.operand, table, exposed_name)
        if column is None:
            return None
        ok_low, low = _const(predicate.low, params)
        ok_high, high = _const(predicate.high, params)
        if not (ok_low and ok_high):
            return None
        return table.find_range(column, low, high)
    return None


# -- grouping and aggregation -------------------------------------------------


def _aggregate_rows(
    stmt: ast.SelectStatement, source: Iterator[dict[str, Any]], params: Sequence[Any]
) -> Iterator[dict[str, Any]]:
    aggregates = _collect_aggregates(stmt)
    group_exprs = stmt.group_by
    groups: dict[tuple, _GroupState] = {}
    order: list[tuple] = []
    for row in source:
        key = tuple(_freeze(evaluate(e, row, params)) for e in group_exprs) if group_exprs else ()
        state = groups.get(key)
        if state is None:
            state = _GroupState(row, [_AggState(call) for call in aggregates])
            groups[key] = state
            order.append(key)
        for agg in state.aggs:
            agg.accumulate(row, params)

    if not groups and not group_exprs:
        # Aggregates over an empty input still yield one row (COUNT -> 0).
        state = _GroupState({}, [_AggState(call) for call in aggregates])
        groups[()] = state
        order.append(())

    having = stmt.having
    for key in order:
        state = groups[key]
        out = dict(state.sample_row)
        for agg in state.aggs:
            out[format_expression(agg.call)] = agg.result()
        if having is None or is_truthy(evaluate(having, out, params)):
            yield out


def _collect_aggregates(stmt: ast.SelectStatement) -> list[ast.FunctionCall]:
    seen: dict[str, ast.FunctionCall] = {}
    scopes: list[ast.Expression] = [item.expression for item in stmt.select_items]
    if stmt.having is not None:
        scopes.append(stmt.having)
    for item in stmt.order_by:
        scopes.append(item.expression)
    for scope in scopes:
        for node in scope.walk():
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                seen.setdefault(format_expression(node), node)
    return list(seen.values())


class _GroupState:
    __slots__ = ("sample_row", "aggs")

    def __init__(self, sample_row: dict[str, Any], aggs: list["_AggState"]):
        self.sample_row = sample_row
        self.aggs = aggs


class _AggState:
    """Incremental state for one aggregate call."""

    __slots__ = ("call", "count", "total", "minimum", "maximum", "distinct_values")

    def __init__(self, call: ast.FunctionCall):
        self.call = call
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.distinct_values: set | None = set() if call.distinct else None

    def accumulate(self, row: dict[str, Any], params: Sequence[Any]) -> None:
        name = self.call.name.upper()
        if name == "COUNT" and self.call.args and isinstance(self.call.args[0], ast.Star):
            self.count += 1
            return
        value = evaluate(self.call.args[0], row, params) if self.call.args else None
        if value is None or value is UNKNOWN:
            return
        if self.distinct_values is not None:
            frozen = _freeze(value)
            if frozen in self.distinct_values:
                return
            self.distinct_values.add(frozen)
        self.count += 1
        if name in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        if name == "MIN":
            self.minimum = value if self.minimum is None else min(self.minimum, value, key=sort_key)
        if name == "MAX":
            self.maximum = value if self.maximum is None else max(self.maximum, value, key=sort_key)

    def result(self) -> Any:
        name = self.call.name.upper()
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total
        if name == "AVG":
            return None if self.count == 0 or self.total is None else self.total / self.count
        if name == "MIN":
            return self.minimum
        if name == "MAX":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {name}")


# -- projection ----------------------------------------------------------------


def _build_projection(
    stmt: ast.SelectStatement, database: "Database", params: Sequence[Any]
) -> tuple[list[str], Callable[[dict[str, Any]], tuple]]:
    """Column names + a function mapping a namespace row to output values."""
    columns: list[str] = []
    getters: list[Callable[[dict[str, Any]], Any]] = []
    for item in stmt.select_items:
        expr = item.expression
        if isinstance(expr, ast.Star):
            for ref in stmt.tables():
                if expr.table and ref.exposed_name.lower() != expr.table.lower():
                    continue
                schema = database.table(ref.name).schema
                exposed = ref.exposed_name
                for col_name in schema.column_names:
                    columns.append(col_name)
                    getters.append(_make_star_getter(exposed, col_name))
            continue
        columns.append(item.output_name)
        getters.append(_make_expr_getter(expr, params))
    return columns, lambda row: tuple(g(row) for g in getters)


def _make_star_getter(exposed: str, col_name: str) -> Callable[[dict[str, Any]], Any]:
    qualified = f"{exposed}.{col_name}"

    def getter(row: dict[str, Any]) -> Any:
        if qualified in row:
            return row[qualified]
        return row.get(col_name)

    return getter


def _make_expr_getter(expr: ast.Expression, params: Sequence[Any]) -> Callable[[dict[str, Any]], Any]:
    def getter(row: dict[str, Any]) -> Any:
        value = evaluate(expr, row, params)
        return None if value is UNKNOWN else value

    return getter


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


def _require_txn(transaction: "Transaction | None") -> "Transaction":
    if transaction is None:
        raise ExecutionError("DML requires an active transaction context")
    return transaction


def _execute_insert(
    database: "Database", stmt: ast.InsertStatement, params: Sequence[Any], transaction: "Transaction | None"
) -> QueryResult:
    txn = _require_txn(transaction)
    table = database.table(stmt.table.name)
    columns = stmt.columns or table.schema.column_names
    inserted = 0
    for row_exprs in stmt.values_rows:
        if len(row_exprs) != len(columns):
            raise ExecutionError(
                f"INSERT column/value count mismatch: {len(columns)} vs {len(row_exprs)}"
            )
        values = {col: evaluate(expr, {}, params) for col, expr in zip(columns, row_exprs)}
        row_id, _ = table.insert(values)
        txn.record_insert(table, row_id)
        inserted += 1
    cost = database.latency.statement_cost(table.row_count, inserted, uses_index=True)
    io = database.latency.write_cost(table.row_count)
    return QueryResult(rowcount=inserted, cost=cost + io, written_table=table, write_cost=io)


def _execute_update(
    database: "Database", stmt: ast.UpdateStatement, params: Sequence[Any], transaction: "Transaction | None"
) -> QueryResult:
    txn = _require_txn(transaction)
    table = database.table(stmt.table.name)
    exposed = stmt.table.exposed_name
    row_ids, used_index = _select_row_ids(table, exposed, stmt.where, params)
    updated = 0
    for row_id in row_ids:
        try:
            raw = table.get(row_id)
        except KeyError:
            continue
        row = _namespaced(raw, exposed)
        if stmt.where is not None and not is_truthy(evaluate(stmt.where, row, params)):
            continue
        changes = {col: evaluate(expr, row, params) for col, expr in stmt.assignments}
        old_row = table.update(row_id, changes)
        txn.record_update(table, row_id, old_row)
        updated += 1
    examined = len(row_ids) if used_index else table.row_count
    cost = database.latency.statement_cost(table.row_count, examined + updated, used_index)
    io = database.latency.write_cost(table.row_count) if updated else 0.0
    return QueryResult(rowcount=updated, cost=cost + io, written_table=table, write_cost=io)


def _execute_delete(
    database: "Database", stmt: ast.DeleteStatement, params: Sequence[Any], transaction: "Transaction | None"
) -> QueryResult:
    txn = _require_txn(transaction)
    table = database.table(stmt.table.name)
    exposed = stmt.table.exposed_name
    row_ids, used_index = _select_row_ids(table, exposed, stmt.where, params)
    deleted = 0
    for row_id in row_ids:
        try:
            raw = table.get(row_id)
        except KeyError:
            continue
        row = _namespaced(raw, exposed)
        if stmt.where is not None and not is_truthy(evaluate(stmt.where, row, params)):
            continue
        old_row = table.delete(row_id)
        txn.record_delete(table, row_id, old_row)
        deleted += 1
    examined = len(row_ids) if used_index else table.row_count
    cost = database.latency.statement_cost(table.row_count, examined + deleted, used_index)
    io = database.latency.write_cost(table.row_count) if deleted else 0.0
    return QueryResult(rowcount=deleted, cost=cost + io, written_table=table, write_cost=io)
