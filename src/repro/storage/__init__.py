"""Embedded relational storage engine — the "data sources" substrate.

The paper runs against real MySQL/PostgreSQL servers; this package is
their stand-in: a complete in-process SQL database with typed schemas,
indexes, streaming cursors, local + XA transactions, connection pools and
a tunable latency model (see DESIGN.md, substitution #1).
"""

from .connection import Connection, Cursor
from .database import Database
from .engine import DataSource
from .executor import QueryResult, execute_statement
from .faults import FaultInjector, FaultKind, FaultProfile
from .latency import LatencyModel
from .plans import StoragePlan, StoragePlanCache, execute_planned
from .pool import ConnectionPool
from .replication import (
    PromotionEvent,
    ReplicaGroup,
    ReplicaState,
    ReplicationLog,
    pin_primary,
    reset_session,
    session_token,
)
from .schema import Column, TableSchema
from .table import Table
from .transaction import Transaction, TxnStatus, commit_prepared, rollback_prepared
from .types import ColumnType, make_type

__all__ = [
    "DataSource",
    "Database",
    "Table",
    "TableSchema",
    "Column",
    "ColumnType",
    "make_type",
    "Connection",
    "Cursor",
    "ConnectionPool",
    "QueryResult",
    "execute_statement",
    "StoragePlan",
    "StoragePlanCache",
    "execute_planned",
    "Transaction",
    "TxnStatus",
    "commit_prepared",
    "rollback_prepared",
    "LatencyModel",
    "ReplicaGroup",
    "ReplicaState",
    "ReplicationLog",
    "PromotionEvent",
    "pin_primary",
    "reset_session",
    "session_token",
    "FaultInjector",
    "FaultKind",
    "FaultProfile",
]
