"""Table schema model for the embedded storage engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..exceptions import ColumnNotFoundError, TypeCheckError
from ..sql import ast
from .types import ColumnType, make_type


@dataclass
class Column:
    """A column definition within a table schema."""

    name: str
    type: ColumnType
    not_null: bool = False
    auto_increment: bool = False
    default: Any = None
    unique: bool = False

    @classmethod
    def from_ast(cls, definition: ast.ColumnDefinition) -> "Column":
        return cls(
            name=definition.name,
            type=make_type(definition.type_name, definition.length),
            not_null=definition.not_null or definition.primary_key,
            auto_increment=definition.auto_increment,
            default=definition.default,
            unique=definition.unique,
        )


@dataclass
class TableSchema:
    """Column layout and key constraints of one table."""

    name: str
    columns: list[Column]
    primary_key: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {col.name.lower(): col for col in self.columns}
        self._offsets = {col.name.lower(): i for i, col in enumerate(self.columns)}
        for key in self.primary_key:
            if key.lower() not in self._by_name:
                raise ColumnNotFoundError(f"primary key column {key!r} not in table {self.name}")

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def column_offset(self, name: str) -> int:
        """Position of a column in schema order — the index of its value
        in ``tuple(row.values())`` for any row this schema normalized."""
        try:
            return self._offsets[name.lower()]
        except KeyError:
            raise ColumnNotFoundError(f"column {name!r} not in table {self.name}") from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise ColumnNotFoundError(f"column {name!r} not in table {self.name}") from None

    def normalize_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Coerce a raw column->value mapping into a full typed row.

        Missing columns get their default (or None); NOT NULL without a
        value raises unless the column is auto-increment (filled by the
        table). Unknown columns raise.

        Invariant: the returned dict's key order is exactly
        ``self.columns`` order (every stored row is built here or copied
        key-preserving from one that was), so ``tuple(row.values())``
        yields values at :meth:`column_offset` positions. Compiled
        storage plans (:mod:`repro.storage.plans`) rely on this to read
        tuple rows by precomputed offset instead of by name.
        """
        for key in values:
            if key.lower() not in self._by_name:
                raise ColumnNotFoundError(f"column {key!r} not in table {self.name}")
        lowered = {key.lower(): value for key, value in values.items()}
        row: dict[str, Any] = {}
        for col in self.columns:
            if col.name.lower() in lowered:
                value = col.type.coerce(lowered[col.name.lower()])
            elif col.default is not None:
                value = col.type.coerce(col.default)
            else:
                value = None
            if value is None and col.not_null and not col.auto_increment:
                raise TypeCheckError(f"column {col.name!r} of table {self.name} is NOT NULL")
            row[col.name] = value
        return row

    @classmethod
    def from_ast(cls, stmt: ast.CreateTableStatement) -> "TableSchema":
        columns = [Column.from_ast(col) for col in stmt.columns]
        return cls(name=stmt.table.name, columns=columns, primary_key=list(stmt.primary_key))

    def clone_renamed(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different table name (AutoTable)."""
        return TableSchema(
            name=new_name,
            columns=[Column(c.name, c.type, c.not_null, c.auto_increment, c.default, c.unique) for c in self.columns],
            primary_key=list(self.primary_key),
        )
