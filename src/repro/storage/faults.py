"""Seeded probabilistic fault injection for the storage substrate.

The paper's Governor exists because proxies and databases *do* fail; this
module is the chaos source that lets us exercise those paths on demand.
One :class:`FaultInjector` is shared by a fleet of data sources and is
consulted from ``Database.maybe_fail`` — i.e. on the exact hook points the
deterministic ``fail_next`` injection already uses ("statement",
"prepare", "commit") — so every execution, transaction and health-probe
path sees the same faults a real deployment would.

Fault kinds per data source:

- **transient** — raise :class:`TransientError`; models deadlock victims,
  brief network jitter. Retryable by the execution engine.
- **drop** — raise :class:`ConnectionDropError`; the connection marks
  itself closed, so a retry must re-acquire from the pool.
- **latency** — sleep ``latency_spike`` seconds (a slow disk / GC pause);
  not an error, but it burns statement deadline budget.
- **crash** — the source goes down *and stays down* until ``revive()``;
  every operation raises :class:`DataSourceUnavailableError`. Health
  detection sees probes fail and marks the source DOWN.

All randomness comes from one seeded ``random.Random`` guarded by a lock,
so a chaos schedule is reproducible run-to-run (thread interleaving still
varies, which is why chaos tests assert invariants, not exact traces).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..exceptions import (
    ConnectionDropError,
    DataSourceUnavailableError,
    TransientError,
)
from .latency import pay


class FaultKind:
    """String constants for the injectable fault kinds."""

    TRANSIENT = "transient"
    DROP = "drop"
    LATENCY = "latency"
    CRASH = "crash"

    ALL = (TRANSIENT, DROP, LATENCY, CRASH)


@dataclass
class FaultProfile:
    """Per-data-source probabilistic fault rates (probabilities per op)."""

    transient_rate: float = 0.0
    drop_rate: float = 0.0
    latency_rate: float = 0.0
    #: seconds slept when a latency fault fires
    latency_spike: float = 0.002

    def __post_init__(self) -> None:
        for name in ("transient_rate", "drop_rate", "latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


class FaultInjector:
    """Seeded chaos source shared across a fleet of data sources."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._profiles: dict[str, FaultProfile] = {}
        self._crashed: set[str] = set()
        #: (source, operation) -> queued one-shot fault kinds
        self._one_shots: dict[tuple[str, str], list[str]] = {}
        #: source -> fault kind -> times injected
        self._counts: dict[str, dict[str, int]] = {}
        #: source -> operations seen (faulted or not)
        self._ops: dict[str, int] = {}

    # -- configuration ----------------------------------------------------

    def configure(
        self,
        source: str,
        *,
        transient_rate: float = 0.0,
        drop_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_spike: float = 0.002,
    ) -> FaultProfile:
        """Set the probabilistic fault rates for one data source."""
        profile = FaultProfile(transient_rate, drop_rate, latency_rate, latency_spike)
        with self._lock:
            self._profiles[source] = profile
        return profile

    def fail_once(self, source: str, operation: str = "statement",
                  kind: str = FaultKind.TRANSIENT) -> None:
        """Queue one deterministic fault for the next ``operation`` on
        ``source`` (chaos schedules script these at known points).

        ``kind=FaultKind.CRASH`` additionally leaves the source crashed
        until :meth:`revive` — that is how a test crashes a participant
        *between* XA prepare and commit.
        """
        if kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {kind!r}; known: {FaultKind.ALL}")
        with self._lock:
            self._one_shots.setdefault((source, operation), []).append(kind)

    # -- outages -----------------------------------------------------------

    def crash(self, source: str) -> None:
        """Take the source down until :meth:`revive` (crash-until-revived)."""
        with self._lock:
            self._crashed.add(source)

    def revive(self, source: str) -> None:
        with self._lock:
            self._crashed.discard(source)

    def is_crashed(self, source: str) -> bool:
        with self._lock:
            return source in self._crashed

    # -- the hook ----------------------------------------------------------

    def on_operation(self, source: str, operation: str) -> None:
        """Called by ``Database.maybe_fail`` before every operation.

        Raises the injected error (or sleeps, for latency spikes). At most
        one fault fires per operation; crash state dominates.
        """
        spike = 0.0
        with self._lock:
            self._ops[source] = self._ops.get(source, 0) + 1
            if source in self._crashed:
                self._count_locked(source, FaultKind.CRASH)
                raise DataSourceUnavailableError(
                    f"data source {source!r} is down (injected outage)"
                )
            kind = self._draw_locked(source, operation)
            if kind is None:
                return
            self._count_locked(source, kind)
            if kind == FaultKind.CRASH:
                self._crashed.add(source)
                raise DataSourceUnavailableError(
                    f"data source {source!r} crashed (injected, on {operation})"
                )
            if kind == FaultKind.LATENCY:
                profile = self._profiles.get(source)
                spike = profile.latency_spike if profile is not None else 0.002
        # Sleep outside the lock so concurrent sources don't serialize.
        if spike > 0.0:
            pay(spike)
            return
        if kind == FaultKind.TRANSIENT:
            raise TransientError(
                f"injected transient error on {operation} in {source!r}"
            )
        if kind == FaultKind.DROP:
            raise ConnectionDropError(
                f"injected connection drop on {operation} in {source!r}"
            )

    def _draw_locked(self, source: str, operation: str) -> str | None:
        queued = self._one_shots.get((source, operation))
        if queued:
            return queued.pop(0)
        profile = self._profiles.get(source)
        if profile is None or operation != "statement":
            # Probabilistic faults only hit the statement path; prepare and
            # commit faults are scripted via fail_once for determinism.
            return None
        roll = self._rng.random()
        if roll < profile.transient_rate:
            return FaultKind.TRANSIENT
        roll -= profile.transient_rate
        if roll < profile.drop_rate:
            return FaultKind.DROP
        roll -= profile.drop_rate
        if roll < profile.latency_rate:
            return FaultKind.LATENCY
        return None

    # -- observability -----------------------------------------------------

    def _count_locked(self, source: str, kind: str) -> None:
        by_kind = self._counts.setdefault(source, {})
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def injected(self, source: str | None = None, kind: str | None = None) -> int:
        """Number of faults injected, optionally filtered."""
        with self._lock:
            sources = [source] if source is not None else list(self._counts)
            total = 0
            for name in sources:
                by_kind = self._counts.get(name, {})
                if kind is not None:
                    total += by_kind.get(kind, 0)
                else:
                    total += sum(by_kind.values())
            return total

    def snapshot(self) -> dict[str, dict[str, int]]:
        """{source: {kind: count, "ops": seen}} for reports and tests."""
        with self._lock:
            out: dict[str, dict[str, int]] = {}
            for name in set(self._counts) | set(self._ops):
                row = dict(self._counts.get(name, {}))
                row["ops"] = self._ops.get(name, 0)
                out[name] = row
            return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(seed={self.seed}, sources={sorted(self._profiles)})"
