"""Expression-to-closure compiler over tuple rows.

The interpreted executor evaluates each WHERE / projection / ORDER BY
expression by recursing over the AST for every row, against a dict that
:func:`repro.storage.executor._namespaced` rebuilds per row. This module
compiles an expression once into a closure ``(row, params) -> value``
where ``row`` is the raw value tuple of a table row (or the concatenated
tuples of a join) and every column reference has been resolved to a fixed
offset at compile time.

The compiled closures reproduce :func:`repro.storage.expression.evaluate`
semantics exactly — three-valued logic with the UNKNOWN sentinel, NULL
propagation rules per operator, MySQL-style cross-type comparison — so a
compiled plan and the interpreter return identical results. Any shape the
compiler does not support raises :class:`CannotCompile`; the caller falls
back to the interpreter, which also preserves the interpreter's error
behaviour for statements that would fail at runtime.

Tuple rows rely on an invariant of :meth:`TableSchema.normalize_row`:
row dicts are built by iterating ``schema.columns``, so
``tuple(raw.values())`` yields values in schema column order for every
row of a table, and updates/undo restores preserve that key order.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from ..sql import ast
from ..sql.formatter import format_expression
from .expression import (
    UNKNOWN,
    _as_tvl,
    _cast,
    _compare_values,
    _like_match,
    _SCALAR_FUNCTIONS,
)

#: a compiled expression: (tuple_row, params) -> value (may be UNKNOWN)
Getter = Callable[[Any, Sequence[Any]], Any]


class CannotCompile(Exception):
    """Raised when an expression/statement shape has no compiled form."""


def _tvl(fn: "Getter") -> "Getter":
    """Mark a getter as returning strictly True/False/UNKNOWN (never None
    or a truthy non-bool), letting AND/OR/predicate wrappers skip
    :func:`_as_tvl` normalization."""
    fn.strict_tvl = True  # type: ignore[attr-defined]
    return fn


class RowLayout:
    """Column-offset map for tuple rows of one FROM/JOIN chain.

    Each exposed table occupies a contiguous slot of offsets in the
    concatenated row tuple, in FROM-then-JOIN order. Resolution mirrors
    :func:`repro.storage.expression.resolve_column` over the namespaced
    dict the interpreter builds: qualified exact match first, then a bare
    exact-name match with the leftmost table winning (the ``setdefault``
    order of ``_merge_ns``), then the case-insensitive fallback.
    """

    __slots__ = ("slots", "width")

    def __init__(self) -> None:
        self.slots: list[tuple[str, list[str], int]] = []
        self.width = 0

    def add(self, exposed: str, column_names: Sequence[str]) -> int:
        base = self.width
        self.slots.append((exposed, list(column_names), base))
        self.width += len(column_names)
        return base

    def slot_of(self, exposed: str) -> tuple[int, list[str]]:
        for name, cols, base in self.slots:
            if name == exposed:
                return base, cols
        raise CannotCompile(f"no slot for table {exposed!r}")

    def resolve(self, ref: ast.ColumnRef) -> int:
        name = ref.name
        if ref.table:
            for exposed, cols, base in self.slots:
                if exposed == ref.table:
                    for i, col in enumerate(cols):
                        if col == name:
                            return base + i
        for exposed, cols, base in self.slots:
            for i, col in enumerate(cols):
                if col == name:
                    return base + i
        lower = name.lower()
        prefix = ref.table.lower() + "." if ref.table else None
        for exposed, cols, base in self.slots:
            for i, col in enumerate(cols):
                if col.lower() == lower:
                    if prefix is None or f"{exposed}.{col}".lower().startswith(prefix):
                        return base + i
        raise CannotCompile(f"column {ref.qualified!r} not found")


class CompileContext:
    """Resolution environment for one compilation pass.

    ``mode`` selects the row shape the closures will see:

    - ``"scan"``: rows are plain value tuples laid out by ``layout``;
    - ``"group"``: rows are ``(sample_tuple_or_None, agg_values)`` pairs
      produced by the aggregation stage — column refs read the sample
      (raising like the interpreter when aggregation had no input row),
      aggregate calls read their computed slot;
    - ``"const"``: no row at all (LIMIT bounds, INSERT values) — any
      column reference is uncompilable.

    ``param_count`` records the highest placeholder index seen + 1 so the
    plan can refuse binds with too few parameters (the interpreter decides
    per evaluation; falling back to it is always equivalent).
    """

    __slots__ = ("mode", "layout", "agg_slots", "param_count")

    def __init__(self, mode: str, layout: RowLayout | None = None,
                 agg_slots: dict[str, int] | None = None):
        self.mode = mode
        self.layout = layout
        self.agg_slots = agg_slots or {}
        self.param_count = 0

    def note_param(self, index: int) -> None:
        if index + 1 > self.param_count:
            self.param_count = index + 1

    def column_getter(self, ref: ast.ColumnRef) -> Getter:
        if self.mode == "scan":
            offset = self.layout.resolve(ref)
            return lambda row, params, _i=offset: row[_i]
        if self.mode == "group":
            offset = self.layout.resolve(ref)
            qualified = ref.qualified
            from ..exceptions import ColumnNotFoundError

            def getter(row: Any, params: Sequence[Any], _i=offset) -> Any:
                sample = row[0]
                if sample is None:
                    raise ColumnNotFoundError(
                        f"column {qualified!r} not found in row"
                    )
                return sample[_i]

            return getter
        raise CannotCompile(f"column {ref.qualified!r} in constant context")

    def aggregate_getter(self, call: ast.FunctionCall) -> Getter:
        if self.mode != "group":
            raise CannotCompile("aggregate outside aggregation context")
        key = format_expression(call)
        slot = self.agg_slots.get(key)
        if slot is None:
            raise CannotCompile(f"aggregate {key} has no computed slot")
        return lambda row, params, _i=slot: row[1][_i]


# ---------------------------------------------------------------------------
# Scalar compilation (mirrors expression.evaluate case by case)
# ---------------------------------------------------------------------------


def compile_scalar(expr: ast.Expression, ctx: CompileContext) -> Getter:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row, params: value
    if isinstance(expr, ast.Placeholder):
        index = expr.index
        ctx.note_param(index)
        return lambda row, params: params[index]
    if isinstance(expr, ast.ColumnRef):
        return ctx.column_getter(expr)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, ctx)
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, ctx)
    if isinstance(expr, ast.InExpr):
        return _compile_in(expr, ctx)
    if isinstance(expr, ast.BetweenExpr):
        return _compile_between(expr, ctx)
    if isinstance(expr, ast.IsNullExpr):
        operand = compile_scalar(expr.operand, ctx)
        if expr.negated:
            return _tvl(lambda row, params: operand(row, params) is not None)
        return _tvl(lambda row, params: operand(row, params) is None)
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, ctx)
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(expr, ctx)
    raise CannotCompile(f"expression type {type(expr).__name__}")


def compile_predicate(expr: ast.Expression, ctx: CompileContext) -> Getter:
    """Compile to WHERE semantics: a bool with UNKNOWN/NULL -> False."""
    getter = compile_scalar(expr, ctx)
    if getattr(getter, "strict_tvl", False):
        # The getter only ever returns True/False/UNKNOWN.
        return lambda row, params: getter(row, params) is True

    def predicate(row: Any, params: Sequence[Any]) -> bool:
        value = getter(row, params)
        if value is UNKNOWN or value is None:
            return False
        return bool(value)

    return predicate


_COMPARISONS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "!=": lambda c: c != 0,
    "<": lambda c: c < 0,
    ">": lambda c: c > 0,
    "<=": lambda c: c <= 0,
    ">=": lambda c: c >= 0,
}

#: operand types for which the native Python operator agrees with
#: ``_compare_values``: numbers compare numerically (bool is an int) and
#: two strings compare lexicographically — no cross-coercion involved.
_NATIVE_COMPARISONS = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}
_FAST_CMP_TYPES = frozenset((int, float, bool))

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "||": lambda a, b: f"{a}{b}",
}


def _compile_binary(expr: ast.BinaryOp, ctx: CompileContext) -> Getter:
    op = expr.op
    left = compile_scalar(expr.left, ctx)
    right = compile_scalar(expr.right, ctx)
    if op == "AND":
        if getattr(left, "strict_tvl", False) and getattr(right, "strict_tvl", False):
            def g_and_tvl(row: Any, params: Sequence[Any]) -> Any:
                lhs = left(row, params)
                if lhs is False:
                    return False
                rhs = right(row, params)
                if rhs is False:
                    return False
                if lhs is UNKNOWN or rhs is UNKNOWN:
                    return UNKNOWN
                return True

            return _tvl(g_and_tvl)

        def g_and(row: Any, params: Sequence[Any]) -> Any:
            lhs = _as_tvl(left(row, params))
            if lhs is False:
                return False
            rhs = _as_tvl(right(row, params))
            if rhs is False:
                return False
            if lhs is UNKNOWN or rhs is UNKNOWN:
                return UNKNOWN
            return True

        return _tvl(g_and)
    if op == "OR":
        if getattr(left, "strict_tvl", False) and getattr(right, "strict_tvl", False):
            def g_or_tvl(row: Any, params: Sequence[Any]) -> Any:
                lhs = left(row, params)
                if lhs is True:
                    return True
                rhs = right(row, params)
                if rhs is True:
                    return True
                if lhs is UNKNOWN or rhs is UNKNOWN:
                    return UNKNOWN
                return False

            return _tvl(g_or_tvl)

        def g_or(row: Any, params: Sequence[Any]) -> Any:
            lhs = _as_tvl(left(row, params))
            if lhs is True:
                return True
            rhs = _as_tvl(right(row, params))
            if rhs is True:
                return True
            if lhs is UNKNOWN or rhs is UNKNOWN:
                return UNKNOWN
            return False

        return _tvl(g_or)
    if op == "<=>":
        def g_nullsafe(row: Any, params: Sequence[Any]) -> Any:
            lhs = left(row, params)
            rhs = right(row, params)
            if lhs is None or rhs is None:
                return lhs is None and rhs is None
            return _compare_values(lhs, rhs) == 0

        return _tvl(g_nullsafe)
    compare = _COMPARISONS.get(op)
    if compare is not None:
        native = _NATIVE_COMPARISONS[op]

        def g_cmp(row: Any, params: Sequence[Any]) -> Any:
            lhs = left(row, params)
            rhs = right(row, params)
            if lhs is None or rhs is None:
                return UNKNOWN
            tl = lhs.__class__
            tr = rhs.__class__
            if (tl in _FAST_CMP_TYPES and tr in _FAST_CMP_TYPES) or (
                tl is str and tr is str
            ):
                return native(lhs, rhs)
            return compare(_compare_values(lhs, rhs))

        return _tvl(g_cmp)
    if op == "LIKE":
        def g_like(row: Any, params: Sequence[Any]) -> Any:
            lhs = left(row, params)
            rhs = right(row, params)
            if lhs is None or rhs is None:
                return UNKNOWN
            return _like_match(str(lhs), str(rhs))

        return _tvl(g_like)
    arith = _ARITHMETIC.get(op)
    if arith is not None:
        def g_arith(row: Any, params: Sequence[Any]) -> Any:
            lhs = left(row, params)
            rhs = right(row, params)
            if lhs is None or rhs is None:
                return None
            return arith(lhs, rhs)

        return g_arith
    if op in ("/", "%"):
        modulo = op == "%"

        def g_div(row: Any, params: Sequence[Any]) -> Any:
            lhs = left(row, params)
            rhs = right(row, params)
            if lhs is None or rhs is None:
                return None
            if rhs == 0:
                return None  # SQL: division by zero yields NULL
            return lhs % rhs if modulo else lhs / rhs

        return g_div
    raise CannotCompile(f"binary operator {op!r}")


def _compile_unary(expr: ast.UnaryOp, ctx: CompileContext) -> Getter:
    operand = compile_scalar(expr.operand, ctx)
    if expr.op == "NOT":
        def g_not(row: Any, params: Sequence[Any]) -> Any:
            tvl = _as_tvl(operand(row, params))
            if tvl is UNKNOWN:
                return UNKNOWN
            return not tvl

        return _tvl(g_not)
    if expr.op == "-":
        def g_neg(row: Any, params: Sequence[Any]) -> Any:
            value = operand(row, params)
            if value is None:
                return None
            return -value

        return g_neg
    raise CannotCompile(f"unary operator {expr.op!r}")


def _compile_in(expr: ast.InExpr, ctx: CompileContext) -> Getter:
    operand = compile_scalar(expr.operand, ctx)
    items = tuple(compile_scalar(item, ctx) for item in expr.items)
    negated = expr.negated

    def g_in(row: Any, params: Sequence[Any]) -> Any:
        value = operand(row, params)
        if value is None:
            return UNKNOWN
        saw_null = False
        for item in items:
            candidate = item(row, params)
            if candidate is None:
                saw_null = True
                continue
            if _compare_values(value, candidate) == 0:
                return not negated
        if saw_null:
            return UNKNOWN
        return negated

    return _tvl(g_in)


def _compile_between(expr: ast.BetweenExpr, ctx: CompileContext) -> Getter:
    operand = compile_scalar(expr.operand, ctx)
    low = compile_scalar(expr.low, ctx)
    high = compile_scalar(expr.high, ctx)
    negated = expr.negated

    def g_between(row: Any, params: Sequence[Any]) -> Any:
        value = operand(row, params)
        lo = low(row, params)
        hi = high(row, params)
        if value is None or lo is None or hi is None:
            return UNKNOWN
        result = _compare_values(lo, value) <= 0 <= _compare_values(hi, value)
        return not result if negated else result

    return _tvl(g_between)


def _compile_function(expr: ast.FunctionCall, ctx: CompileContext) -> Getter:
    name = expr.name.upper()
    if expr.is_aggregate:
        return ctx.aggregate_getter(expr)
    if name == "CAST":
        value = compile_scalar(expr.args[0], ctx)
        target = expr.args[1].value if isinstance(expr.args[1], ast.Literal) else "CHAR"
        target = str(target)
        return lambda row, params: _cast(value(row, params), target)
    handler = _SCALAR_FUNCTIONS.get(name)
    if handler is None:
        raise CannotCompile(f"function {name!r}")
    arg_getters = tuple(compile_scalar(arg, ctx) for arg in expr.args)
    return lambda row, params: handler([g(row, params) for g in arg_getters])


def _compile_case(expr: ast.CaseExpr, ctx: CompileContext) -> Getter:
    whens = tuple(
        (compile_predicate(cond, ctx), compile_scalar(value, ctx))
        for cond, value in expr.whens
    )
    default = compile_scalar(expr.default, ctx) if expr.default is not None else None

    def g_case(row: Any, params: Sequence[Any]) -> Any:
        for cond, value in whens:
            if cond(row, params):
                return value(row, params)
        if default is not None:
            return default(row, params)
        return None

    return g_case


# ---------------------------------------------------------------------------
# Batched predicate evaluation (vectorized plan pipelines)
# ---------------------------------------------------------------------------

#: a compiled batch filter: (rows, params) -> surviving rows
BatchFilter = Callable[[Sequence[Any], Sequence[Any]], list]


def _flatten_and(expr: ast.Expression) -> list[ast.Expression]:
    """Top-level AND conjuncts in left-to-right evaluation order."""
    out: list[ast.Expression] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


def compile_batch_predicate(expr: ast.Expression, ctx: CompileContext) -> BatchFilter:
    """Compile WHERE semantics over a whole chunk: rows where the
    predicate is True survive, UNKNOWN/NULL filter out.

    Top-level AND conjuncts are compiled separately and fused into a
    single comprehension with native short-circuit ``and`` — identical to
    3VL conjunction under WHERE (True iff every conjunct is True), with
    the same left-to-right evaluation order as the interpreter.
    """
    preds = [compile_predicate(c, ctx) for c in _flatten_and(expr)]
    if len(preds) == 1:
        p0 = preds[0]
        return lambda rows, params: [r for r in rows if p0(r, params)]
    if len(preds) == 2:
        p0, p1 = preds
        return lambda rows, params: [
            r for r in rows if p0(r, params) and p1(r, params)
        ]
    if len(preds) == 3:
        p0, p1, p2 = preds
        return lambda rows, params: [
            r for r in rows if p0(r, params) and p1(r, params) and p2(r, params)
        ]
    fused = tuple(preds)

    def batch_filter(rows: Sequence[Any], params: Sequence[Any]) -> list:
        out = []
        append = out.append
        for r in rows:
            for p in fused:
                if not p(r, params):
                    break
            else:
                append(r)
        return out

    return batch_filter
