"""Expression evaluation against rows.

Implements SQL three-valued logic for NULL in comparisons and boolean
connectives, LIKE pattern matching, arithmetic and scalar functions. A row
is a mapping from column name to value; qualified references try
``table.column`` first, then the bare column name.
"""

from __future__ import annotations

import datetime
import re
from functools import lru_cache
from typing import Any, Mapping, Sequence

from ..exceptions import ColumnNotFoundError, ExecutionError
from ..sql import ast

UNKNOWN = object()
"""Sentinel for SQL's three-valued UNKNOWN truth value."""


def evaluate(expr: ast.Expression, row: Mapping[str, Any], params: Sequence[Any] = ()) -> Any:
    """Evaluate an expression against a row; placeholders read ``params``."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Placeholder):
        try:
            return params[expr.index]
        except IndexError:
            raise ExecutionError(f"missing parameter for placeholder #{expr.index}") from None
    if isinstance(expr, ast.ColumnRef):
        return resolve_column(expr, row)
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, row, params)
    if isinstance(expr, ast.UnaryOp):
        return _eval_unary(expr, row, params)
    if isinstance(expr, ast.InExpr):
        return _eval_in(expr, row, params)
    if isinstance(expr, ast.BetweenExpr):
        return _eval_between(expr, row, params)
    if isinstance(expr, ast.IsNullExpr):
        value = evaluate(expr.operand, row, params)
        result = value is None
        return not result if expr.negated else result
    if isinstance(expr, ast.FunctionCall):
        return _eval_function(expr, row, params)
    if isinstance(expr, ast.CaseExpr):
        for cond, value in expr.whens:
            if is_truthy(evaluate(cond, row, params)):
                return evaluate(value, row, params)
        if expr.default is not None:
            return evaluate(expr.default, row, params)
        return None
    if isinstance(expr, ast.Star):
        raise ExecutionError("'*' is not a scalar expression")
    raise ExecutionError(f"cannot evaluate expression of type {type(expr).__name__}")


def is_truthy(value: Any) -> bool:
    """Collapse three-valued logic to WHERE semantics (UNKNOWN -> False)."""
    if value is UNKNOWN or value is None:
        return False
    return bool(value)


def resolve_column(ref: ast.ColumnRef, row: Mapping[str, Any]) -> Any:
    """Resolve a (possibly qualified) column reference in a row mapping."""
    if ref.table:
        qualified = f"{ref.table}.{ref.name}"
        if qualified in row:
            return row[qualified]
    if ref.name in row:
        return row[ref.name]
    # Case-insensitive fallback, then unqualified match of a qualified key.
    lower = ref.name.lower()
    for key, value in row.items():
        bare = key.rsplit(".", 1)[-1]
        if bare.lower() == lower:
            if ref.table is None or key.lower().startswith(ref.table.lower() + "."):
                return value
    raise ColumnNotFoundError(f"column {ref.qualified!r} not found in row")


def _eval_binary(expr: ast.BinaryOp, row: Mapping[str, Any], params: Sequence[Any]) -> Any:
    op = expr.op
    if op == "AND":
        left = _as_tvl(evaluate(expr.left, row, params))
        if left is False:
            return False
        right = _as_tvl(evaluate(expr.right, row, params))
        if right is False:
            return False
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        return True
    if op == "OR":
        left = _as_tvl(evaluate(expr.left, row, params))
        if left is True:
            return True
        right = _as_tvl(evaluate(expr.right, row, params))
        if right is True:
            return True
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        return False

    left = evaluate(expr.left, row, params)
    right = evaluate(expr.right, row, params)
    if op == "<=>":
        # NULL-safe equality: NULL <=> NULL is TRUE, never UNKNOWN.
        if left is None or right is None:
            return left is None and right is None
        return _compare_values(left, right) == 0
    if left is None or right is None:
        if op in ("=", "<>", "!=", "<", ">", "<=", ">=", "LIKE"):
            return UNKNOWN
        return None
    if op == "=":
        return _compare_values(left, right) == 0
    if op in ("<>", "!="):
        return _compare_values(left, right) != 0
    if op == "<":
        return _compare_values(left, right) < 0
    if op == ">":
        return _compare_values(left, right) > 0
    if op == "<=":
        return _compare_values(left, right) <= 0
    if op == ">=":
        return _compare_values(left, right) >= 0
    if op == "LIKE":
        return _like_match(str(left), str(right))
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL: division by zero yields NULL (MySQL default)
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    if op == "||":
        return f"{left}{right}"
    raise ExecutionError(f"unsupported binary operator {op!r}")


def _eval_unary(expr: ast.UnaryOp, row: Mapping[str, Any], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, row, params)
    if expr.op == "NOT":
        tvl = _as_tvl(value)
        if tvl is UNKNOWN:
            return UNKNOWN
        return not tvl
    if expr.op == "-":
        if value is None:
            return None
        return -value
    raise ExecutionError(f"unsupported unary operator {expr.op!r}")


def _eval_in(expr: ast.InExpr, row: Mapping[str, Any], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, row, params)
    if value is None:
        return UNKNOWN
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, row, params)
        if candidate is None:
            saw_null = True
            continue
        if _compare_values(value, candidate) == 0:
            return not expr.negated
    if saw_null:
        return UNKNOWN
    return expr.negated


def _eval_between(expr: ast.BetweenExpr, row: Mapping[str, Any], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, row, params)
    low = evaluate(expr.low, row, params)
    high = evaluate(expr.high, row, params)
    if value is None or low is None or high is None:
        return UNKNOWN
    result = _compare_values(low, value) <= 0 <= _compare_values(high, value)
    return not result if expr.negated else result


_SCALAR_FUNCTIONS = {
    "ABS": lambda args: None if args[0] is None else abs(args[0]),
    "LOWER": lambda args: None if args[0] is None else str(args[0]).lower(),
    "UPPER": lambda args: None if args[0] is None else str(args[0]).upper(),
    "LENGTH": lambda args: None if args[0] is None else len(str(args[0])),
    "COALESCE": lambda args: next((a for a in args if a is not None), None),
    "IFNULL": lambda args: args[0] if args[0] is not None else args[1],
    "ROUND": lambda args: None if args[0] is None else round(args[0], int(args[1]) if len(args) > 1 else 0),
    "FLOOR": lambda args: None if args[0] is None else int(args[0] // 1),
    "CEIL": lambda args: None if args[0] is None else -int(-args[0] // 1),
    "MOD": lambda args: None if args[0] is None or not args[1] else args[0] % args[1],
    "CONCAT": lambda args: None if any(a is None for a in args) else "".join(str(a) for a in args),
    "SUBSTRING": lambda args: _substring(args),
    "NOW": lambda args: datetime.datetime.now(),
}


def _substring(args: list[Any]) -> Any:
    if args[0] is None:
        return None
    text = str(args[0])
    start = int(args[1]) - 1 if len(args) > 1 else 0
    if len(args) > 2:
        return text[start : start + int(args[2])]
    return text[start:]


def _eval_function(expr: ast.FunctionCall, row: Mapping[str, Any], params: Sequence[Any]) -> Any:
    name = expr.name.upper()
    if expr.is_aggregate:
        # Aggregates in a post-aggregation context: the executor stores the
        # computed value in the row keyed by the rendered call.
        from ..sql.formatter import format_expression

        key = format_expression(expr)
        if key in row:
            return row[key]
        raise ExecutionError(f"aggregate {key} not available in this context")
    if name == "CAST":
        value = evaluate(expr.args[0], row, params)
        target = expr.args[1].value if isinstance(expr.args[1], ast.Literal) else "CHAR"
        return _cast(value, str(target))
    handler = _SCALAR_FUNCTIONS.get(name)
    if handler is None:
        raise ExecutionError(f"unsupported function {name!r}")
    args = [evaluate(a, row, params) for a in expr.args]
    return handler(args)


def _cast(value: Any, target: str) -> Any:
    if value is None:
        return None
    target = target.upper()
    if target in ("INT", "INTEGER", "BIGINT", "SIGNED", "UNSIGNED"):
        return int(value)
    if target in ("FLOAT", "DOUBLE", "DECIMAL", "REAL"):
        return float(value)
    return str(value)


def _as_tvl(value: Any) -> Any:
    """Normalize a value to True/False/UNKNOWN."""
    if value is UNKNOWN or value is None:
        return UNKNOWN
    return bool(value)


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> re.Pattern[str]:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)


def _like_match(value: str, pattern: str) -> bool:
    return _like_regex(pattern).match(value) is not None


def _compare_values(left: Any, right: Any) -> int:
    """Three-way compare with numeric/string cross-coercion like MySQL."""
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            right = float(right)
        except ValueError:
            left = str(left)
    elif isinstance(left, str) and isinstance(right, (int, float)):
        try:
            left = float(left)
        except ValueError:
            right = str(right)
    if isinstance(left, datetime.datetime) and isinstance(right, str):
        right = datetime.datetime.fromisoformat(right)
    elif isinstance(right, datetime.datetime) and isinstance(left, str):
        left = datetime.datetime.fromisoformat(left)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sort_key(value: Any):
    """A key usable to sort mixed NULL/typed values (NULLs first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, datetime.datetime):
        return (2, value.isoformat())
    return (2, str(value))


class OrderToken:
    """Sort token honoring per-key direction (desc inverts comparisons).

    Lets a single composite-key sort handle mixed ASC/DESC ORDER BY
    instead of one stable sort pass per key. Shared by the storage
    executor, compiled plans and the engine's merge layer.
    """

    __slots__ = ("key", "desc")

    def __init__(self, value: Any, desc: bool):
        self.key = sort_key(value)
        self.desc = desc

    def __lt__(self, other: "OrderToken") -> bool:
        if self.desc:
            return other.key < self.key
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrderToken) and self.key == other.key
