"""Replica groups with simulated asynchronous replication.

A :class:`ReplicaGroup` bundles a primary :class:`~repro.storage.engine.
DataSource` with N read replicas. Committed writes on the primary publish
row-image records to a group-shared :class:`ReplicationLog` (the analogue
of a durable binlog / WAL archive every replica can read); each replica
owns a :class:`ReplicaState` that applies records lazily, *after* a
configurable and jittered lag has elapsed, so replicas serve genuinely
stale snapshots until the log catches up.

Consistency model
-----------------
Replication is **convergent row-image shipping**: at commit time the
transaction re-reads every row it touched under the database write lock
and publishes the current image (or a delete marker). Applying a record
is therefore idempotent and order-tolerant per row — replicas converge to
the primary's state even when two transactions' publish order inverts
their execution order. Read-your-writes is layered on top with *causal
session tokens*: every publish stamps the committing **session's** token
(the :class:`~repro.session.SessionContext` active on the committing
thread — propagated across executor workers, so fan-out commits stamp
the right session) with the new LSN, and the rwsplit router only
considers replicas whose applied (or applicable-by-now) LSN covers the
token.

Promotion
---------
``ReplicaGroup.promote`` fences the dead primary (further DML/DDL raises
:class:`~repro.exceptions.DataSourceUnavailableError`), picks the
most-caught-up healthy replica (max applied LSN), force-applies the rest
of the shared log to it (no acknowledged write is lost — the log is the
durable source of truth), and installs it as the new primary publishing
to the *same* log so surviving replicas keep streaming seamlessly.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..exceptions import DataSourceUnavailableError, DuplicateKeyError, StorageError
from ..session import current_session

if TYPE_CHECKING:
    from .database import Database
    from .engine import DataSource


# ---------------------------------------------------------------------------
# Causal session tokens (read-your-writes)
# ---------------------------------------------------------------------------

# Causal tokens live on the SessionContext (repro.session): the highest
# LSN the session has written per replication group, plus a primary-pin
# depth for PRIMARY-hinted reads. The module-level functions below keep
# the historical API — they resolve the *current* session, which is
# thread-scoped unless explicitly propagated across a thread boundary
# (see DESIGN.md "Sessions & the proxy reactor").


def session_token(group: str) -> int:
    """Highest LSN the current session has written in ``group`` (0 = none)."""
    return current_session().token(group)


def note_write(group: str, lsn: int) -> None:
    """Advance the current session's causal token for ``group`` to ``lsn``."""
    current_session().note_write(group, lsn)


def reset_session() -> None:
    """Forget the current session's causal tokens (a brand-new session)."""
    current_session().reset()


def pin_primary() -> "contextlib.AbstractContextManager[None]":
    """Force reads in this block to the primary (the PRIMARY hint)."""
    return current_session().pin()


def primary_pinned() -> bool:
    return current_session().pinned


# ---------------------------------------------------------------------------
# The shared replication log
# ---------------------------------------------------------------------------


class _LogRecord:
    __slots__ = ("lsn", "commit_time", "ops")

    def __init__(self, lsn: int, commit_time: float, ops: Sequence[tuple]):
        self.lsn = lsn
        self.commit_time = commit_time
        self.ops = ops


class ReplicationLog:
    """Append-only, group-shared commit log (durable binlog analogue).

    Records are appended under the log lock but *read* lock-free: the
    backing list only ever grows, and list append is atomic under the
    GIL, so replicas can check ``last_lsn`` / index records on the hot
    read path without contending with publishers. LSNs are 1-based and
    dense: record i (0-based) has lsn i+1.
    """

    def __init__(self, group: str):
        self.group = group
        self._records: list[_LogRecord] = []
        self._lock = threading.Lock()

    @property
    def last_lsn(self) -> int:
        return len(self._records)

    def record_at(self, index: int) -> _LogRecord | None:
        records = self._records
        return records[index] if index < len(records) else None

    def publish(self, ops: Sequence[tuple]) -> int:
        """Append one commit's ops; stamps the caller's causal token."""
        with self._lock:
            lsn = len(self._records) + 1
            self._records.append(_LogRecord(lsn, time.monotonic(), tuple(ops)))
        note_write(self.group, lsn)
        return lsn


# ---------------------------------------------------------------------------
# Per-replica apply state
# ---------------------------------------------------------------------------


class ReplicaState:
    """One replica's position in (and lag behind) the shared log.

    ``apply_due`` is called lazily from the replica connection's statement
    path: records whose ``commit_time + lag`` has passed are applied,
    everything younger stays invisible — a genuinely stale snapshot. The
    lag is redrawn (base ± jitter) after every applied batch from a
    per-replica seeded RNG so runs are reproducible.
    """

    def __init__(self, source: "DataSource", log: ReplicationLog,
                 lag: float = 0.0, jitter: float = 0.0,
                 seed: int | str | None = None):
        self.source = source
        self.log = log
        self.base_lag = lag
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lag = self._draw_lag()
        self._applied = 0  # == applied LSN (records are dense, 1-based)
        self._lock = threading.Lock()
        self.records_applied = 0

    def _draw_lag(self) -> float:
        if self.jitter <= 0:
            return self.base_lag
        return max(0.0, self.base_lag * (1.0 + self.jitter * (2 * self._rng.random() - 1)))

    @property
    def applied_lsn(self) -> int:
        return self._applied

    @property
    def current_lag(self) -> float:
        """The lag currently in force (redrawn per applied batch)."""
        return self._lag

    def lag_records(self) -> int:
        return self.log.last_lsn - self._applied

    def staleness(self, now: float | None = None) -> float:
        """Seconds of committed-but-invisible history on this replica."""
        record = self.log.record_at(self._applied)
        if record is None:
            return 0.0
        if now is None:
            now = time.monotonic()
        return max(0.0, now - record.commit_time)

    def covers(self, lsn: int, now: float | None = None) -> bool:
        """Would a read routed here (which first runs ``apply_due``) see
        everything up to ``lsn``? True when already applied *or* the
        record is due now — routing then applies it before executing."""
        if self._applied >= lsn:
            return True
        record = self.log.record_at(lsn - 1)
        if record is None:
            return False
        if now is None:
            now = time.monotonic()
        return record.commit_time + self._lag <= now

    def apply_due(self, now: float | None = None) -> int:
        """Apply every record whose lag has elapsed; returns count applied."""
        log = self.log
        if self._applied >= log.last_lsn:
            return 0
        if now is None:
            now = time.monotonic()
        head = log.record_at(self._applied)
        if head is None or head.commit_time + self._lag > now:
            return 0
        return self._apply_through(lambda rec: rec.commit_time + self._lag <= now)

    def apply_all(self) -> int:
        """Catch up fully regardless of lag (promotion / bench sync)."""
        return self._apply_through(lambda rec: True)

    def _apply_through(self, due: Callable[[_LogRecord], bool]) -> int:
        applied = 0
        database = self.source.database
        with self._lock:
            with database.write_lock():
                while True:
                    record = self.log.record_at(self._applied)
                    if record is None or not due(record):
                        break
                    for op in record.ops:
                        _apply_op(database, op)
                    self._applied = record.lsn
                    applied += 1
            if applied:
                self.records_applied += applied
                self._lag = self._draw_lag()
        return applied


def _apply_op(database: "Database", op: tuple) -> None:
    """Apply one replicated op to a replica database, latency-free."""
    kind = op[0]
    if kind == "put":
        _, table_name, row_id, row = op
        table = database.table(table_name)
        try:
            table.raw_put(row_id, dict(row))
        except DuplicateKeyError:
            # A stale row still occupies the unique slot (its delete is in
            # a record whose publish order inverted); evict it eagerly —
            # convergence: the primary's current image always wins.
            for stale_id in sorted(table.conflicting_row_ids(row)):
                if stale_id != row_id:
                    table.raw_remove(stale_id)
            table.raw_put(row_id, dict(row))
        database.bump_data_version(table_name)
    elif kind == "del":
        database.table(op[1]).raw_remove(op[2])
        database.bump_data_version(op[1])
    elif kind == "create_table":
        database.create_table(op[1], if_not_exists=True)
    elif kind == "drop_table":
        database.drop_table(op[1], if_exists=True)
    elif kind == "truncate":
        database.table(op[1]).truncate()
        database.bump_schema_version(op[1])
    elif kind == "create_index":
        _, table_name, index_name, columns, unique = op
        try:
            database.table(op[1]).create_index(index_name, list(columns), unique)
        except StorageError:
            pass  # idempotent re-apply
        database.bump_schema_version(table_name)
    else:  # pragma: no cover - future-proofing
        raise StorageError(f"unknown replication op {kind!r}")


# ---------------------------------------------------------------------------
# Promotion events
# ---------------------------------------------------------------------------


@dataclass
class PromotionEvent:
    """One replica promotion (for SHOW/bench profile surfaces)."""

    group: str
    old_primary: str
    new_primary: str
    lsn: int
    at: float = 0.0


# ---------------------------------------------------------------------------
# The group
# ---------------------------------------------------------------------------


class ReplicaGroup:
    """A primary data source plus its asynchronously trailing replicas."""

    def __init__(self, primary: "DataSource", replicas: Sequence["DataSource"] = (),
                 lag: float = 0.0, jitter: float = 0.0, seed: int = 0):
        self.name = primary.name
        self.log = ReplicationLog(self.name)
        self.primary = primary
        self.lag = lag
        self.jitter = jitter
        self.seed = seed
        self.states: dict[str, ReplicaState] = {}
        self.promotions: list[PromotionEvent] = []
        primary.replica_group = self
        primary.database.replication = self.log
        for source in replicas:
            self.add_replica(source)

    # -- membership --------------------------------------------------------

    def add_replica(self, source: "DataSource", lag: float | None = None,
                    jitter: float | None = None) -> ReplicaState:
        state = ReplicaState(
            source, self.log,
            lag=self.lag if lag is None else lag,
            jitter=self.jitter if jitter is None else jitter,
            seed=f"{self.seed}:{source.name}",
        )
        source.replica = state
        source.replica_group = self
        self.states[source.name] = state
        return state

    @property
    def replica_names(self) -> list[str]:
        return list(self.states)

    # -- lag observability --------------------------------------------------

    def last_lsn(self) -> int:
        return self.log.last_lsn

    def applied_lsn(self, name: str) -> int:
        return self.states[name].applied_lsn

    def lag_records(self, name: str) -> int:
        return self.states[name].lag_records()

    def staleness(self, name: str) -> float:
        return self.states[name].staleness()

    def covers(self, name: str, lsn: int) -> bool:
        state = self.states.get(name)
        return state is not None and state.covers(lsn)

    def lag_report(self) -> list[dict[str, Any]]:
        """One row per replica (SHOW REPLICATION LAG / bench profile)."""
        last = self.log.last_lsn
        return [
            {
                "group": self.name,
                "replica": name,
                "applied_lsn": state.applied_lsn,
                "last_lsn": last,
                "lag_records": last - state.applied_lsn,
                "staleness_s": round(state.staleness(), 6),
                "configured_lag_s": state.base_lag,
            }
            for name, state in sorted(self.states.items())
        ]

    def sync(self) -> None:
        """Force every replica fully up to date (setup / tests)."""
        for state in self.states.values():
            state.apply_all()

    # -- promotion ----------------------------------------------------------

    def promote(self, is_up: Callable[[str], bool] | None = None) -> PromotionEvent:
        """Fence the primary and promote the most-caught-up replica."""
        old = self.primary
        old.fenced = True
        old.database.replication = None
        candidates = [
            state for name, state in self.states.items()
            if is_up is None or is_up(name)
        ]
        if not candidates:
            raise DataSourceUnavailableError(
                f"replica group {self.name!r}: no promotable replica"
            )
        best = max(candidates, key=lambda s: s.applied_lsn)
        best.apply_all()  # drain the durable log: no acknowledged write lost
        source = best.source
        del self.states[source.name]
        source.replica = None
        source.fenced = False
        source.replica_group = self
        source.database.replication = self.log
        self.primary = source
        event = PromotionEvent(
            group=self.name, old_primary=old.name, new_primary=source.name,
            lsn=self.log.last_lsn, at=time.time(),
        )
        self.promotions.append(event)
        return event
