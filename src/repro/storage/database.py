"""A database: named tables plus concurrency control and failure injection.

Writes take the database write lock; the simulated I/O latency is charged
*outside* the lock so concurrent clients overlap their waits the way they
overlap real disk/network I/O. The prepared-transaction table backs XA
recovery (see :mod:`repro.storage.transaction`).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterator

from ..exceptions import (
    ExecutionError,
    StorageError,
    TableAlreadyExistsError,
    TableNotFoundError,
)
from ..sql import ast
from .latency import LatencyModel
from .plans import StoragePlanCache
from .schema import TableSchema
from .table import Table


class Database:
    """Named collection of tables within one data source."""

    def __init__(self, name: str, latency: LatencyModel | None = None):
        self.name = name
        self.latency = latency if latency is not None else LatencyModel.off()
        self._tables: dict[str, Table] = {}
        self._lock = threading.RLock()
        self._prepared: dict[str, Any] = {}
        self._fail_on: dict[str, int] = {}
        #: per-table monotonic schema versions; compiled storage plans pin
        #: the versions they were built against. Entries are never removed
        #: (DROP leaves the counter behind) so DROP + CREATE invalidates.
        self._schema_versions: dict[str, int] = {}
        #: per-table monotonic data versions (see data_version below);
        #: keys are lower-cased table names.
        self._data_versions: dict[str, int] = {}
        #: compiled statement plans for this database (see .plans).
        self.plan_cache = StoragePlanCache()
        #: rows per chunk for vectorized plan pipelines; 1 degenerates to
        #: the row-at-a-time path (useful for differential testing).
        self.batch_rows = 256
        #: optional probabilistic chaos source (see :mod:`repro.storage.faults`);
        #: set via ``DataSource.set_fault_injector`` and shared fleet-wide.
        self.fault_injector: Any | None = None
        #: the group replication log when this database is a primary in a
        #: :class:`repro.storage.replication.ReplicaGroup` (None otherwise).
        #: Committed transactions and DDL publish records to it.
        self.replication: Any | None = None
        #: statements executed against this database (queries included);
        #: the engine-level result cache's "zero storage work" claim is
        #: asserted against this counter in tests.
        self.statements_executed = 0

    # -- schema versions (compiled-plan invalidation) -----------------------

    def schema_version(self, name: str) -> int:
        return self._schema_versions.get(name.lower(), 0)

    def bump_schema_version(self, name: str) -> None:
        with self._lock:
            key = name.lower()
            self._schema_versions[key] = self._schema_versions.get(key, 0) + 1
            self._data_versions[key] = self._data_versions.get(key, 0) + 1

    # -- data versions (result-cache invalidation) --------------------------
    #
    # Bumped on every recorded row mutation (always under the database
    # write lock) and on DDL. The engine-level result cache guards each
    # entry with the (database, table, version) triples it read, so any
    # write — from this engine, another runtime sharing the storage, or
    # replication apply on a replica — invalidates by comparison.

    def data_version(self, name: str) -> int:
        return self._data_versions.get(name.lower(), 0)

    def bump_data_version(self, name: str) -> None:
        key = name.lower()
        self._data_versions[key] = self._data_versions.get(key, 0) + 1

    # -- failure injection (tests / recovery experiments) ------------------

    def fail_next(self, operation: str, times: int = 1) -> None:
        """Make the next ``times`` occurrences of ``operation`` raise.

        Operations: "prepare", "commit", "statement".
        """
        with self._lock:
            self._fail_on[operation] = self._fail_on.get(operation, 0) + times

    def maybe_fail(self, operation: str) -> None:
        # Fast path: no pending failures and no injector. Read without the
        # lock — both are set before the workload that should observe them
        # runs, so the race-free guarantee of the lock is not needed just
        # to see "nothing armed", and this check runs on every statement.
        if not self._fail_on and self.fault_injector is None:
            return
        with self._lock:
            remaining = self._fail_on.get(operation, 0)
            if remaining > 0:
                self._fail_on[operation] = remaining - 1
                raise ExecutionError(f"injected failure on {operation} in database {self.name!r}")
        injector = self.fault_injector
        if injector is not None:
            # Outside the database lock: latency faults sleep.
            injector.on_operation(self.name, operation)

    # -- locking -------------------------------------------------------------

    @contextlib.contextmanager
    def write_lock(self) -> Iterator[None]:
        with self._lock:
            yield

    # -- tables ----------------------------------------------------------------

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> Table:
        with self._lock:
            key = schema.name.lower()
            if key in self._tables:
                if if_not_exists:
                    return self._tables[key]
                raise TableAlreadyExistsError(f"table {schema.name!r} already exists in {self.name}")
            table = Table(schema)
            self._tables[key] = table
            self.bump_schema_version(key)
            if self.replication is not None:
                # Schemas are immutable after creation; sharing the object
                # with replicas is safe.
                self.replication.publish([("create_table", schema)])
            return table

    def create_table_from_ast(self, stmt: ast.CreateTableStatement) -> Table:
        return self.create_table(TableSchema.from_ast(stmt), if_not_exists=stmt.if_not_exists)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._lock:
            key = name.lower()
            if key not in self._tables:
                if if_exists:
                    return
                raise TableNotFoundError(f"table {name!r} not found in {self.name}")
            del self._tables[key]
            self.bump_schema_version(key)
            if self.replication is not None:
                self.replication.publish([("drop_table", key)])

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise TableNotFoundError(f"table {name!r} not found in {self.name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(t.schema.name for t in self._tables.values())

    # -- prepared (XA) transactions --------------------------------------------

    def park_prepared(self, xid: str, txn: Any) -> None:
        with self._lock:
            self._prepared[xid] = txn

    def take_prepared(self, xid: str) -> Any | None:
        with self._lock:
            return self._prepared.pop(xid, None)

    def prepared_xids(self) -> list[str]:
        with self._lock:
            return sorted(self._prepared)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, tables={self.table_names()})"
