"""Secondary index structures for the embedded storage engine.

A :class:`HashIndex` gives O(1) point lookups (the dominant operation in
OLTP benchmarks); a :class:`SortedIndex` supports range scans via bisect.
Both map an indexed key to the set of row ids holding it.
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Iterator

from ..exceptions import DuplicateKeyError
from .expression import sort_key


def _hashable(value: Any) -> Hashable:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


class HashIndex:
    """Equality index: key -> set of row ids."""

    def __init__(self, name: str, columns: list[str], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._map: dict[Hashable, set[int]] = {}

    def key_of(self, row: dict[str, Any]) -> Hashable:
        if len(self.columns) == 1:
            return _hashable(row[self.columns[0]])
        return tuple(_hashable(row[c]) for c in self.columns)

    def insert(self, row_id: int, row: dict[str, Any]) -> None:
        key = self.key_of(row)
        bucket = self._map.setdefault(key, set())
        if self.unique and bucket:
            raise DuplicateKeyError(
                f"duplicate key {key!r} for unique index {self.name!r}"
            )
        bucket.add(row_id)

    def remove(self, row_id: int, row: dict[str, Any]) -> None:
        key = self.key_of(row)
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._map[key]

    def lookup(self, key: Any) -> set[int]:
        return self._map.get(_hashable(key), set())

    def lookup_values(self, values_by_column: dict[str, Any]) -> set[int]:
        """Lookup from a lower-cased column->value mapping (composite keys)."""
        if len(self.columns) == 1:
            key: Any = _hashable(values_by_column[self.columns[0].lower()])
        else:
            key = tuple(_hashable(values_by_column[c.lower()]) for c in self.columns)
        return self._map.get(key, set())

    def __len__(self) -> int:
        return len(self._map)


class SortedIndex:
    """Ordered index over a single column supporting range scans."""

    def __init__(self, name: str, column: str, unique: bool = False):
        self.name = name
        self.column = column
        self.unique = unique
        # Parallel arrays kept sorted by key.
        self._keys: list[Any] = []
        self._row_ids: list[int] = []

    def _key(self, value: Any):
        return sort_key(value)

    def insert(self, row_id: int, row: dict[str, Any]) -> None:
        key = self._key(row[self.column])
        index = bisect.bisect_left(self._keys, key)
        if self.unique and index < len(self._keys) and self._keys[index] == key:
            raise DuplicateKeyError(
                f"duplicate key {row[self.column]!r} for unique index {self.name!r}"
            )
        self._keys.insert(index, key)
        self._row_ids.insert(index, row_id)

    def remove(self, row_id: int, row: dict[str, Any]) -> None:
        key = self._key(row[self.column])
        index = bisect.bisect_left(self._keys, key)
        while index < len(self._keys) and self._keys[index] == key:
            if self._row_ids[index] == row_id:
                del self._keys[index]
                del self._row_ids[index]
                return
            index += 1

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> Iterator[int]:
        """Yield row ids with key in [low, high] (open/closed per flags)."""
        if low is None:
            start = 0
        else:
            key = self._key(low)
            start = bisect.bisect_left(self._keys, key) if include_low else bisect.bisect_right(self._keys, key)
        if high is None:
            stop = len(self._keys)
        else:
            key = self._key(high)
            stop = bisect.bisect_right(self._keys, key) if include_high else bisect.bisect_left(self._keys, key)
        for i in range(start, stop):
            yield self._row_ids[i]

    def __len__(self) -> int:
        return len(self._keys)
