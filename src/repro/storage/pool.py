"""Bounded connection pool for a data source.

The sharding executor acquires whole batches of connections atomically
(Section VI-D of the paper: deadlock-free acquisition under MaxCon), so the
pool exposes both single acquire/release and ``acquire_many`` used with the
data-source lock held by the execution engine.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from ..exceptions import ConnectionPoolExhaustedError

if TYPE_CHECKING:
    from .connection import Connection
    from .engine import DataSource


class ConnectionPool:
    """Fixed-capacity pool of connections to one data source."""

    def __init__(self, data_source: "DataSource", max_size: int = 32):
        if max_size < 1:
            raise ValueError("pool max_size must be >= 1")
        self.data_source = data_source
        self.max_size = max_size
        self._idle: list["Connection"] = []
        self._in_use = 0
        self._mutex = threading.Lock()
        self._available = threading.Condition(self._mutex)
        #: observability hook: called with the measured checkout wait
        #: (seconds) after every successful acquire; None = not monitored
        self.wait_observer: Callable[[float], None] | None = None

    # -- metrics ---------------------------------------------------------

    @property
    def in_use(self) -> int:
        with self._mutex:
            return self._in_use

    @property
    def idle(self) -> int:
        with self._mutex:
            return len(self._idle)

    # -- acquisition ------------------------------------------------------

    def acquire(self, timeout: float = 10.0) -> "Connection":
        """Acquire one connection, waiting up to ``timeout`` seconds."""
        start = time.monotonic()
        deadline = start + timeout
        with self._available:
            while True:
                conn = self._try_take_locked()
                if conn is not None:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    waited = time.monotonic() - start
                    raise ConnectionPoolExhaustedError(
                        f"connection pool {self.data_source.name!r} exhausted: "
                        f"{self._in_use}/{self.max_size} connections in use, "
                        f"waited {waited * 1000:.0f}ms",
                        pool_name=self.data_source.name,
                        in_use=self._in_use,
                        max_size=self.max_size,
                        waited=waited,
                    )
                self._available.wait(remaining)
        # observer runs outside the pool lock (it may take a registry lock)
        if self.wait_observer is not None:
            self.wait_observer(time.monotonic() - start)
        return conn

    def try_acquire_many(self, count: int) -> list["Connection"] | None:
        """Atomically acquire ``count`` connections or none at all.

        Non-blocking: returns None if fewer than ``count`` are free. The
        execution engine uses this under its per-data-source lock to avoid
        the two-query deadlock described in the paper.
        """
        with self._mutex:
            free = self.max_size - self._in_use
            if free < count:
                return None
            return [self._take_one_locked() for _ in range(count)]

    def release(self, connection: "Connection") -> None:
        """Return a connection to the pool (rolls back any open work)."""
        if connection.in_transaction:
            connection.rollback()
        with self._available:
            self._in_use -= 1
            if not connection.closed:
                self._idle.append(connection)
            self._available.notify()

    def release_many(self, connections: list["Connection"]) -> None:
        for connection in connections:
            self.release(connection)

    def close(self) -> None:
        with self._mutex:
            for conn in self._idle:
                conn.close()
            self._idle.clear()

    # -- internals -----------------------------------------------------------

    def _try_take_locked(self) -> "Connection | None":
        if self._in_use >= self.max_size:
            return None
        return self._take_one_locked()

    def _take_one_locked(self) -> "Connection":
        self._in_use += 1
        while self._idle:
            conn = self._idle.pop()
            if not conn.closed:
                return conn
        return self.data_source.connect_raw()
