"""Data source facade: one "database server" in the sharded fleet.

A :class:`DataSource` bundles a database, its dialect, its latency model
and a connection pool — everything the middleware sees of one underlying
MySQL/PostgreSQL instance. ``network_hop`` adds a per-request delay that
stands in for the client<->server network distance; it is what makes
"every routed SQL crosses the network once" physically true in benchmarks.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

from ..sql import ast
from ..sql.dialects import MYSQL, Dialect
from .connection import Connection
from .database import Database
from .latency import LatencyModel, pay
from .pool import ConnectionPool

if TYPE_CHECKING:
    from .faults import FaultInjector


class DataSource:
    """One underlying database server instance."""

    def __init__(
        self,
        name: str,
        dialect: Dialect = MYSQL,
        latency: LatencyModel | None = None,
        network_hop: float = 0.0,
        pool_size: int = 64,
        io_channels: int = 4,
    ):
        self.name = name
        self.dialect = dialect
        self.database = Database(name, latency=latency)
        self.network_hop = network_hop
        self.pool = ConnectionPool(self, max_size=pool_size)
        # Finite server capacity: at most ``io_channels`` statements pay
        # their simulated I/O concurrently on this server. This is what
        # makes "more data servers -> more aggregate throughput" (Fig. 12)
        # physically true in the simulation.
        self.io_channels = io_channels
        self.io_semaphore = threading.BoundedSemaphore(io_channels)
        # Lock used by the automatic execution engine for atomic multi-
        # connection acquisition (deadlock avoidance, Section VI-D).
        self.acquisition_lock = threading.Lock()
        # -- replica-group role (see repro.storage.replication) --------
        #: True once a dead primary is fenced during promotion: further
        #: DML/DDL raises DataSourceUnavailableError.
        self.fenced = False
        #: ReplicaState when this source serves as a read replica.
        self.replica = None
        #: ReplicaGroup this source belongs to (as primary or replica).
        self.replica_group = None

    # -- fault injection ---------------------------------------------------

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Attach (or detach, with None) a chaos source to this server."""
        self.database.fault_injector = injector

    @property
    def fault_injector(self) -> "FaultInjector | None":
        return self.database.fault_injector

    # -- connections ------------------------------------------------------

    def connect_raw(self) -> Connection:
        """A brand-new connection, bypassing the pool."""
        return _NetworkedConnection(self) if self.network_hop > 0 else Connection(self)

    def connect(self) -> Connection:
        """Pooled connection acquisition."""
        return self.pool.acquire()

    def release(self, connection: Connection) -> None:
        self.pool.release(connection)

    def on_connection_closed(self, connection: Connection) -> None:
        """Hook invoked when a connection closes (metrics in subclasses)."""

    # -- convenience ---------------------------------------------------------

    def execute(self, sql: str | ast.Statement, params: Sequence[Any] = ()):
        """Run one statement on a throwaway pooled connection."""
        connection = self.connect()
        try:
            cursor = connection.execute(sql, params)
            if cursor.description is not None:
                rows = cursor.fetchall()
                result = rows
            else:
                result = cursor.rowcount
            return result
        finally:
            self.release(connection)

    @property
    def latency(self) -> LatencyModel:
        return self.database.latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataSource({self.name!r}, dialect={self.dialect.name})"


class _NetworkedConnection(Connection):
    """Connection that pays a network round-trip per statement."""

    def _run(self, stmt: ast.Statement, params: Sequence[Any],
             defer_pay: bool = False):
        pay(self.data_source.network_hop)
        return super()._run(stmt, params, defer_pay)
