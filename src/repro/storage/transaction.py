"""Local transaction support for a single data source.

Each connection owns at most one open :class:`Transaction`. DML records
undo entries; ROLLBACK replays them in reverse. XA verbs (prepare /
commit-prepared / rollback-prepared) let the distributed transaction
managers in :mod:`repro.transaction` drive 2PC against this data source:
a prepared transaction is parked in the database's prepared-transaction
table and survives the originating connection closing, which is what makes
recovery after a coordinator crash testable.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Any

from ..exceptions import TransactionError, XATransactionError
from .table import Table

if TYPE_CHECKING:
    from .database import Database


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _UndoEntry:
    __slots__ = ("kind", "table", "row_id", "row")

    def __init__(self, kind: str, table: Table, row_id: int, row: dict[str, Any] | None = None):
        self.kind = kind
        self.table = table
        self.row_id = row_id
        self.row = row


class Transaction:
    """Undo-logged unit of work against one database."""

    def __init__(self, database: "Database", xid: str | None = None):
        self.database = database
        self.xid = xid
        self.status = TxnStatus.ACTIVE
        self._undo: list[_UndoEntry] = []
        self._lock = threading.Lock()
        #: rows touched by this transaction, recorded only when the
        #: database is a replication primary: at commit the *current*
        #: images of these rows are published to the group log (see
        #: :mod:`repro.storage.replication` on why images-at-commit make
        #: replica application convergent under publish reordering).
        self._touched: dict[tuple[int, int], tuple[Table, int]] | None = (
            {} if database.replication is not None else None
        )

    def _touch(self, table: Table, row_id: int) -> None:
        if self._touched is not None:
            self._touched[(id(table), row_id)] = (table, row_id)

    # -- undo recording (called by the executor) -------------------------

    def record_insert(self, table: Table, row_id: int) -> None:
        with self._lock:
            self._undo.append(_UndoEntry("insert", table, row_id))
            self._touch(table, row_id)
        self.database.bump_data_version(table.name)

    def record_update(self, table: Table, row_id: int, old_row: dict[str, Any]) -> None:
        with self._lock:
            self._undo.append(_UndoEntry("update", table, row_id, old_row))
            self._touch(table, row_id)
        self.database.bump_data_version(table.name)

    def record_delete(self, table: Table, row_id: int, old_row: dict[str, Any]) -> None:
        with self._lock:
            self._undo.append(_UndoEntry("delete", table, row_id, old_row))
            self._touch(table, row_id)
        self.database.bump_data_version(table.name)

    @property
    def mutation_count(self) -> int:
        return len(self._undo)

    def take_undo(self) -> list[_UndoEntry]:
        """Detach the undo log (Seata-AT keeps it as the branch undo log:
        the local transaction then commits, and the detached entries allow
        later compensation via :func:`replay_undo`)."""
        with self._lock:
            undo, self._undo = self._undo, []
            return undo

    # -- 1PC ----------------------------------------------------------------

    def commit(self) -> None:
        self._check(TxnStatus.ACTIVE, TxnStatus.PREPARED)
        self.database.maybe_fail("commit")
        self.database.latency.charge_commit()
        self._undo.clear()
        self.status = TxnStatus.COMMITTED
        if self._touched:
            publish_row_images(self.database, self._touched.values())
            self._touched = None

    def rollback(self) -> None:
        if self.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            return
        with self.database.write_lock():
            for entry in reversed(self._undo):
                if entry.kind == "insert":
                    entry.table.raw_remove(entry.row_id)
                elif entry.kind == "update":
                    entry.table.raw_restore(entry.row_id, entry.row)  # type: ignore[arg-type]
                elif entry.kind == "delete":
                    entry.table.raw_reinsert(entry.row_id, entry.row)  # type: ignore[arg-type]
        self._undo.clear()
        self._touched = None
        self.status = TxnStatus.ABORTED

    # -- 2PC (XA) -------------------------------------------------------------

    def prepare(self, xid: str) -> None:
        """Phase 1: promise this transaction can commit; park it under xid."""
        self._check(TxnStatus.ACTIVE)
        self.database.maybe_fail("prepare")
        self.database.latency.charge_commit()  # prepare writes a log record
        self.xid = xid
        self.status = TxnStatus.PREPARED
        self.database.park_prepared(xid, self)

    def _check(self, *allowed: TxnStatus) -> None:
        if self.status not in allowed:
            raise TransactionError(
                f"transaction in state {self.status.value}, expected {[s.value for s in allowed]}"
            )


def publish_row_images(database: "Database",
                       touched: "Any") -> None:
    """Publish current images of touched rows to the replication log.

    Re-reads each row under the write lock so the published image is the
    committed state *now* (convergent under concurrent-commit publish
    reordering); deletes within the batch are emitted before puts so a
    row that moved row ids never transiently violates a unique index on
    the replica.
    """
    replication = database.replication
    if replication is None:
        return
    deletes: list[tuple] = []
    puts: list[tuple] = []
    with database.write_lock():
        for table, row_id in touched:
            row = table._rows.get(row_id)
            if row is None:
                deletes.append(("del", table.name, row_id))
            else:
                puts.append(("put", table.name, row_id, dict(row)))
    replication.publish(deletes + puts)


def replay_undo(database: "Database", entries: list[_UndoEntry]) -> None:
    """Apply detached undo entries in reverse (Seata-AT compensation)."""
    with database.write_lock():
        for entry in reversed(entries):
            if entry.kind == "insert":
                entry.table.raw_remove(entry.row_id)
            elif entry.kind == "update":
                entry.table.raw_restore(entry.row_id, entry.row)  # type: ignore[arg-type]
            elif entry.kind == "delete":
                entry.table.raw_reinsert(entry.row_id, entry.row)  # type: ignore[arg-type]
    if database.replication is not None and entries:
        publish_row_images(
            database, {(id(e.table), e.row_id): (e.table, e.row_id)
                       for e in entries}.values(),
        )


def commit_prepared(database: "Database", xid: str) -> None:
    """Phase 2 commit of a parked prepared transaction."""
    txn = database.take_prepared(xid)
    if txn is None:
        # Idempotent: an unknown xid means it was already completed.
        return
    try:
        txn.commit()
    except Exception as exc:  # pragma: no cover - failure injection path
        database.park_prepared(xid, txn)
        raise XATransactionError(f"commit of prepared xid {xid} failed: {exc}") from exc


def rollback_prepared(database: "Database", xid: str) -> None:
    """Phase 2 rollback of a parked prepared transaction."""
    txn = database.take_prepared(xid)
    if txn is None:
        return
    txn.rollback()
