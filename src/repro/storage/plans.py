"""Compiled storage plans: statement -> closure pipeline, cached per database.

The middleware's plan cache (PR 3) made parse/route/rewrite nearly free,
which left the embedded storage engine as the bottleneck: ``executor.py``
re-derives the access path, rebuilds per-row namespace dicts and recurses
over the WHERE AST for every execution. This module applies the same
compile-once idea one layer down.

A :class:`StoragePlan` is compiled once per statement against a
database's current schema and fuses:

- **access-path selection** — the ``_select_row_ids`` / ``_try_index``
  decision tree runs at compile time and leaves behind a point / range /
  IN / composite-key / scan closure bound directly to the index objects;
- **tuple-row pipelines** — WHERE / HAVING predicates, join conditions,
  projection, ORDER BY keys and aggregate accumulators are compiled to
  closures over raw value tuples with precomputed column offsets (no
  ``_namespaced`` dict churn per row);
- **an order-preserving path** — when a sorted index already yields rows
  in ORDER BY order the sort stage is dropped entirely.

Plans pin the schema versions of every referenced table
(:meth:`Database.schema_version`); DDL, DROP/CREATE, CREATE INDEX and
TRUNCATE bump versions, so a stale plan is recompiled on its next use
instead of serving wrong offsets. Statements carry an optional
``storage_plan_key`` attribute (the rendered SQL text) set by the
middleware's rewrite templates and by ``Cursor``; statements without one
are cached by object identity and only compiled on their second sighting
so one-shot ASTs don't churn the cache.

Compiled and interpreted execution return identical rows/rowcounts; any
shape the compiler cannot prove equivalent falls back to the interpreter
(and is negatively cached so the attempt isn't repeated).

Known, deliberate cost-model nuance: the interpreter decides constness of
``-?`` (unary minus over a placeholder) per execution based on the bound
value's type; compiled access paths treat it as non-constant. Row results
are unaffected (the full WHERE is always re-checked), only the
used-index latency accounting can differ for that rare shape.
"""

from __future__ import annotations

from itertools import chain
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from ..cache import LruCache
from ..exceptions import StorageError
from ..sql import ast
from ..sql.formatter import format_expression
from .compiler import (
    BatchFilter,
    CannotCompile,
    CompileContext,
    Getter,
    RowLayout,
    compile_batch_predicate,
    compile_predicate,
    compile_scalar,
)
from .executor import (
    QueryResult,
    _collect_aggregates,
    _conjuncts,
    _equi_join_columns,
    _freeze,
    _local_column,
    execute_statement,
)
from .expression import UNKNOWN, OrderToken, sort_key
from .table import Table

if TYPE_CHECKING:
    from .database import Database
    from .transaction import Transaction

_PLAN_KINDS = (ast.SelectStatement, ast.UpdateStatement, ast.DeleteStatement,
               ast.InsertStatement)


class StoragePlan:
    """One compiled statement: schema-version-pinned closure pipeline."""

    __slots__ = ("kind", "statement", "versions", "param_count", "runner",
                 "runner_many")

    def __init__(self, kind: str, statement: ast.Statement,
                 versions: tuple[tuple[str, int], ...], param_count: int,
                 runner: Callable[[Sequence[Any], "Transaction | None"], QueryResult],
                 runner_many: Callable[[Sequence[Sequence[Any]], "Transaction | None"],
                                       QueryResult] | None = None):
        self.kind = kind
        self.statement = statement
        self.versions = versions
        self.param_count = param_count
        self.runner = runner
        #: batched executemany entry (compiled INSERTs): all bindings in
        #: one plan invocation, one write-I/O charge for the whole batch
        self.runner_many = runner_many

    def execute(self, params: Sequence[Any],
                transaction: "Transaction | None" = None) -> QueryResult:
        return self.runner(params, transaction)

    def execute_many(self, seq_of_params: Sequence[Sequence[Any]],
                     transaction: "Transaction | None" = None) -> QueryResult:
        return self.runner_many(seq_of_params, transaction)


class _Negative:
    """Cached decision that a statement stays on the interpreter."""

    __slots__ = ("statement", "versions", "reason")

    def __init__(self, statement: ast.Statement,
                 versions: tuple[tuple[str, int], ...], reason: str):
        self.statement = statement
        self.versions = versions
        self.reason = reason


class _Seen:
    """First sighting of an identity-keyed AST; compile on the second."""

    __slots__ = ("statement",)

    def __init__(self, statement: ast.Statement):
        self.statement = statement


class StoragePlanCache:
    """Bounded LRU of compiled storage plans for one database.

    Keyed by the statement's ``storage_plan_key`` (rendered SQL text) when
    present, else by AST object identity (with the statement strongly
    referenced in the entry, so a recycled ``id()`` can never serve
    another statement's plan).
    """

    def __init__(self, capacity: int = 512):
        self._cache: LruCache[Any, Any] = LruCache(capacity)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.invalidations = 0

    def stats(self) -> dict[str, Any]:
        base = self._cache.stats()
        return {
            "size": base["size"],
            "capacity": base["capacity"],
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": base["evictions"],
            "invalidations": self.invalidations,
        }

    def clear(self) -> None:
        self._cache.clear()

    def families(self, source: str = "-"):
        """Metric families for the observability registry."""
        labels = {"source": source}
        events = {
            "hit": self.hits,
            "miss": self.misses,
            "bypass": self.bypasses,
            "invalidation": self.invalidations,
            "eviction": self._cache.evictions,
        }
        return [
            (
                "storage_plan_cache_events_total",
                "counter",
                "storage plan cache events by kind",
                [({**labels, "event": kind}, float(value))
                 for kind, value in events.items()],
            ),
            (
                "storage_plan_cache_size",
                "gauge",
                "compiled storage plans currently cached",
                [(labels, float(len(self._cache)))],
            ),
        ]


# ---------------------------------------------------------------------------
# Cache-mediated execution (the Connection entry point)
# ---------------------------------------------------------------------------


def execute_planned(
    database: "Database",
    stmt: ast.Statement,
    params: Sequence[Any] = (),
    transaction: "Transaction | None" = None,
) -> tuple[QueryResult, str]:
    """Execute via a compiled plan when possible.

    Returns ``(result, status)`` where status is one of ``hit`` / ``miss``
    (compiled now) / ``bypass`` (interpreted) / ``off``.
    """
    cache = database.plan_cache
    if not cache.enabled:
        return execute_statement(database, stmt, params, transaction), "off"
    if not isinstance(stmt, _PLAN_KINDS):
        # DDL / TCL: no compiled form; skip all cache traffic so
        # write-heavy workloads don't churn markers through the LRU.
        cache.bypasses += 1
        return execute_statement(database, stmt, params, transaction), "bypass"
    if isinstance(stmt, ast.InsertStatement) and not params:
        # Literal-only INSERTs (bulk loads) have unique SQL texts: caching
        # them would churn one-shot plans through the LRU. Only the
        # parameterized form is worth compiling.
        cache.bypasses += 1
        return execute_statement(database, stmt, params, transaction), "bypass"
    key = getattr(stmt, "storage_plan_key", None)
    identity = key is None
    if identity:
        key = ("id", id(stmt))
    entry = cache._cache.get(key)
    if identity and entry is not None and entry.statement is not stmt:
        entry = None  # id() recycled by the allocator: dead statement's slot
    if entry is None:
        if identity:
            # One-shot ASTs (cold middleware path, ad-hoc queries) are not
            # worth a compile; promote only statements seen twice.
            cache._cache.put(key, _Seen(stmt))
            cache.bypasses += 1
            return execute_statement(database, stmt, params, transaction), "bypass"
        return _compile_into(cache, key, database, stmt, params, transaction)
    if isinstance(entry, _Seen):
        return _compile_into(cache, key, database, stmt, params, transaction)
    if not _versions_current(database, entry.versions):
        cache.invalidations += 1
        return _compile_into(cache, key, database, stmt, params, transaction)
    if isinstance(entry, _Negative):
        cache.bypasses += 1
        return execute_statement(database, stmt, params, transaction), "bypass"
    if len(params) < entry.param_count:
        # The interpreter resolves short binds per evaluation (with
        # short-circuiting); defer to it rather than model that here.
        cache.bypasses += 1
        return execute_statement(database, stmt, params, transaction), "bypass"
    cache.hits += 1
    return entry.execute(params, transaction), "hit"


def _compile_into(cache: StoragePlanCache, key: Any, database: "Database",
                  stmt: ast.Statement, params: Sequence[Any],
                  transaction: "Transaction | None") -> tuple[QueryResult, str]:
    entry = _compile_entry(database, stmt)
    cache._cache.put(key, entry)
    if isinstance(entry, _Negative):
        cache.bypasses += 1
        return execute_statement(database, stmt, params, transaction), "bypass"
    if len(params) < entry.param_count:
        cache.bypasses += 1
        return execute_statement(database, stmt, params, transaction), "bypass"
    cache.misses += 1
    return entry.execute(params, transaction), "miss"


def execute_planned_many(
    database: "Database",
    stmt: ast.Statement,
    seq_of_params: Sequence[Sequence[Any]],
    transaction: "Transaction | None" = None,
) -> tuple[QueryResult, str]:
    """Batched executemany entry: one plan invocation for all bindings.

    Compiled INSERTs run every binding through ``runner_many`` — a single
    plan call charging one write-I/O for the whole batch (the multi-row
    INSERT cost model). Statements without a batched runner fall back to
    per-binding planned execution, accumulating the rowcount; the combined
    result then reports the summed cost with one coalesced write-I/O slice
    so the connection can pay it once.
    """
    cache = database.plan_cache
    seq = [tuple(params) for params in seq_of_params]
    if (cache.enabled and isinstance(stmt, ast.InsertStatement) and seq
            and all(seq)):
        key = getattr(stmt, "storage_plan_key", None)
        if key is not None:
            entry = cache._cache.get(key)
            status = "hit"
            if entry is None or isinstance(entry, _Seen):
                entry = _compile_entry(database, stmt)
                cache._cache.put(key, entry)
                status = "miss"
            elif not _versions_current(database, entry.versions):
                cache.invalidations += 1
                entry = _compile_entry(database, stmt)
                cache._cache.put(key, entry)
                status = "miss"
            if (isinstance(entry, StoragePlan) and entry.runner_many is not None
                    and all(len(params) >= entry.param_count for params in seq)):
                if status == "hit":
                    cache.hits += 1
                else:
                    cache.misses += 1
                return entry.runner_many(seq, transaction), status
    # Per-binding fallback: still one call site, costs coalesced by caller.
    total = 0
    counted = False
    cost = 0.0
    write_io = 0.0
    written = None
    last: QueryResult | None = None
    status = "bypass"
    for params in seq:
        last, status = execute_planned(database, stmt, params, transaction)
        if last.rowcount >= 0:
            counted = True
            total += last.rowcount
        cost += last.cost - last.write_cost
        if last.written_table is not None:
            written = last.written_table
            write_io = max(write_io, last.write_cost)
    if last is None:
        return QueryResult(rowcount=0), "bypass"
    return QueryResult(
        columns=last.columns, rows=last.rows,
        rowcount=total if counted else -1,
        cost=cost + write_io, written_table=written, write_cost=write_io,
    ), status


def _versions_current(database: "Database",
                      versions: tuple[tuple[str, int], ...]) -> bool:
    current = database.schema_version
    for name, version in versions:
        if current(name) != version:
            return False
    return True


def _compile_entry(database: "Database", stmt: ast.Statement):
    """Compile to a StoragePlan, or a version-pinned _Negative on failure."""
    if isinstance(stmt, ast.SelectStatement):
        names = [ref.name for ref in stmt.tables()]
    else:
        names = [stmt.table.name]
    pinned: dict[str, int] = {}
    for name in names:
        pinned.setdefault(name.lower(), database.schema_version(name))
    versions = tuple(pinned.items())
    try:
        return compile_storage_plan(database, stmt, versions)
    except CannotCompile as exc:
        return _Negative(stmt, versions, str(exc))
    except Exception as exc:  # missing table/column, unsupported shapes:
        # the interpreter raises the canonical error on the fallback run.
        return _Negative(stmt, versions, f"{type(exc).__name__}: {exc}")


def compile_storage_plan(database: "Database", stmt: ast.Statement,
                         versions: tuple[tuple[str, int], ...]) -> StoragePlan:
    runner_many = None
    if isinstance(stmt, ast.SelectStatement):
        runner, param_count = _compile_select(database, stmt)
        kind = "select"
    elif isinstance(stmt, ast.UpdateStatement):
        runner, param_count = _compile_update(database, stmt)
        kind = "update"
    elif isinstance(stmt, ast.DeleteStatement):
        runner, param_count = _compile_delete(database, stmt)
        kind = "delete"
    elif isinstance(stmt, ast.InsertStatement):
        runner, runner_many, param_count = _compile_insert(database, stmt)
        kind = "insert"
    else:
        raise CannotCompile(f"statement type {type(stmt).__name__}")
    return StoragePlan(kind, stmt, versions, param_count, runner, runner_many)


# ---------------------------------------------------------------------------
# Access paths (compile-time mirror of executor._select_row_ids)
# ---------------------------------------------------------------------------


class _AccessPath:
    __slots__ = ("run", "ordered_by", "is_scan")

    def __init__(self, run: Callable[[Sequence[Any]], tuple[list[int], bool]],
                 ordered_by: str | None, is_scan: bool):
        self.run = run
        self.ordered_by = ordered_by  # lower-cased column the ids ascend by
        self.is_scan = is_scan


def _const_getter(expr: ast.Expression) -> Callable[[Sequence[Any]], Any] | None:
    """Compile-time mirror of executor._const (see module docstring for
    the unary-minus-over-placeholder nuance)."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda params: value
    if isinstance(expr, ast.Placeholder):
        index = expr.index
        return lambda params: params[index]
    if (isinstance(expr, ast.UnaryOp) and expr.op == "-"
            and isinstance(expr.operand, ast.Literal)
            and isinstance(expr.operand.value, (int, float))):
        negated = -expr.operand.value
        return lambda params: negated
    return None


_RANGE_BOUNDS = {
    "<": lambda v: (None, v, True, False),
    "<=": lambda v: (None, v, True, True),
    ">": lambda v: (v, None, False, True),
    ">=": lambda v: (v, None, True, True),
}


def _compile_access(table: Table, exposed: str,
                    where: ast.Expression | None) -> _AccessPath:
    if where is not None:
        predicates = list(_conjuncts(where))
        equalities: dict[str, Callable[[Sequence[Any]], Any]] = {}
        for predicate in predicates:
            if isinstance(predicate, ast.BinaryOp) and predicate.op == "=":
                for col_expr, val_expr in (
                    (predicate.left, predicate.right),
                    (predicate.right, predicate.left),
                ):
                    column = _local_column(col_expr, table, exposed)
                    if column is None:
                        continue
                    getter = _const_getter(val_expr)
                    if getter is not None:
                        equalities[column.lower()] = getter
                    break
        if len(equalities) >= 2:
            index = table.covering_index(set(equalities))
            if index is not None:
                pairs = tuple(equalities.items())

                def run_composite(params: Sequence[Any]) -> tuple[list[int], bool]:
                    values = {col: g(params) for col, g in pairs}
                    return sorted(index.lookup_values(values)), True

                return _AccessPath(run_composite, None, False)
        for predicate in predicates:
            path = _compile_try_index(table, exposed, predicate)
            if path is not None:
                return path
    return _AccessPath(lambda params: (table.row_ids(), False), None, True)


def _compile_try_index(table: Table, exposed: str,
                       predicate: ast.Expression) -> _AccessPath | None:
    if isinstance(predicate, ast.BinaryOp) and predicate.op in ("=", "<", ">", "<=", ">="):
        column = _local_column(predicate.left, table, exposed)
        value_expr = predicate.right
        op = predicate.op
        if column is None:
            column = _local_column(predicate.right, table, exposed)
            value_expr = predicate.left
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        if column is None:
            return None
        getter = _const_getter(value_expr)
        if getter is None:
            return None
        if op == "=":
            hash_index = table.equality_index(column)
            if hash_index is not None:
                def run_point(params: Sequence[Any]) -> tuple[list[int], bool]:
                    return sorted(hash_index.lookup(getter(params))), True

                return _AccessPath(run_point, None, False)
            sorted_index = table.sorted_index(column)
            if sorted_index is not None:
                def run_eq_range(params: Sequence[Any]) -> tuple[list[int], bool]:
                    value = getter(params)
                    return list(sorted_index.range(value, value)), True

                return _AccessPath(run_eq_range, None, False)
            return None
        sorted_index = table.sorted_index(column)
        if sorted_index is None:
            return None
        bounds = _RANGE_BOUNDS[op]

        def run_range(params: Sequence[Any]) -> tuple[list[int], bool]:
            return list(sorted_index.range(*bounds(getter(params)))), True

        return _AccessPath(run_range, column.lower(), False)
    if isinstance(predicate, ast.InExpr) and not predicate.negated:
        column = _local_column(predicate.operand, table, exposed)
        if column is None or column.lower() not in table.indexed_columns():
            return None
        getters = []
        for item in predicate.items:
            getter = _const_getter(item)
            if getter is None:
                return None
            getters.append(getter)
        hash_index = table.equality_index(column)
        if hash_index is None:
            return None
        in_getters = tuple(getters)

        def run_in(params: Sequence[Any]) -> tuple[list[int], bool]:
            ids: list[int] = []
            for g in in_getters:
                found = hash_index.lookup(g(params))
                if found:
                    ids.extend(found)
            return sorted(set(ids)), True

        return _AccessPath(run_in, None, False)
    if isinstance(predicate, ast.BetweenExpr) and not predicate.negated:
        column = _local_column(predicate.operand, table, exposed)
        if column is None:
            return None
        low_getter = _const_getter(predicate.low)
        high_getter = _const_getter(predicate.high)
        if low_getter is None or high_getter is None:
            return None
        sorted_index = table.sorted_index(column)
        if sorted_index is None:
            return None

        def run_between(params: Sequence[Any]) -> tuple[list[int], bool]:
            return list(sorted_index.range(low_getter(params), high_getter(params))), True

        return _AccessPath(run_between, column.lower(), False)
    return None


def _reversed_path(path: _AccessPath) -> _AccessPath:
    inner = path.run

    def run(params: Sequence[Any]) -> tuple[list[int], bool]:
        ids, used_index = inner(params)
        ids = list(ids)
        ids.reverse()
        return ids, used_index

    return _AccessPath(run, path.ordered_by, path.is_scan)


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


def _compile_select(database: "Database", stmt: ast.SelectStatement):
    if stmt.from_table is None:
        raise CannotCompile("SELECT without FROM")
    base_ref = stmt.from_table
    base_table = database.table(base_ref.name)
    layout = RowLayout()
    layout.add(base_ref.exposed_name, base_table.schema.column_names)

    access = _compile_access(base_table, base_ref.exposed_name, stmt.where)

    scan_ctx = CompileContext("scan", layout)
    join_steps = []
    join_tables: list[Table] = []
    for join in stmt.joins:
        join_steps.append(_compile_join(database, join, layout, scan_ctx))
        join_tables.append(database.table(join.table.name))
    where_batch = (compile_batch_predicate(stmt.where, scan_ctx)
                   if stmt.where is not None else None)

    # Aggregate mode is decided by select-list aggregates (mirrors
    # _execute_select); the accumulator slots also cover HAVING/ORDER BY
    # aggregates (mirrors _collect_aggregates).
    has_agg = bool(stmt.group_by or stmt.aggregates())
    aggregates = _collect_aggregates(stmt) if has_agg else []
    contexts = [scan_ctx]

    if has_agg:
        agg_slots = {format_expression(call): i for i, call in enumerate(aggregates)}
        out_ctx = CompileContext("group", layout, agg_slots)
        contexts.append(out_ctx)
        agg_specs = tuple(_CompiledAgg(call, scan_ctx) for call in aggregates)
        group_getters = tuple(compile_scalar(e, scan_ctx) for e in stmt.group_by)
        having_pred = (compile_predicate(stmt.having, out_ctx)
                       if stmt.having is not None else None)
        aggregate_stage = _make_aggregate_stage(agg_specs, group_getters, having_pred)
        plain_having = None
    else:
        out_ctx = scan_ctx
        aggregate_stage = None
        plain_having = (compile_batch_predicate(stmt.having, scan_ctx)
                        if stmt.having is not None else None)

    # ORDER BY: resolve select-list aliases like executor._order_value,
    # then compile each key in the output context.
    order_specs: list[tuple[Getter, bool, ast.Expression]] = []
    for item in stmt.order_by:
        expr = item.expression
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for select_item in stmt.select_items:
                if select_item.alias and select_item.alias.lower() == expr.name.lower():
                    expr = select_item.expression
                    break
        order_specs.append((compile_scalar(expr, out_ctx), item.desc, expr))

    # Order-preserving access: when a sorted index already yields the
    # single ORDER BY key's order, drop the sort stage (and for a plain
    # scan, walk the index instead of the heap — same rows, no sort).
    sort_stage = _make_sort_stage(order_specs)
    if order_specs and len(order_specs) == 1 and not has_agg and not stmt.joins:
        key_expr = order_specs[0][2]
        desc = order_specs[0][1]
        if isinstance(key_expr, ast.ColumnRef):
            column = _local_column(key_expr, base_table, base_ref.exposed_name)
            if column is not None:
                lower = column.lower()
                ordered = None
                if access.ordered_by == lower:
                    ordered = access
                elif access.is_scan:
                    sorted_index = base_table.sorted_index(column)
                    if sorted_index is not None:
                        def run_ordered_scan(params: Sequence[Any],
                                             _index=sorted_index) -> tuple[list[int], bool]:
                            return list(_index.range(None, None)), False

                        ordered = _AccessPath(run_ordered_scan, lower, True)
                if ordered is not None:
                    access = _reversed_path(ordered) if desc else ordered
                    sort_stage = None

    distinct_stage = (_make_distinct_stage(stmt, out_ctx, has_agg)
                      if stmt.distinct else None)

    if stmt.limit is not None:
        const_ctx = CompileContext("const")
        contexts.append(const_ctx)
        limit_stage = _make_limit_stage(stmt.limit, const_ctx)
    else:
        limit_stage = None

    columns, project = _compile_projection(stmt, database, layout, out_ctx, has_agg)

    latency = database.latency
    use_where_inline = not stmt.joins  # join plans filter after all joins

    def base_batches(row_ids: list[int], params: Sequence[Any],
                     n: int) -> Iterator[list]:
        """Read rows chunk-at-a-time; the WHERE filter runs per chunk
        (one fused-predicate comprehension instead of per-row calls)."""
        get = base_table.get
        inline = where_batch if use_where_inline else None
        for start in range(0, len(row_ids), n):
            batch = []
            append = batch.append
            for row_id in row_ids[start:start + n]:
                try:
                    raw = get(row_id)
                except KeyError:
                    continue
                append(tuple(raw.values()))
            if inline is not None:
                batch = inline(batch, params)
            if batch:
                yield batch

    def run(params: Sequence[Any],
            transaction: "Transaction | None" = None) -> QueryResult:
        row_ids, used_index = access.run(params)
        base_rows = base_table.row_count
        examined = len(row_ids) if used_index else base_rows
        for join_table in join_tables:
            examined += join_table.row_count
        cost = latency.statement_cost(base_rows, examined, used_index)

        n = database.batch_rows
        batches: Iterator[list] = base_batches(row_ids, params, n if n > 0 else 1)
        for step in join_steps:
            batches = step(batches, params)
        if join_steps and where_batch is not None:
            post_filter = where_batch
            batches = (kept for b in batches
                       if (kept := post_filter(b, params)))
        if aggregate_stage is not None:
            batches = aggregate_stage(batches, params)
        elif plain_having is not None:
            having_filter = plain_having
            batches = (kept for b in batches
                       if (kept := having_filter(b, params)))
        if sort_stage is not None:
            batches = sort_stage(batches, params)
        if distinct_stage is not None:
            batches = distinct_stage(batches, params)
        if limit_stage is not None:
            batches = limit_stage(batches, params)
        projected = ([project(r, params) for r in batch] for batch in batches)
        return QueryResult(columns=columns,
                           rows=chain.from_iterable(projected), cost=cost)

    param_count = max(ctx.param_count for ctx in contexts)
    return run, param_count


def _order_norm(value: Any) -> Any:
    return None if value is UNKNOWN else value


def _make_sort_stage(order_specs):
    """Batch stage: flatten all chunks, sort once, emit one chunk."""
    if not order_specs:
        return None
    if len(order_specs) == 1:
        getter, desc, _ = order_specs[0]

        def sort_in_place(materialized: list, params: Sequence[Any]) -> None:
            materialized.sort(
                key=lambda r: sort_key(_order_norm(getter(r, params))),
                reverse=desc,
            )
    elif not any(desc for _, desc, _ in order_specs):
        getters = tuple(g for g, _, _ in order_specs)

        def sort_in_place(materialized: list, params: Sequence[Any]) -> None:
            materialized.sort(
                key=lambda r: tuple(sort_key(_order_norm(g(r, params)))
                                    for g in getters)
            )
    else:
        specs = tuple((g, desc) for g, desc, _ in order_specs)

        def sort_in_place(materialized: list, params: Sequence[Any]) -> None:
            materialized.sort(
                key=lambda r: tuple(OrderToken(_order_norm(g(r, params)), d)
                                    for g, d in specs)
            )

    def sort_stage(batches: Iterator[list], params: Sequence[Any]) -> Iterator[list]:
        materialized = list(chain.from_iterable(batches))
        sort_in_place(materialized, params)
        if materialized:
            yield materialized

    return sort_stage


def _compile_join(database: "Database", join: ast.Join, layout: RowLayout,
                  ctx: CompileContext):
    if join.kind == "RIGHT":
        raise CannotCompile("RIGHT JOIN")
    right_table = database.table(join.table.name)
    right_name = join.table.exposed_name
    right_cols = right_table.schema.column_names
    right_width = len(right_cols)
    left_join = join.kind == "LEFT"

    eq = _equi_join_columns(join.condition, right_name) if join.condition else None
    left_key: Getter | None = None
    key_pos: int | None = None
    if eq is not None:
        left_expr, right_col = eq
        try:
            # The interpreter's bucket build reads raw.get(b.name): exact
            # key match. A miss buckets every row under None, which the
            # left-key `is not None` guard then never matches.
            key_pos = right_cols.index(right_col)
        except ValueError:
            key_pos = None
        try:
            left_key = compile_scalar(left_expr, ctx)
        except CannotCompile:
            # The interpreter maps per-row resolution errors to key=None;
            # statically unresolvable means that happens for every row.
            left_key = None

    layout.add(right_name, right_cols)
    condition = (compile_predicate(join.condition, ctx)
                 if join.condition is not None else None)
    null_row = (None,) * right_width

    if eq is not None:
        def hash_join(batches: Iterator[list], params: Sequence[Any]) -> Iterator[list]:
            # Build once per execution (first consumption), probe per chunk.
            right_rows = [tuple(raw.values()) for _, raw in right_table.scan()]
            buckets: dict[Any, list[tuple]] = {}
            if key_pos is None:
                buckets[None] = right_rows
            else:
                for right_row in right_rows:
                    buckets.setdefault(_freeze(right_row[key_pos]), []).append(right_row)
            for batch in batches:
                out: list[tuple] = []
                append = out.append
                for left in batch:
                    if left_key is None:
                        key = None
                    else:
                        try:
                            key = _freeze(left_key(left, params))
                        except StorageError:
                            key = None
                    matched = buckets.get(key, ()) if key is not None else ()
                    emitted = False
                    for right_row in matched:
                        combined = left + right_row
                        if condition is None or condition(combined, params):
                            emitted = True
                            append(combined)
                    if not emitted and left_join:
                        append(left + null_row)
                if out:
                    yield out

        return hash_join

    def nested_loop(batches: Iterator[list], params: Sequence[Any]) -> Iterator[list]:
        right_rows = [tuple(raw.values()) for _, raw in right_table.scan()]
        for batch in batches:
            out: list[tuple] = []
            append = out.append
            for left in batch:
                emitted = False
                for right_row in right_rows:
                    combined = left + right_row
                    if condition is None or condition(combined, params):
                        emitted = True
                        append(combined)
                if not emitted and left_join:
                    append(left + null_row)
            if out:
                yield out

    return nested_loop


class _CompiledAgg:
    """Compiled accumulator mirroring executor._AggState.

    State is a 5-slot list: [count, total, minimum, maximum, distinct_set].
    """

    __slots__ = ("name", "count_star", "distinct", "arg")

    def __init__(self, call: ast.FunctionCall, ctx: CompileContext):
        self.name = call.name.upper()
        if self.name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise CannotCompile(f"aggregate {self.name!r}")
        self.count_star = (self.name == "COUNT" and bool(call.args)
                           and isinstance(call.args[0], ast.Star))
        self.distinct = call.distinct
        self.arg = (compile_scalar(call.args[0], ctx)
                    if call.args and not self.count_star else None)

    def new_state(self) -> list:
        return [0, None, None, None, set() if self.distinct else None]

    def accumulate(self, state: list, row: Any, params: Sequence[Any]) -> None:
        if self.count_star:
            state[0] += 1
            return
        value = self.arg(row, params) if self.arg is not None else None
        if value is None or value is UNKNOWN:
            return
        if state[4] is not None:
            frozen = _freeze(value)
            if frozen in state[4]:
                return
            state[4].add(frozen)
        state[0] += 1
        name = self.name
        if name in ("SUM", "AVG"):
            state[1] = value if state[1] is None else state[1] + value
        elif name == "MIN":
            state[2] = value if state[2] is None else min(state[2], value, key=sort_key)
        elif name == "MAX":
            state[3] = value if state[3] is None else max(state[3], value, key=sort_key)

    def result(self, state: list) -> Any:
        name = self.name
        if name == "COUNT":
            return state[0]
        if name == "SUM":
            return state[1]
        if name == "AVG":
            return None if state[0] == 0 or state[1] is None else state[1] / state[0]
        if name == "MIN":
            return state[2]
        return state[3]


def _make_aggregate_stage(agg_specs, group_getters, having_pred):
    def aggregate(batches: Iterator[list], params: Sequence[Any]) -> Iterator[list]:
        groups: dict[tuple, tuple] = {}
        order: list[tuple] = []
        for batch in batches:
            for row in batch:
                if group_getters:
                    key = tuple(_freeze(g(row, params)) for g in group_getters)
                else:
                    key = ()
                state = groups.get(key)
                if state is None:
                    state = (row, [spec.new_state() for spec in agg_specs])
                    groups[key] = state
                    order.append(key)
                states = state[1]
                for spec, agg_state in zip(agg_specs, states):
                    spec.accumulate(agg_state, row, params)
        if not groups and not group_getters:
            # Aggregates over empty input still yield one row (COUNT -> 0);
            # sample=None makes column refs raise like the interpreter.
            groups[()] = (None, [spec.new_state() for spec in agg_specs])
            order.append(())
        out: list = []
        for key in order:
            sample, states = groups[key]
            row = (sample, tuple(spec.result(agg_state)
                                 for spec, agg_state in zip(agg_specs, states)))
            if having_pred is None or having_pred(row, params):
                out.append(row)
        if out:
            yield out

    return aggregate


def _make_distinct_stage(stmt: ast.SelectStatement, ctx: CompileContext,
                         has_agg: bool):
    key_getters: list[Getter | None] = []
    for item in stmt.select_items:
        if isinstance(item.expression, ast.Star):
            key_getters.append(None)  # whole-row component
        else:
            key_getters.append(compile_scalar(item.expression, ctx))
    getters = tuple(key_getters)

    if has_agg:
        def whole_row(row: Any) -> Any:
            sample = (tuple(_freeze(v) for v in row[0])
                      if row[0] is not None else None)
            return (sample, tuple(_freeze(v) for v in row[1]))
    else:
        def whole_row(row: Any) -> Any:
            return tuple(_freeze(v) for v in row)

    def distinct(batches: Iterator[list], params: Sequence[Any]) -> Iterator[list]:
        seen: set[tuple] = set()
        add = seen.add
        for batch in batches:
            out: list = []
            append = out.append
            for row in batch:
                key = tuple(
                    whole_row(row) if g is None else _freeze(g(row, params))
                    for g in getters
                )
                if key not in seen:
                    add(key)
                    append(row)
            if out:
                yield out

    return distinct


def _make_limit_stage(limit: ast.Limit, ctx: CompileContext):
    offset_getter = (compile_scalar(limit.offset, ctx)
                     if limit.offset is not None else None)
    count_getter = (compile_scalar(limit.count, ctx)
                    if limit.count is not None else None)

    def apply_limit(batches: Iterator[list], params: Sequence[Any]) -> Iterator[list]:
        offset = int(offset_getter(None, params)) if offset_getter is not None else 0
        count = int(count_getter(None, params)) if count_getter is not None else None
        skipped = 0
        emitted = 0
        for batch in batches:
            if skipped < offset:
                if skipped + len(batch) <= offset:
                    skipped += len(batch)
                    continue
                batch = batch[offset - skipped:]
                skipped = offset
            if count is not None:
                take = count - emitted
                if take <= 0:
                    return
                if len(batch) > take:
                    batch = batch[:take]
            emitted += len(batch)
            if batch:
                yield batch
            if count is not None and emitted >= count:
                return

    return apply_limit


def _compile_projection(stmt: ast.SelectStatement, database: "Database",
                        layout: RowLayout, ctx: CompileContext, has_agg: bool):
    columns: list[str] = []
    getters: list[Getter] = []
    for item in stmt.select_items:
        expr = item.expression
        if isinstance(expr, ast.Star):
            for ref in stmt.tables():
                if expr.table and ref.exposed_name.lower() != expr.table.lower():
                    continue
                schema = database.table(ref.name).schema
                base, slot_cols = layout.slot_of(ref.exposed_name)
                if slot_cols != schema.column_names:
                    raise CannotCompile("star layout mismatch")
                for i, col_name in enumerate(schema.column_names):
                    columns.append(col_name)
                    offset = base + i
                    if has_agg:
                        # Mirrors _make_star_getter's row.get(): missing
                        # sample yields None, never raises.
                        getters.append(
                            lambda row, params, _i=offset:
                            row[0][_i] if row[0] is not None else None
                        )
                    else:
                        getters.append(lambda row, params, _i=offset: row[_i])
            continue
        columns.append(item.output_name)
        getter = compile_scalar(expr, ctx)

        def normalized(row: Any, params: Sequence[Any], _g=getter) -> Any:
            value = _g(row, params)
            return None if value is UNKNOWN else value

        getters.append(normalized)
    project_getters = tuple(getters)

    def project(row: Any, params: Sequence[Any]) -> tuple:
        return tuple(g(row, params) for g in project_getters)

    return columns, project


# ---------------------------------------------------------------------------
# UPDATE / DELETE
# ---------------------------------------------------------------------------


def _candidate_batches(table: Table, row_ids: list[int], n: int,
                       where_batch: BatchFilter | None,
                       params: Sequence[Any]) -> Iterator[list]:
    """Chunked (row + row_id) candidates for DML, batch-filtered.

    Each candidate tuple is the raw value tuple with its row id appended
    one slot past the layout width — compiled getters only read layout
    offsets, so the extra element is invisible to predicates/assignments.
    Rows are snapshotted before any mutation in the chunk; each candidate
    is visited exactly once and mutations only touch the visited row, so
    chunked read-then-write is equivalent to the row-at-a-time loop.
    """
    get = table.get
    for start in range(0, len(row_ids), n):
        batch = []
        append = batch.append
        for row_id in row_ids[start:start + n]:
            try:
                raw = get(row_id)
            except KeyError:
                continue
            append(tuple(raw.values()) + (row_id,))
        if where_batch is not None:
            batch = where_batch(batch, params)
        if batch:
            yield batch


def _compile_update(database: "Database", stmt: ast.UpdateStatement):
    table = database.table(stmt.table.name)
    exposed = stmt.table.exposed_name
    layout = RowLayout()
    layout.add(exposed, table.schema.column_names)
    ctx = CompileContext("scan", layout)
    where_batch = (compile_batch_predicate(stmt.where, ctx)
                   if stmt.where is not None else None)
    assignments = tuple(
        (column, compile_scalar(expr, ctx)) for column, expr in stmt.assignments
    )
    access = _compile_access(table, exposed, stmt.where)
    latency = database.latency

    def run(params: Sequence[Any],
            transaction: "Transaction | None") -> QueryResult:
        txn = _require_txn(transaction)
        row_ids, used_index = access.run(params)
        updated = 0
        n = database.batch_rows
        for batch in _candidate_batches(table, row_ids, n if n > 0 else 1,
                                        where_batch, params):
            for row in batch:
                changes = {column: g(row, params) for column, g in assignments}
                old_row = table.update(row[-1], changes)
                txn.record_update(table, row[-1], old_row)
            updated += len(batch)
        examined = len(row_ids) if used_index else table.row_count
        cost = latency.statement_cost(table.row_count, examined + updated, used_index)
        io = latency.write_cost(table.row_count) if updated else 0.0
        return QueryResult(rowcount=updated, cost=cost + io,
                           written_table=table, write_cost=io)

    return run, ctx.param_count


def _compile_delete(database: "Database", stmt: ast.DeleteStatement):
    table = database.table(stmt.table.name)
    exposed = stmt.table.exposed_name
    layout = RowLayout()
    layout.add(exposed, table.schema.column_names)
    ctx = CompileContext("scan", layout)
    where_batch = (compile_batch_predicate(stmt.where, ctx)
                   if stmt.where is not None else None)
    access = _compile_access(table, exposed, stmt.where)
    latency = database.latency

    def run(params: Sequence[Any],
            transaction: "Transaction | None") -> QueryResult:
        txn = _require_txn(transaction)
        row_ids, used_index = access.run(params)
        deleted = 0
        n = database.batch_rows
        for batch in _candidate_batches(table, row_ids, n if n > 0 else 1,
                                        where_batch, params):
            for row in batch:
                old_row = table.delete(row[-1])
                txn.record_delete(table, row[-1], old_row)
            deleted += len(batch)
        examined = len(row_ids) if used_index else table.row_count
        cost = latency.statement_cost(table.row_count, examined + deleted, used_index)
        io = latency.write_cost(table.row_count) if deleted else 0.0
        return QueryResult(rowcount=deleted, cost=cost + io,
                           written_table=table, write_cost=io)

    return run, ctx.param_count


# ---------------------------------------------------------------------------
# INSERT
# ---------------------------------------------------------------------------


def _compile_insert(database: "Database", stmt: ast.InsertStatement):
    """Compiled parameterized INSERT: per-row value getters bound in a
    constant context (column references cannot compile, matching the
    interpreter's empty row namespace), plus a batched ``runner_many``
    that executes every executemany binding in one plan invocation and
    charges write I/O once for the whole batch — the same amortization
    the interpreter already applies to one multi-row INSERT statement.
    """
    table = database.table(stmt.table.name)
    columns = tuple(stmt.columns or table.schema.column_names)
    ctx = CompileContext("const")
    row_specs = []
    for row_exprs in stmt.values_rows:
        if len(row_exprs) != len(columns):
            # Interpreter raises ExecutionError per execution; fall back.
            raise CannotCompile("INSERT column/value count mismatch")
        row_specs.append(tuple(compile_scalar(expr, ctx) for expr in row_exprs))
    specs = tuple(row_specs)
    latency = database.latency

    def insert_rows(params: Sequence[Any], txn: "Transaction") -> int:
        inserted = 0
        insert = table.insert
        record = txn.record_insert
        for getters in specs:
            values = {col: g(None, params) for col, g in zip(columns, getters)}
            row_id, _ = insert(values)
            record(table, row_id)
            inserted += 1
        return inserted

    def run(params: Sequence[Any],
            transaction: "Transaction | None") -> QueryResult:
        txn = _require_txn(transaction)
        inserted = insert_rows(params, txn)
        cost = latency.statement_cost(table.row_count, inserted, uses_index=True)
        io = latency.write_cost(table.row_count)
        return QueryResult(rowcount=inserted, cost=cost + io,
                           written_table=table, write_cost=io)

    def run_many(seq_of_params: Sequence[Sequence[Any]],
                 transaction: "Transaction | None") -> QueryResult:
        txn = _require_txn(transaction)
        inserted = 0
        for params in seq_of_params:
            inserted += insert_rows(params, txn)
        cost = latency.statement_cost(table.row_count, inserted, uses_index=True)
        io = latency.write_cost(table.row_count) if inserted else 0.0
        return QueryResult(rowcount=inserted, cost=cost + io,
                           written_table=table, write_cost=io)

    return run, run_many, ctx.param_count


def _require_txn(transaction: "Transaction | None") -> "Transaction":
    if transaction is None:
        from ..exceptions import ExecutionError

        raise ExecutionError("DML requires an active transaction context")
    return transaction
