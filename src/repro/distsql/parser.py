"""DistSQL parser (Section V-A): RDL, RQL and RAL statements.

DistSQL is not standard SQL, so it gets its own small parser on top of the
shared lexer. Supported grammar (case-insensitive):

RDL (Resource & Rule Definition Language)::

    REGISTER RESOURCE ds0 [(PROPERTIES("dialect"='MySQL'))] [, ds1 ...]
    UNREGISTER RESOURCE ds0
    CREATE|ALTER SHARDING TABLE RULE t_user (
        RESOURCES(ds0, ds1),
        SHARDING_COLUMN=uid, TYPE=hash_mod,
        PROPERTIES("sharding-count"=2)
        [, KEY_GENERATE_COLUMN=uid, KEY_GENERATOR=snowflake]
    )
    DROP SHARDING TABLE RULE t_user
    CREATE SHARDING BINDING TABLE RULES (t_user, t_order)
    CREATE BROADCAST TABLE RULE t_dict
    CREATE READWRITE_SPLITTING RULE g0 (PRIMARY=ds0, REPLICAS(ds1, ds2))

RQL (Resource & Rule Query Language)::

    SHOW RESOURCES
    SHOW SHARDING TABLE RULES
    SHOW SHARDING BINDING TABLE RULES
    SHOW BROADCAST TABLE RULES
    SHOW SHARDING ALGORITHMS
    SHOW CIRCUIT BREAKERS
    SHOW EXECUTION METRICS          -- alias of SHOW METRICS LIKE 'executor_%'
    SHOW FAILOVER EVENTS
    SHOW METRICS [LIKE 'engine_%']
    SHOW TRACES
    SHOW SLOW QUERIES
    SHOW READ RESOURCES
    SHOW REPLICATION LAG

RAL (Resource & Rule Administration Language)::

    SET VARIABLE transaction_type = XA
    SHOW VARIABLE transaction_type
    SHOW RESULT CACHE
    CLEAR RESULT CACHE
    PREVIEW SELECT * FROM t_user WHERE uid = 1
    TRACE SELECT * FROM t_user WHERE uid = 1
    MIGRATE TABLE t_user (RESOURCES(ds2, ds3), SHARDING_COLUMN=uid,
                          TYPE=hash_mod, PROPERTIES('sharding-count'=8))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..exceptions import DistSQLError
from ..sql.lexer import tokenize
from ..sql.tokens import Token, TokenType


# ---------------------------------------------------------------------------
# Statement dataclasses
# ---------------------------------------------------------------------------


class DistSQLStatement:
    language = ""  # RDL / RQL / RAL


@dataclass
class RegisterResource(DistSQLStatement):
    language = "RDL"
    resources: list[tuple[str, dict[str, Any]]] = field(default_factory=list)


@dataclass
class UnregisterResource(DistSQLStatement):
    language = "RDL"
    names: list[str] = field(default_factory=list)


@dataclass
class CreateShardingTableRule(DistSQLStatement):
    language = "RDL"
    table: str = ""
    resources: list[str] = field(default_factory=list)
    sharding_column: str = ""
    algorithm_type: str = "HASH_MOD"
    properties: dict[str, Any] = field(default_factory=dict)
    key_generate_column: str | None = None
    key_generator: str = "SNOWFLAKE"
    alter: bool = False


@dataclass
class DropShardingTableRule(DistSQLStatement):
    language = "RDL"
    table: str = ""


@dataclass
class CreateBindingRule(DistSQLStatement):
    language = "RDL"
    tables: list[str] = field(default_factory=list)


@dataclass
class CreateBroadcastRule(DistSQLStatement):
    language = "RDL"
    table: str = ""


@dataclass
class CreateReadwriteSplittingRule(DistSQLStatement):
    language = "RDL"
    name: str = ""
    primary: str = ""
    replicas: list[str] = field(default_factory=list)


@dataclass
class ShowStatement(DistSQLStatement):
    language = "RQL"
    subject: str = ""  # resources | sharding_rules | binding_rules | broadcast_rules | algorithms
    #: optional SQL LIKE filter (SHOW METRICS LIKE 'engine_%')
    pattern: str = ""


@dataclass
class SetVariable(DistSQLStatement):
    language = "RAL"
    name: str = ""
    value: Any = None


@dataclass
class ShowVariable(DistSQLStatement):
    language = "RAL"
    name: str = ""


@dataclass
class Preview(DistSQLStatement):
    language = "RAL"
    sql: str = ""


@dataclass
class TraceStatement(DistSQLStatement):
    """Execute one statement with a one-shot trace and show the span tree."""

    language = "RAL"
    sql: str = ""


@dataclass
class ClearPlanCache(DistSQLStatement):
    """Drop every compiled plan from the engine's plan cache (RAL)."""

    language = "RAL"


@dataclass
class ClearResultCache(DistSQLStatement):
    """Drop every cached result from the engine's result cache (RAL)."""

    language = "RAL"


@dataclass
class ResetWorkload(DistSQLStatement):
    """Drop accumulated workload analytics (digests, heat, SLOs) (RAL)."""

    language = "RAL"


@dataclass
class MigrateTable(DistSQLStatement):
    """Online scaling: reshard a table onto a new layout (RAL)."""

    language = "RAL"
    table: str = ""
    resources: list[str] = field(default_factory=list)
    sharding_column: str = ""
    algorithm_type: str = "HASH_MOD"
    properties: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Detection + parsing
# ---------------------------------------------------------------------------

_DIST_PREFIXES = (
    "REGISTER RESOURCE",
    "UNREGISTER RESOURCE",
    "CREATE SHARDING",
    "ALTER SHARDING",
    "DROP SHARDING",
    "CREATE BROADCAST",
    "CREATE READWRITE_SPLITTING",
    "SHOW RESOURCES",
    "SHOW SHARDING",
    "SHOW BROADCAST",
    "SHOW VARIABLE",
    "SHOW CIRCUIT",
    "SHOW EXECUTION",
    "SHOW FAILOVER",
    "SHOW METADATA",
    "SHOW METRICS",
    "SHOW TRACES",
    "SHOW SLOW",
    "SHOW PLAN",
    "SHOW STATEMENT",
    "SHOW SHARD",
    "SHOW HOT",
    "SHOW SLO",
    "SHOW READ",
    "SHOW REPLICATION",
    "SHOW RESULT",
    "SHOW SESSIONS",
    "CLEAR PLAN",
    "CLEAR RESULT",
    "SET VARIABLE",
    "PREVIEW",
    "TRACE ",
    "MIGRATE TABLE",
    "RESET WORKLOAD",
)


# First-word dispatch: plain SQL (SELECT/INSERT/UPDATE/DELETE/...) exits
# on one dict miss instead of scanning every prefix. Only the leading
# slice is normalized — this runs on every statement of the hot path.
_PREFIXES_BY_WORD: dict[str, tuple[str, ...]] = {}
for _prefix in _DIST_PREFIXES:
    _word = _prefix.split(" ", 1)[0]
    _PREFIXES_BY_WORD[_word] = _PREFIXES_BY_WORD.get(_word, ()) + (_prefix,)


def is_distsql(sql: str) -> bool:
    """Cheap syntactic check: is this statement DistSQL (vs plain SQL)?"""
    head = " ".join(sql.lstrip()[:96].upper().split())
    prefixes = _PREFIXES_BY_WORD.get(head.split(" ", 1)[0] if head else "")
    if prefixes is None:
        return False
    return any(head.startswith(prefix) for prefix in prefixes)


def parse_distsql(sql: str) -> DistSQLStatement:
    """Parse one DistSQL statement."""
    head = sql.strip()
    upper = head.upper()
    if upper.startswith("PREVIEW"):
        inner = head[len("PREVIEW"):].strip().rstrip(";")
        if not inner:
            raise DistSQLError("PREVIEW requires a SQL statement")
        return Preview(sql=inner)
    if upper.startswith("TRACE "):
        inner = head[len("TRACE"):].strip().rstrip(";")
        if not inner:
            raise DistSQLError("TRACE requires a SQL statement")
        return TraceStatement(sql=inner)
    return _Parser(sql).parse()


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = [t for t in tokenize(sql) if not t.is_punct(";")]
        self.pos = 0

    # -- token helpers --------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[min(self.pos, len(self.tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER) and token.value.upper() == word:
            self._next()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise DistSQLError(f"expected {word!r}, got {self._peek().value!r} in {self.sql!r}")

    def _expect_name(self) -> str:
        token = self._next()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise DistSQLError(f"expected a name, got {token.value!r}")
        return token.value

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if not token.is_punct(char):
            raise DistSQLError(f"expected {char!r}, got {token.value!r}")

    def _accept_punct(self, char: str) -> bool:
        if self._peek().is_punct(char):
            self._next()
            return True
        return False

    def _expect_eq(self) -> None:
        token = self._next()
        if not token.is_op("="):
            raise DistSQLError(f"expected '=', got {token.value!r}")

    def _value(self) -> Any:
        token = self._next()
        if token.type is TokenType.NUMBER:
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            return token.value
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return token.value
        raise DistSQLError(f"expected a value, got {token.value!r}")

    def _name_list(self) -> list[str]:
        self._expect_punct("(")
        names = [self._expect_name()]
        while self._accept_punct(","):
            names.append(self._expect_name())
        self._expect_punct(")")
        return names

    def _properties(self) -> dict[str, Any]:
        self._expect_punct("(")
        props: dict[str, Any] = {}
        if not self._peek().is_punct(")"):
            while True:
                key = self._value()
                self._expect_eq()
                props[str(key)] = self._value()
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return props

    # -- entry ----------------------------------------------------------------

    def parse(self) -> DistSQLStatement:
        if self._accept_word("REGISTER"):
            return self._register_resource()
        if self._accept_word("UNREGISTER"):
            self._expect_word("RESOURCE")
            names = [self._expect_name()]
            while self._accept_punct(","):
                names.append(self._expect_name())
            return UnregisterResource(names=names)
        if self._accept_word("CREATE") or self._accept_word("ALTER"):
            alter = self.tokens[self.pos - 1].value.upper() == "ALTER"
            return self._create(alter)
        if self._accept_word("DROP"):
            self._expect_word("SHARDING")
            self._expect_word("TABLE")
            self._expect_word("RULE")
            return DropShardingTableRule(table=self._expect_name())
        if self._accept_word("SHOW"):
            return self._show()
        if self._accept_word("SET"):
            self._expect_word("VARIABLE")
            name = self._expect_name()
            self._expect_eq()
            return SetVariable(name=name, value=self._value())
        if self._accept_word("CLEAR"):
            if self._accept_word("RESULT"):
                self._expect_word("CACHE")
                return ClearResultCache()
            self._expect_word("PLAN")
            self._expect_word("CACHE")
            return ClearPlanCache()
        if self._accept_word("RESET"):
            self._expect_word("WORKLOAD")
            return ResetWorkload()
        if self._accept_word("MIGRATE"):
            self._expect_word("TABLE")
            rule = self._sharding_table_rule(alter=False)
            return MigrateTable(
                table=rule.table,
                resources=rule.resources,
                sharding_column=rule.sharding_column,
                algorithm_type=rule.algorithm_type,
                properties=rule.properties,
            )
        raise DistSQLError(f"not a DistSQL statement: {self.sql!r}")

    def _register_resource(self) -> RegisterResource:
        self._expect_word("RESOURCE")
        statement = RegisterResource()
        while True:
            name = self._expect_name()
            props: dict[str, Any] = {}
            if self._peek().is_punct("("):
                self._expect_punct("(")
                if self._accept_word("PROPERTIES"):
                    props = self._properties()
                self._expect_punct(")")
            statement.resources.append((name, props))
            if not self._accept_punct(","):
                break
        return statement

    def _create(self, alter: bool) -> DistSQLStatement:
        if self._accept_word("SHARDING"):
            if self._accept_word("TABLE"):
                self._expect_word("RULE")
                return self._sharding_table_rule(alter)
            if self._accept_word("BINDING"):
                self._expect_word("TABLE")
                self._expect_word("RULES")
                return CreateBindingRule(tables=self._name_list())
            raise DistSQLError("expected TABLE or BINDING after SHARDING")
        if self._accept_word("BROADCAST"):
            self._expect_word("TABLE")
            self._expect_word("RULE")
            return CreateBroadcastRule(table=self._expect_name())
        if self._accept_word("READWRITE_SPLITTING"):
            self._expect_word("RULE")
            statement = CreateReadwriteSplittingRule(name=self._expect_name())
            self._expect_punct("(")
            while True:
                if self._accept_word("PRIMARY"):
                    self._expect_eq()
                    statement.primary = self._expect_name()
                elif self._accept_word("REPLICAS"):
                    statement.replicas = self._name_list()
                else:
                    raise DistSQLError(f"unexpected token {self._peek().value!r}")
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            return statement
        raise DistSQLError("unsupported CREATE/ALTER DistSQL statement")

    def _sharding_table_rule(self, alter: bool) -> CreateShardingTableRule:
        statement = CreateShardingTableRule(table=self._expect_name(), alter=alter)
        self._expect_punct("(")
        while True:
            if self._accept_word("RESOURCES"):
                statement.resources = self._name_list()
            elif self._accept_word("SHARDING_COLUMN"):
                self._expect_eq()
                statement.sharding_column = self._expect_name()
            elif self._accept_word("TYPE"):
                self._expect_eq()
                statement.algorithm_type = str(self._value()).upper()
            elif self._accept_word("PROPERTIES"):
                statement.properties = self._properties()
            elif self._accept_word("KEY_GENERATE_COLUMN"):
                self._expect_eq()
                statement.key_generate_column = self._expect_name()
            elif self._accept_word("KEY_GENERATOR"):
                self._expect_eq()
                statement.key_generator = str(self._value()).upper()
            else:
                raise DistSQLError(f"unexpected token {self._peek().value!r} in rule body")
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if not statement.resources:
            raise DistSQLError("SHARDING TABLE RULE requires RESOURCES(...)")
        if not statement.sharding_column:
            raise DistSQLError("SHARDING TABLE RULE requires SHARDING_COLUMN=...")
        return statement

    def _show(self) -> DistSQLStatement:
        if self._accept_word("RESOURCES"):
            return ShowStatement(subject="resources")
        if self._accept_word("SHARDING"):
            if self._accept_word("TABLE"):
                self._expect_word("RULES")
                return ShowStatement(subject="sharding_rules")
            if self._accept_word("HEAT"):
                raise DistSQLError("did you mean SHOW SHARD HEAT?")
            if self._accept_word("BINDING"):
                self._expect_word("TABLE")
                self._expect_word("RULES")
                return ShowStatement(subject="binding_rules")
            if self._accept_word("ALGORITHMS"):
                return ShowStatement(subject="algorithms")
            raise DistSQLError("expected TABLE RULES / BINDING TABLE RULES / ALGORITHMS")
        if self._accept_word("BROADCAST"):
            self._expect_word("TABLE")
            self._expect_word("RULES")
            return ShowStatement(subject="broadcast_rules")
        if self._accept_word("VARIABLE"):
            return ShowVariable(name=self._expect_name())
        if self._accept_word("CIRCUIT"):
            self._expect_word("BREAKERS")
            return ShowStatement(subject="circuit_breakers")
        if self._accept_word("EXECUTION"):
            self._expect_word("METRICS")
            return ShowStatement(subject="execution_metrics")
        if self._accept_word("FAILOVER"):
            self._accept_word("EVENTS")
            return ShowStatement(subject="failovers")
        if self._accept_word("METRICS"):
            pattern = ""
            if self._accept_word("LIKE"):
                pattern = str(self._value())
            return ShowStatement(subject="metrics", pattern=pattern)
        if self._accept_word("TRACES"):
            return ShowStatement(subject="traces")
        if self._accept_word("SLOW"):
            self._expect_word("QUERIES")
            if self._accept_word("GROUP"):
                self._expect_word("BY")
                self._expect_word("DIGEST")
                return ShowStatement(subject="slow_queries_by_digest")
            return ShowStatement(subject="slow_queries")
        if self._accept_word("PLAN"):
            self._expect_word("CACHE")
            return ShowStatement(subject="plan_cache")
        if self._accept_word("METADATA"):
            return ShowStatement(subject="metadata")
        if self._accept_word("STATEMENT"):
            self._expect_word("DIGESTS")
            return ShowStatement(subject="statement_digests")
        if self._accept_word("SHARD"):
            self._expect_word("HEAT")
            return ShowStatement(subject="shard_heat")
        if self._accept_word("HOT"):
            self._expect_word("KEYS")
            if self._accept_word("FOR"):
                return ShowStatement(subject="hot_keys", pattern=self._expect_name())
            return ShowStatement(subject="hot_keys")
        if self._accept_word("SLO"):
            if self._accept_word("ALERTS"):
                return ShowStatement(subject="slo_alerts")
            return ShowStatement(subject="slo")
        if self._accept_word("READ"):
            self._expect_word("RESOURCES")
            return ShowStatement(subject="read_resources")
        if self._accept_word("REPLICATION"):
            self._expect_word("LAG")
            return ShowStatement(subject="replication_lag")
        if self._accept_word("RESULT"):
            self._expect_word("CACHE")
            return ShowStatement(subject="result_cache")
        if self._accept_word("SESSIONS"):
            return ShowStatement(subject="sessions")
        raise DistSQLError(f"unsupported SHOW statement: {self.sql!r}")
