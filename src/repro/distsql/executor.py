"""DistSQL executor: applies RDL/RQL/RAL statements to a runtime.

The runtime (usually :class:`repro.adaptors.ShardingRuntime`) provides the
data sources, the live sharding rule, the variables and the config center;
the executor mutates them and persists changes through the Governor.
AutoTable lives here: a ``CREATE SHARDING TABLE RULE`` computes the data
distribution up front, so a later logical ``CREATE TABLE`` materializes the
physical shards automatically via DDL broadcast routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from ..exceptions import DistSQLError, ShardingConfigError
from ..metadata import KNOWN_VARIABLES
from ..observability.metrics import Histogram, MetricsRegistry, like_to_matcher
from ..sharding import ShardingRule, TableRule, available_algorithms, build_auto_table_rule
from ..storage import DataSource
from . import parser as p


class Runtime(Protocol):
    """What the executor needs from the hosting adaptor.

    Rule and resource mutations go through runtime methods (never
    ``runtime.rule.add_...`` directly): each one produces the next
    immutable metadata snapshot, which is what invalidates the engine's
    plan caches — there is no explicit cache-clearing in this module.
    """

    data_sources: dict[str, DataSource]
    rule: ShardingRule
    variables: dict[str, Any]

    def register_resource(self, name: str, props: dict[str, Any]) -> None: ...

    def unregister_resource(self, name: str) -> None: ...

    def set_variable(self, name: str, value: Any) -> None: ...

    def apply_table_rule(self, table_rule: TableRule) -> None: ...

    def drop_table_rule(self, logic_table: str) -> None: ...

    def add_binding_group(self, tables: list[str]) -> None: ...

    def add_broadcast_table(self, table: str) -> None: ...

    def persist_rule(self, kind: str, name: str, config: dict[str, Any]) -> None: ...

    def unpersist_rule(self, kind: str, name: str) -> None: ...

    def preview(self, sql: str) -> list[tuple[str, str]]: ...


@dataclass
class DistSQLResult:
    """Uniform result shape: a tiny result set plus an outcome message."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    message: str = "OK"

    def fetchall(self) -> list[tuple[Any, ...]]:
        return list(self.rows)


def execute_distsql(sql: str, runtime: Runtime) -> DistSQLResult:
    """Parse and apply one DistSQL statement."""
    statement = p.parse_distsql(sql)
    handler = _HANDLERS.get(type(statement))
    if handler is None:
        raise DistSQLError(f"no handler for {type(statement).__name__}")
    return handler(statement, runtime)


# ---------------------------------------------------------------------------
# RDL
# ---------------------------------------------------------------------------


def _register_resource(stmt: p.RegisterResource, runtime: Runtime) -> DistSQLResult:
    for name, props in stmt.resources:
        if name in runtime.data_sources:
            raise DistSQLError(f"resource {name!r} already registered")
        runtime.register_resource(name, props)
    return DistSQLResult(message=f"registered {len(stmt.resources)} resource(s)")


def _unregister_resource(stmt: p.UnregisterResource, runtime: Runtime) -> DistSQLResult:
    # Idempotent: unknown (already unregistered) names are skipped, so a
    # retried or doubled UNREGISTER RESOURCE never raises — only resources
    # still referenced by a sharding rule are refused.
    removed = 0
    skipped: list[str] = []
    for name in stmt.names:
        if name not in runtime.data_sources:
            skipped.append(name)
            continue
        in_use = any(
            name in rule.data_source_names for rule in runtime.rule.table_rules()
        )
        if in_use:
            raise DistSQLError(f"resource {name!r} is referenced by sharding rules")
        runtime.unregister_resource(name)
        removed += 1
    message = f"unregistered {removed} resource(s)"
    if skipped:
        message += f"; skipped {', '.join(skipped)} (not registered)"
    return DistSQLResult(message=message)


def _create_sharding_rule(stmt: p.CreateShardingTableRule, runtime: Runtime) -> DistSQLResult:
    missing = [r for r in stmt.resources if r not in runtime.data_sources]
    if missing:
        raise DistSQLError(f"unknown resources {missing}; REGISTER RESOURCE first")
    if runtime.rule.is_sharded(stmt.table) and not stmt.alter:
        raise DistSQLError(
            f"sharding rule for {stmt.table!r} exists; use ALTER SHARDING TABLE RULE"
        )
    if not runtime.rule.is_sharded(stmt.table) and stmt.alter:
        raise DistSQLError(f"no sharding rule for {stmt.table!r} to alter")
    props = dict(stmt.properties)
    try:
        table_rule = build_auto_table_rule(
            stmt.table,
            stmt.resources,
            sharding_column=stmt.sharding_column,
            algorithm_type=stmt.algorithm_type,
            properties=props,
            key_generate_column=stmt.key_generate_column,
            key_generator_type=stmt.key_generator,
        )
    except ShardingConfigError as exc:
        raise DistSQLError(str(exc)) from exc
    runtime.apply_table_rule(table_rule)
    runtime.persist_rule(
        "sharding",
        stmt.table,
        {
            "resources": stmt.resources,
            "sharding_column": stmt.sharding_column,
            "type": stmt.algorithm_type,
            "props": {k: v for k, v in props.items() if not callable(v)},
        },
    )
    verb = "altered" if stmt.alter else "created"
    return DistSQLResult(
        message=f"{verb} sharding rule for {stmt.table} over {len(table_rule.data_nodes)} data nodes"
    )


def _drop_sharding_rule(stmt: p.DropShardingTableRule, runtime: Runtime) -> DistSQLResult:
    try:
        runtime.drop_table_rule(stmt.table)
    except ShardingConfigError as exc:
        raise DistSQLError(str(exc)) from exc
    # Also retract the persisted config: a dropped rule must not resurrect
    # on restart recovery or propagate to cluster peers.
    runtime.unpersist_rule("sharding", stmt.table)
    return DistSQLResult(message=f"dropped sharding rule for {stmt.table}")


def _create_binding(stmt: p.CreateBindingRule, runtime: Runtime) -> DistSQLResult:
    try:
        runtime.add_binding_group(stmt.tables)
    except ShardingConfigError as exc:
        raise DistSQLError(str(exc)) from exc
    runtime.persist_rule("binding", "+".join(sorted(stmt.tables)), {"tables": stmt.tables})
    return DistSQLResult(message=f"bound tables {', '.join(stmt.tables)}")


def _create_broadcast(stmt: p.CreateBroadcastRule, runtime: Runtime) -> DistSQLResult:
    runtime.add_broadcast_table(stmt.table)
    runtime.persist_rule("broadcast", stmt.table, {"table": stmt.table})
    return DistSQLResult(message=f"broadcast table {stmt.table}")


def _create_rwsplit(stmt: p.CreateReadwriteSplittingRule, runtime: Runtime) -> DistSQLResult:
    if not stmt.primary or not stmt.replicas:
        raise DistSQLError("READWRITE_SPLITTING RULE requires PRIMARY and REPLICAS")
    unknown = [
        name for name in [stmt.primary, *stmt.replicas] if name not in runtime.data_sources
    ]
    if unknown:
        raise DistSQLError(f"unknown resources {unknown}")
    runtime.persist_rule(
        "readwrite_splitting",
        stmt.name,
        {"primary": stmt.primary, "replicas": stmt.replicas},
    )
    apply_rwsplit = getattr(runtime, "apply_rwsplit_rule", None)
    if apply_rwsplit is not None:
        apply_rwsplit(stmt.name, stmt.primary, stmt.replicas)
    return DistSQLResult(message=f"readwrite-splitting rule {stmt.name} created")


# ---------------------------------------------------------------------------
# RQL
# ---------------------------------------------------------------------------

_METRIC_COLUMNS = ["metric", "labels", "kind", "value", "avg", "p50", "p95", "p99"]


def _metric_rows(registry: MetricsRegistry, pattern: str) -> list[tuple[Any, ...]]:
    """One row per (family, label set); histograms expand to percentiles.

    Counter/gauge rows carry the value; histogram rows carry the
    observation count as value plus avg/p50/p95/p99 (in the metric's base
    unit, i.e. seconds for latency histograms).
    """
    matcher = like_to_matcher(pattern)
    rows: list[tuple[Any, ...]] = []
    for name, kind, _help, samples in registry.collect():
        if not matcher(name):
            continue
        if kind == "histogram":
            family = registry.get(name)
            if isinstance(family, Histogram):
                for labels in family.label_sets():
                    stats = family.stats(**labels)
                    rows.append(
                        (
                            name,
                            _labels_text(labels),
                            kind,
                            int(stats["count"]),
                            round(stats["avg"], 6),
                            round(stats["p50"], 6),
                            round(stats["p95"], 6),
                            round(stats["p99"], 6),
                        )
                    )
                continue
        for labels, value in samples:
            rows.append((name, _labels_text(labels), kind, value, "", "", "", ""))
    return rows


def _labels_text(labels: dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _show(stmt: p.ShowStatement, runtime: Runtime) -> DistSQLResult:
    if stmt.subject == "resources":
        rows = [
            (name, source.dialect.name, source.database.name)
            for name, source in sorted(runtime.data_sources.items())
        ]
        return DistSQLResult(columns=["name", "dialect", "database"], rows=rows)
    if stmt.subject == "sharding_rules":
        rows = []
        for rule in runtime.rule.table_rules():
            rows.append(
                (
                    rule.logic_table,
                    ", ".join(str(n) for n in rule.data_nodes),
                    ", ".join(sorted(rule.sharding_columns)) or "-",
                    "auto" if rule.auto else "standard",
                )
            )
        return DistSQLResult(
            columns=["table", "actual_data_nodes", "sharding_column", "kind"], rows=rows
        )
    if stmt.subject == "binding_rules":
        rows = [(", ".join(sorted(group)),) for group in runtime.rule.binding_groups]
        return DistSQLResult(columns=["binding_tables"], rows=rows)
    if stmt.subject == "broadcast_rules":
        rows = [(t,) for t in sorted(runtime.rule.broadcast_tables)]
        return DistSQLResult(columns=["broadcast_table"], rows=rows)
    if stmt.subject == "algorithms":
        rows = [(a,) for a in available_algorithms()]
        return DistSQLResult(columns=["algorithm"], rows=rows)
    if stmt.subject == "circuit_breakers":
        engine = getattr(runtime, "engine", None)
        breakers = engine.executor.breakers if engine is not None else None
        rows = breakers.snapshot_rows() if breakers is not None else []
        return DistSQLResult(
            columns=["data_source", "state", "failures", "open_seconds"],
            rows=rows,
            message="no resilience policy enabled" if breakers is None else "OK",
        )
    if stmt.subject == "execution_metrics":
        # Compatibility alias: same counters as SHOW METRICS LIKE
        # 'executor_%' (one source of truth, the executor's ExecutionMetrics
        # folded into the registry as a collector).
        engine = getattr(runtime, "engine", None)
        if engine is None:
            return DistSQLResult(columns=["metric", "value"], rows=[])
        snapshot = engine.executor.metrics.snapshot()
        rows = [(key, snapshot[key]) for key in sorted(snapshot)]
        return DistSQLResult(
            columns=["metric", "value"], rows=rows,
            message="alias of SHOW METRICS LIKE 'executor_%'",
        )
    if stmt.subject == "metrics":
        observability = getattr(runtime, "observability", None)
        if observability is None:
            return DistSQLResult(
                columns=_METRIC_COLUMNS, rows=[], message="no observability attached"
            )
        return DistSQLResult(
            columns=_METRIC_COLUMNS,
            rows=_metric_rows(observability.registry, stmt.pattern),
        )
    if stmt.subject == "traces":
        observability = getattr(runtime, "observability", None)
        traces = observability.tracer.recent() if observability is not None else []
        rows = [
            (
                trace.trace_id,
                trace.name,
                round(trace.wall * 1000, 3),
                round(trace.simulated * 1000, 3),
                len(trace.spans),
                trace.error or "",
            )
            for trace in traces
        ]
        message = "OK"
        if observability is not None and not observability.tracer.enabled and not rows:
            message = "tracing is disabled; SET VARIABLE tracing = on, or use TRACE <sql>"
        return DistSQLResult(
            columns=["trace_id", "sql", "wall_ms", "simulated_ms", "spans", "error"],
            rows=rows,
            message=message,
        )
    if stmt.subject == "slow_queries":
        observability = getattr(runtime, "observability", None)
        entries = observability.slow_log.entries() if observability is not None else []
        rows = [
            (
                entry.trace_id,
                entry.kind,
                entry.sql,
                round(entry.wall * 1000, 3),
                round(entry.simulated * 1000, 3),
                entry.route_type,
                entry.spans,
                entry.error or "",
            )
            for entry in entries
        ]
        message = "OK"
        if observability is not None and not rows:
            threshold_ms = observability.slow_log.threshold * 1000
            message = (
                f"no slow queries recorded (threshold {threshold_ms:g}ms; "
                "traced statements only)"
            )
        return DistSQLResult(
            columns=["trace_id", "kind", "sql", "wall_ms", "simulated_ms",
                     "route_type", "spans", "error"],
            rows=rows,
            message=message,
        )
    if stmt.subject == "plan_cache":
        engine = getattr(runtime, "engine", None)
        plan_cache = getattr(engine, "plan_cache", None) if engine is not None else None
        if plan_cache is None:
            return DistSQLResult(
                columns=["sql", "hits", "templates", "state"],
                rows=[], message="no SQL engine attached",
            )
        stats = plan_cache.stats()
        message = (
            f"{stats['size']}/{stats['capacity']} plans, "
            f"hit rate {stats['hit_rate']:.1%} "
            f"(hits={stats['hits']}, misses={stats['misses']}, "
            f"bypasses={stats['bypasses']}, evictions={stats['evictions']}, "
            f"invalidations={stats['invalidations']})"
        )
        if not plan_cache.enabled:
            message += "; plan cache is DISABLED (SET VARIABLE plan_cache = on)"
        return DistSQLResult(
            columns=["sql", "hits", "templates", "state"],
            rows=plan_cache.snapshot_rows(),
            message=message,
        )
    if stmt.subject == "metadata":
        metadata = getattr(runtime, "metadata", None)
        if metadata is None:
            return DistSQLResult(
                columns=["field", "value"], rows=[],
                message="runtime has no versioned metadata contexts",
            )
        snap = metadata.current()
        rows = [
            ("version", snap.version),
            ("plan_epoch", snap.plan_epoch),
            ("reason", snap.reason),
            ("data_sources", ", ".join(sorted(snap.data_sources)) or "-"),
            ("sharded_tables", ", ".join(snap.rule.logic_tables()) or "-"),
            ("broadcast_tables", ", ".join(sorted(snap.rule.broadcast_tables)) or "-"),
            ("features", ", ".join(f.name for f in snap.features) or "-"),
            ("plan_cache_safe", snap.plan_cache_safe),
            ("rule_frozen", snap.rule.frozen),
        ]
        return DistSQLResult(
            columns=["field", "value"], rows=rows,
            message=f"metadata context v{snap.version} ({snap.reason})",
        )
    if stmt.subject in (
        "statement_digests", "shard_heat", "hot_keys", "slo", "slo_alerts",
        "slow_queries_by_digest",
    ):
        return _show_workload(stmt, runtime)
    if stmt.subject == "read_resources":
        feature = getattr(runtime, "_rwsplit_feature", None)
        rows = []
        if feature is not None:
            for name, group in sorted(feature.groups.items()):
                rows.append((
                    name,
                    group.primary,
                    ", ".join(group.replicas) or "-",
                    type(group.load_balancer).__name__,
                    "yes" if group.replication is not None else "no",
                ))
        return DistSQLResult(
            columns=["group", "primary", "replicas", "load_balancer",
                     "replicated"],
            rows=rows,
            message="no read-write splitting rule configured"
            if feature is None else "OK",
        )
    if stmt.subject == "replication_lag":
        seen: dict[int, Any] = {}
        for source in runtime.data_sources.values():
            group = getattr(source, "replica_group", None)
            if group is not None:
                seen.setdefault(id(group), group)
        rows = [
            (
                entry["group"], entry["replica"], entry["applied_lsn"],
                entry["last_lsn"], entry["lag_records"],
                entry["staleness_s"], entry["configured_lag_s"],
            )
            for group in seen.values()
            for entry in group.lag_report()
        ]
        return DistSQLResult(
            columns=["group", "replica", "applied_lsn", "last_lsn",
                     "lag_records", "staleness_s", "configured_lag_s"],
            rows=rows,
            message="no replica groups attached" if not seen else "OK",
        )
    if stmt.subject == "result_cache":
        engine = getattr(runtime, "engine", None)
        result_cache = getattr(engine, "result_cache", None) if engine is not None else None
        if result_cache is None:
            return DistSQLResult(
                columns=["stat", "value"], rows=[],
                message="no SQL engine attached",
            )
        stats = result_cache.stats()
        rows = [(key, stats[key]) for key in sorted(stats)]
        message = (
            f"{stats['entries']}/{stats['capacity']} entries, "
            f"hit rate {stats['hit_rate']:.1%} "
            f"(hits={stats['hits']}, misses={stats['misses']}, "
            f"invalidations={stats['invalidations']})"
        )
        if not result_cache.enabled:
            message += "; result cache is DISABLED (SET VARIABLE result_cache = on)"
        return DistSQLResult(
            columns=["stat", "value"], rows=rows, message=message,
        )
    if stmt.subject == "failovers":
        detector = getattr(runtime, "health_detector", None)
        events = detector.failover_events if detector is not None else []
        rows = [
            (e.group, e.old_primary, e.new_primary, round(e.latency * 1000, 3))
            for e in events
        ]
        return DistSQLResult(
            columns=["group", "old_primary", "new_primary", "failover_ms"],
            rows=rows,
            message="no health detector attached" if detector is None else "OK",
        )
    if stmt.subject == "sessions":
        registry = getattr(runtime, "sessions", None)
        rows = []
        if registry is not None:
            for info in registry.rows():
                rows.append((
                    info["id"],
                    info["kind"],
                    info["client"] or "-",
                    info["age_s"],
                    info["statements"],
                    "yes" if info["in_transaction"] else "no",
                    "yes" if info["pinned_primary"] else "no",
                    info["causal_groups"],
                    info["last_sql"] or "-",
                ))
        return DistSQLResult(
            columns=["id", "kind", "client", "age_s", "statements",
                     "in_transaction", "pinned_primary", "causal_groups",
                     "last_sql"],
            rows=rows,
            message=f"{len(rows)} session(s)",
        )
    raise DistSQLError(f"unknown SHOW subject {stmt.subject!r}")


def _workload_of(runtime: Runtime):
    observability = getattr(runtime, "observability", None)
    return getattr(observability, "workload", None)


def _show_workload(stmt: p.ShowStatement, runtime: Runtime) -> DistSQLResult:
    """Workload-intelligence views (SHOW STATEMENT DIGESTS / SHARD HEAT /
    HOT KEYS / SLO [ALERTS] / SLOW QUERIES GROUP BY DIGEST)."""
    workload = _workload_of(runtime)
    if stmt.subject == "slow_queries_by_digest":
        observability = getattr(runtime, "observability", None)
        entries = observability.slow_log.entries() if observability is not None else []
        by_digest: dict[str, list[Any]] = {}
        for entry in entries:
            by_digest.setdefault(entry.digest or "-", []).append(entry)
        rows = []
        for digest, group in by_digest.items():
            walls = [e.wall for e in group]
            route_types = sorted({e.route_type for e in group if e.route_type})
            rows.append((
                digest,
                len(group),
                sum(1 for e in group if e.kind == "slow"),
                round(sum(walls) / len(walls) * 1000, 3),
                round(max(walls) * 1000, 3),
                ", ".join(route_types) or "-",
                group[0].sql,  # entries() is newest-first
            ))
        rows.sort(key=lambda r: r[4], reverse=True)
        return DistSQLResult(
            columns=["digest", "entries", "slow", "wall_avg_ms", "wall_max_ms",
                     "route_types", "last_sql"],
            rows=rows,
        )
    if workload is None:
        return DistSQLResult(message="no observability attached")
    message = "OK" if workload.enabled else (
        "workload analytics are OFF (SET VARIABLE workload_analytics = on)"
    )
    if stmt.subject == "statement_digests":
        rows = [
            (
                d["digest"], d["calls"], d["errors"], d["rows"], d["avg_ms"],
                d["p95_ms"], d["max_ms"], d["fanout_avg"], d["plan_hit_rate"],
                d["storage_plan_hit_rate"], d["exemplar_ms"], d["sql"],
            )
            for d in workload.digest_report()
        ]
        return DistSQLResult(
            columns=["digest", "calls", "errors", "rows", "avg_ms", "p95_ms",
                     "max_ms", "fanout_avg", "plan_hit_rate",
                     "storage_plan_hit_rate", "exemplar_ms", "sql"],
            rows=rows, message=message,
        )
    if stmt.subject == "shard_heat":
        skew = workload.table_skew()
        rows = [
            (
                h["table"], h["data_source"], h["actual_table"], h["reads"],
                h["writes"], h["rows"], h["wall_ms"], h["simulated_ms"],
                h["share"],
                skew.get(h["table"], {}).get("imbalance", 0.0),
            )
            for h in workload.heat_report()
        ]
        return DistSQLResult(
            columns=["table", "data_source", "actual_table", "reads", "writes",
                     "rows", "wall_ms", "simulated_ms", "share", "imbalance"],
            rows=rows, message=message,
        )
    if stmt.subject == "hot_keys":
        rows = [
            (h["table"], h["column"], h["key"], h["count"], h["max_error"],
             h["share"])
            for h in workload.hot_key_report(table=stmt.pattern)
        ]
        return DistSQLResult(
            columns=["table", "column", "key", "estimated_count", "max_error",
                     "share"],
            rows=rows, message=message,
        )
    if stmt.subject == "slo":
        rows = [
            (s["route_type"], s["threshold_ms"], s["target"], s["statements"],
             s["breaches"], s["compliance"], s["budget_burn"], s["state"])
            for s in workload.slo_report()
        ]
        return DistSQLResult(
            columns=["route_type", "threshold_ms", "target", "statements",
                     "breaches", "compliance", "budget_burn", "state"],
            rows=rows, message=message,
        )
    # slo_alerts
    rows = [
        (a["seq"], a["route_type"], a["burn_rate"], a["statements"],
         a["breaches"], a["threshold_ms"])
        for a in workload.alert_report()
    ]
    return DistSQLResult(
        columns=["seq", "route_type", "burn_rate", "statements", "breaches",
                 "threshold_ms"],
        rows=rows, message=message,
    )


# ---------------------------------------------------------------------------
# RAL
# ---------------------------------------------------------------------------

def _set_variable(stmt: p.SetVariable, runtime: Runtime) -> DistSQLResult:
    name = stmt.name.lower()
    if name not in KNOWN_VARIABLES:
        raise DistSQLError(f"unknown variable {stmt.name!r}; known: {sorted(KNOWN_VARIABLES)}")
    runtime.set_variable(name, stmt.value)
    return DistSQLResult(message=f"{name} = {stmt.value}")


def _show_variable(stmt: p.ShowVariable, runtime: Runtime) -> DistSQLResult:
    name = stmt.name.lower()
    value = runtime.variables.get(name)
    return DistSQLResult(columns=["variable", "value"], rows=[(name, value)])


def _preview(stmt: p.Preview, runtime: Runtime) -> DistSQLResult:
    rows = runtime.preview(stmt.sql)
    return DistSQLResult(columns=["data_source", "actual_sql"], rows=list(rows))


def _trace(stmt: p.TraceStatement, runtime: Runtime) -> DistSQLResult:
    """Execute the statement with a one-shot trace; rows are the span tree."""
    engine = getattr(runtime, "engine", None)
    if engine is None:
        raise DistSQLError("TRACE requires a runtime with a SQL engine")
    if getattr(engine, "observability", None) is None:
        raise DistSQLError("TRACE requires observability attached to the engine")
    result = engine.execute(stmt.sql, force_trace=True)
    if result.is_query:
        consumed = len(result.fetchall())
        outcome = f"{consumed} row(s)"
    else:
        outcome = f"{result.update_count} row(s) updated"
    trace = result.trace
    if trace is None:  # defensive: engine without tracer support
        raise DistSQLError("engine did not produce a trace")
    rows = list(trace.tree_rows())
    return DistSQLResult(
        columns=["span", "wall_ms", "simulated_ms", "detail"],
        rows=rows,
        message=(
            f"trace #{trace.trace_id}: {outcome}, route={result.route_type}, "
            f"wall {trace.wall * 1000:.3f}ms, simulated {trace.simulated * 1000:.3f}ms"
        ),
    )


def _clear_plan_cache(stmt: p.ClearPlanCache, runtime: Runtime) -> DistSQLResult:
    engine = getattr(runtime, "engine", None)
    plan_cache = getattr(engine, "plan_cache", None) if engine is not None else None
    if plan_cache is None:
        raise DistSQLError("CLEAR PLAN CACHE requires a runtime with a SQL engine")
    dropped = len(plan_cache)
    plan_cache.invalidate("CLEAR PLAN CACHE")
    return DistSQLResult(message=f"cleared {dropped} plan(s)")


def _clear_result_cache(stmt: p.ClearResultCache, runtime: Runtime) -> DistSQLResult:
    engine = getattr(runtime, "engine", None)
    result_cache = getattr(engine, "result_cache", None) if engine is not None else None
    if result_cache is None:
        raise DistSQLError("CLEAR RESULT CACHE requires a runtime with a SQL engine")
    dropped = result_cache.clear("CLEAR RESULT CACHE")
    return DistSQLResult(message=f"cleared {dropped} cached result(s)")


def _reset_workload(stmt: p.ResetWorkload, runtime: Runtime) -> DistSQLResult:
    workload = _workload_of(runtime)
    if workload is None:
        raise DistSQLError("RESET WORKLOAD requires observability attached")
    workload.reset()
    return DistSQLResult(message="workload analytics reset")


def _migrate_table(stmt: p.MigrateTable, runtime: Runtime) -> DistSQLResult:
    """RAL scaling: build the target AutoTable layout and run the scaling
    job (prepare -> inventory -> check -> switchover), as Section V-A's
    "added-on administrator features, such as ... scaling"."""
    from ..features.scaling import ScalingJob

    if not runtime.rule.is_sharded(stmt.table):
        raise DistSQLError(f"no sharding rule for table {stmt.table!r} to migrate")
    missing = [r for r in stmt.resources if r not in runtime.data_sources]
    if missing:
        raise DistSQLError(f"unknown resources {missing}; REGISTER RESOURCE first")
    source_rule = runtime.rule.table_rule(stmt.table)
    try:
        target = build_auto_table_rule(
            stmt.table,
            stmt.resources,
            sharding_column=stmt.sharding_column,
            algorithm_type=stmt.algorithm_type,
            properties=dict(stmt.properties),
            key_generate_column=(
                source_rule.key_generate.column if source_rule.key_generate else None
            ),
        )
    except ShardingConfigError as exc:
        raise DistSQLError(str(exc)) from exc
    # Disambiguate target table names from the source generation.
    generation = 2
    existing = {node.table.lower() for node in source_rule.data_nodes}
    while any(node.table.lower() in existing for node in target.data_nodes):
        from ..sharding import DataNode, TableRule

        target = TableRule(
            target.logic_table,
            [DataNode(n.data_source, f"{stmt.table}_g{generation}_{i}")
             for i, n in enumerate(target.data_nodes)],
            table_strategy=target.table_strategy,
            key_generate=target.key_generate,
            auto=True,
        )
        generation += 1
    apply_rule = getattr(runtime, "apply_table_rule", None)
    job = ScalingJob(
        runtime.rule, target, runtime.data_sources,
        drop_source_tables=True, apply_rule=apply_rule,
    )
    report = job.run()
    runtime.persist_rule(
        "sharding",
        stmt.table,
        {
            "resources": stmt.resources,
            "sharding_column": stmt.sharding_column,
            "type": stmt.algorithm_type,
            "props": {k: v for k, v in stmt.properties.items() if not callable(v)},
        },
    )
    return DistSQLResult(
        columns=["table", "rows_migrated", "source_nodes", "target_nodes", "consistent"],
        rows=[(stmt.table, report.rows_migrated, report.source_nodes,
               report.target_nodes, report.consistent)],
        message=f"migrated {stmt.table}: {report.rows_migrated} rows to "
                f"{report.target_nodes} shards",
    )


_HANDLERS = {
    p.RegisterResource: _register_resource,
    p.UnregisterResource: _unregister_resource,
    p.CreateShardingTableRule: _create_sharding_rule,
    p.DropShardingTableRule: _drop_sharding_rule,
    p.CreateBindingRule: _create_binding,
    p.CreateBroadcastRule: _create_broadcast,
    p.CreateReadwriteSplittingRule: _create_rwsplit,
    p.ShowStatement: _show,
    p.SetVariable: _set_variable,
    p.ShowVariable: _show_variable,
    p.Preview: _preview,
    p.TraceStatement: _trace,
    p.ClearPlanCache: _clear_plan_cache,
    p.ClearResultCache: _clear_result_cache,
    p.ResetWorkload: _reset_workload,
    p.MigrateTable: _migrate_table,
}
