"""DistSQL: configure ShardingSphere in the way of using a database."""

from .executor import DistSQLResult, execute_distsql
from .parser import DistSQLStatement, is_distsql, parse_distsql

__all__ = [
    "is_distsql",
    "parse_distsql",
    "execute_distsql",
    "DistSQLStatement",
    "DistSQLResult",
]
