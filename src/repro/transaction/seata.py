"""BASE transactions in the Seata-AT style (Fig. 5(e) / Fig. 6).

Roles (all in-process, with simulated RPC latency for the TC hops):

- :class:`TransactionCoordinator` (TC) — maintains global and branch
  transaction status, drives global commit/rollback;
- ShardingSphere plays both TM and RM: it asks the TC for a global
  transaction id, registers branches, saves undo logs before local
  commits, and reports branch status.

Phase 1: each branch saves its undo log, commits locally, and reports to
the TC. Phase 2: on the application's commit, the status is checked with
the TC — all-OK deletes the undo logs; any failure restores the data by
replaying undo logs (eventual consistency via compensation).
"""

from __future__ import annotations

import enum
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..exceptions import BaseTransactionError
from ..storage import Connection, DataSource
from ..storage.transaction import replay_undo
from .base import DistributedTransaction, TransactionType, new_xid


class GlobalStatus(enum.Enum):
    BEGIN = "begin"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ROLLING_BACK = "rolling_back"
    ROLLED_BACK = "rolled_back"


@dataclass
class BranchRecord:
    ds_name: str
    status: str = "registered"  # registered | phase1_ok | phase1_failed | done
    undo_entries: list[Any] = field(default_factory=list)


@dataclass
class GlobalRecord:
    xid: str
    status: GlobalStatus = GlobalStatus.BEGIN
    branches: dict[str, BranchRecord] = field(default_factory=dict)


class TransactionCoordinator:
    """The Seata TC: global/branch status registry.

    ``rpc_delay`` simulates the network round trip every TC interaction
    costs in a real deployment (the reason BASE underperforms XA on the
    short transactions of Fig. 13).
    """

    def __init__(self, rpc_delay: float = 0.001):
        self.rpc_delay = rpc_delay
        self._lock = threading.Lock()
        self._globals: dict[str, GlobalRecord] = {}

    def _rpc(self) -> None:
        if self.rpc_delay > 0:
            time.sleep(self.rpc_delay)

    # -- TM-facing --------------------------------------------------------

    def begin_global(self) -> str:
        self._rpc()
        xid = new_xid("seata")
        with self._lock:
            self._globals[xid] = GlobalRecord(xid)
        return xid

    def global_status(self, xid: str) -> GlobalStatus:
        self._rpc()
        with self._lock:
            return self._globals[xid].status

    def branch_statuses(self, xid: str) -> dict[str, str]:
        self._rpc()
        with self._lock:
            return {name: b.status for name, b in self._globals[xid].branches.items()}

    def mark_global(self, xid: str, status: GlobalStatus) -> None:
        self._rpc()
        with self._lock:
            self._globals[xid].status = status

    def finish(self, xid: str) -> None:
        with self._lock:
            self._globals.pop(xid, None)

    # -- RM-facing ----------------------------------------------------------

    def register_branch(self, xid: str, ds_name: str) -> None:
        self._rpc()
        with self._lock:
            self._globals[xid].branches[ds_name] = BranchRecord(ds_name)

    def save_undo(self, xid: str, ds_name: str, undo_entries: list[Any]) -> None:
        with self._lock:
            self._globals[xid].branches[ds_name].undo_entries = undo_entries

    def report_branch(self, xid: str, ds_name: str, ok: bool) -> None:
        self._rpc()
        with self._lock:
            branch = self._globals[xid].branches[ds_name]
            branch.status = "phase1_ok" if ok else "phase1_failed"

    def take_undo(self, xid: str, ds_name: str) -> list[Any]:
        with self._lock:
            branch = self._globals[xid].branches[ds_name]
            undo, branch.undo_entries = branch.undo_entries, []
            return undo


class SeataTransaction(DistributedTransaction):
    """One global BASE transaction in AT mode."""

    type = TransactionType.BASE

    def __init__(self, data_sources: Mapping[str, DataSource], coordinator: TransactionCoordinator):
        super().__init__(data_sources)
        self.coordinator = coordinator
        # Phase 0: require a global transaction id from the TC.
        self.xid = coordinator.begin_global()

    def on_branch_started(self, ds_name: str, connection: Connection) -> None:
        # Register the local transaction with the TC as it joins.
        self.coordinator.register_branch(self.xid, ds_name)

    # -- Phase 1 -----------------------------------------------------------

    def _phase1(self) -> bool:
        """Per branch: save undo log, commit locally, report status."""
        all_ok = True
        for ds_name in self.participants:
            connection = self.connections[ds_name]
            transaction = connection.current_transaction()
            undo = transaction.take_undo() if transaction is not None else []
            self.coordinator.save_undo(self.xid, ds_name, undo)
            ok = True
            try:
                connection.commit()
            except Exception:
                ok = False
                all_ok = False
            self.coordinator.report_branch(self.xid, ds_name, ok)
        return all_ok

    # -- Phase 2 ------------------------------------------------------------

    def commit(self) -> None:
        self._check_active()
        all_ok = self._phase1()
        statuses = self.coordinator.branch_statuses(self.xid)
        if all_ok and all(s == "phase1_ok" for s in statuses.values()):
            self.coordinator.mark_global(self.xid, GlobalStatus.COMMITTING)
            for ds_name in self.participants:
                # Deleting the undo log is the branch's phase-2 commit.
                self.coordinator.take_undo(self.xid, ds_name)
            self.coordinator.mark_global(self.xid, GlobalStatus.COMMITTED)
            self.coordinator.finish(self.xid)
            self._release_all()
            return
        # Some branch failed phase 1: compensate everything.
        self._compensate()
        self._release_all()
        raise BaseTransactionError(
            f"BASE transaction {self.xid} failed phase 1; compensated"
        )

    def commit_async(self, pool: "ThreadPoolExecutor | None" = None) -> "Future":
        """The paper's stated future work: asynchronous result return.

        "In our future work, we plan to support asynchronous return of
        results, in which Apps only submit SQL statements to
        ShardingSphere, and ShardingSphere will guarantee BASE
        transactions automatically. This can improve the performance
        tremendously."

        The application returns immediately; phases 1+2 (undo-log saves,
        local commits, TC round trips) run on a worker thread. The
        returned future resolves to True on global commit, or raises
        :class:`~repro.exceptions.BaseTransactionError` after
        compensation — the eventual-consistency contract of BASE.
        """
        self._check_active()
        owned = pool is None
        executor = pool if pool is not None else ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="seata-async"
        )

        def run() -> bool:
            try:
                self.commit()
                return True
            finally:
                if owned:
                    executor.shutdown(wait=False)

        return executor.submit(run)

    def rollback(self) -> None:
        self._check_active()
        # Branches not yet locally committed roll back locally; committed
        # ones (none before commit() in our flow) would be compensated.
        self.coordinator.mark_global(self.xid, GlobalStatus.ROLLING_BACK)
        for connection in self.connections.values():
            try:
                connection.rollback()
            except Exception:
                pass
        self.coordinator.mark_global(self.xid, GlobalStatus.ROLLED_BACK)
        self.coordinator.finish(self.xid)
        self._release_all()

    def _compensate(self) -> None:
        self.coordinator.mark_global(self.xid, GlobalStatus.ROLLING_BACK)
        for ds_name in self.participants:
            undo = self.coordinator.take_undo(self.xid, ds_name)
            if undo:
                replay_undo(self.data_sources[ds_name].database, undo)
            connection = self.connections[ds_name]
            if connection.in_transaction:
                try:
                    connection.rollback()
                except Exception:
                    pass
        self.coordinator.mark_global(self.xid, GlobalStatus.ROLLED_BACK)
        self.coordinator.finish(self.xid)
