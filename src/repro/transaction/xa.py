"""XA transactions: 2-phase commit with logging and recovery (Fig. 5(c)).

Phase 1 sends *prepare* to every resource manager (data source); any "NO"
rolls back everything. Phase 2 commits the prepared branches. The
coordinator writes a :class:`XATransactionLog` record before each phase —
if some branch commits fail after a successful phase 1 (server down,
network jitter), the decision survives and :func:`recover` re-commits the
in-doubt branches later, exactly as the paper describes.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Mapping

from ..exceptions import XATransactionError
from ..storage import DataSource
from .base import DistributedTransaction, TransactionType


class XAState(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    PREPARED = "prepared"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class XALogRecord:
    """Durable record of one global transaction's progress."""

    xid: str
    participants: list[str] = field(default_factory=list)
    state: XAState = XAState.ACTIVE
    #: participants whose phase-2 commit is still pending
    pending: list[str] = field(default_factory=list)


class XATransactionLog:
    """Coordinator log (the paper's "record logs" before 2PC).

    In-memory but shared: create one per deployment and pass it to every
    manager; recovery reads it after a simulated coordinator restart.
    """

    def __init__(self) -> None:
        self._records: dict[str, XALogRecord] = {}
        self._lock = threading.Lock()

    def put(self, record: XALogRecord) -> None:
        with self._lock:
            self._records[record.xid] = record

    def update(self, xid: str, state: XAState, pending: list[str] | None = None) -> None:
        with self._lock:
            record = self._records[xid]
            record.state = state
            if pending is not None:
                record.pending = list(pending)

    def remove(self, xid: str) -> None:
        with self._lock:
            self._records.pop(xid, None)

    def get(self, xid: str) -> XALogRecord | None:
        with self._lock:
            return self._records.get(xid)

    def in_doubt(self) -> list[XALogRecord]:
        """Transactions whose outcome was decided but not fully applied."""
        with self._lock:
            return [
                XALogRecord(r.xid, list(r.participants), r.state, list(r.pending))
                for r in self._records.values()
                if r.state in (XAState.COMMITTING, XAState.PREPARED)
            ]


class XATransaction(DistributedTransaction):
    """One global XA transaction driven through 2PC."""

    type = TransactionType.XA

    def __init__(self, data_sources: Mapping[str, DataSource], log: XATransactionLog | None = None):
        super().__init__(data_sources)
        self.log = log if log is not None else XATransactionLog()
        self.log.put(XALogRecord(xid=self.xid))

    def _branch_xid(self, ds_name: str) -> str:
        return f"{self.xid}:{ds_name}"

    def commit(self) -> None:
        self._check_active()
        participants = self.participants
        self.log.put(XALogRecord(self.xid, participants, XAState.PREPARING, []))

        # ---- Phase 1: prepare ------------------------------------------------
        prepared: list[str] = []
        for ds_name in participants:
            connection = self.connections[ds_name]
            try:
                connection.xa_prepare(self._branch_xid(ds_name))
                prepared.append(ds_name)
            except Exception as exc:
                # Some RM answered "NO": roll everything back.
                self._rollback_after_failed_prepare(prepared, ds_name)
                raise XATransactionError(
                    f"prepare failed on {ds_name!r}: {exc}"
                ) from exc
        self.log.update(self.xid, XAState.PREPARED, pending=participants)

        # ---- Phase 2: commit -------------------------------------------------
        self.log.update(self.xid, XAState.COMMITTING, pending=participants)
        still_pending: list[str] = []
        errors: list[Exception] = []
        for ds_name in participants:
            connection = self.connections[ds_name]
            try:
                connection.xa_commit(self._branch_xid(ds_name))
            except Exception as exc:
                # Decision stands: keep the branch pending for recovery.
                still_pending.append(ds_name)
                errors.append(exc)
        if still_pending:
            self.log.update(self.xid, XAState.COMMITTING, pending=still_pending)
            self._release_all()
            raise XATransactionError(
                f"commit incomplete on {still_pending}; will be recovered"
            ) from errors[0]
        self.log.update(self.xid, XAState.COMMITTED, pending=[])
        self.log.remove(self.xid)
        self._release_all()

    def _rollback_after_failed_prepare(self, prepared: list[str], failed: str) -> None:
        for ds_name in prepared:
            try:
                self.connections[ds_name].xa_rollback(self._branch_xid(ds_name))
            except Exception:
                pass
        for ds_name, connection in self.connections.items():
            if ds_name not in prepared:
                try:
                    connection.rollback()
                except Exception:
                    pass
        self.log.update(self.xid, XAState.ABORTED, pending=[])
        self.log.remove(self.xid)
        self._release_all()

    def rollback(self) -> None:
        self._check_active()
        for connection in self.connections.values():
            try:
                connection.rollback()
            except Exception:
                pass
        self.log.update(self.xid, XAState.ABORTED, pending=[])
        self.log.remove(self.xid)
        self._release_all()


def recover(log: XATransactionLog, data_sources: Mapping[str, DataSource]) -> int:
    """Finish in-doubt transactions after a coordinator restart.

    PREPARED / COMMITTING records mean phase 1 fully succeeded, so the
    decision is COMMIT: re-commit every pending branch (idempotent — a
    branch whose prepared transaction is gone was already committed).
    Returns the number of transactions completed.
    """
    recovered = 0
    for record in log.in_doubt():
        for ds_name in (record.pending or record.participants):
            source = data_sources.get(ds_name)
            if source is None:
                continue
            from ..storage import commit_prepared

            commit_prepared(source.database, f"{record.xid}:{ds_name}")
        log.update(record.xid, XAState.COMMITTED, pending=[])
        log.remove(record.xid)
        recovered += 1
    return recovered
