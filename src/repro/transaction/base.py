"""Distributed transaction abstractions (Section IV-B).

A :class:`DistributedTransaction` pins one connection per participating
data source for the lifetime of the transaction (statements of a
transaction must all flow through the same session on each shard). The
three concrete protocols — LOCAL (1PC), XA (2PC) and BASE (Seata-AT) —
differ only in how ``commit``/``rollback`` drive those pinned connections.
"""

from __future__ import annotations

import abc
import enum
import itertools
import threading
import uuid
from typing import Mapping

from ..exceptions import TransactionError
from ..storage import Connection, DataSource


class TransactionType(enum.Enum):
    """The three distributed transaction types ShardingSphere provides."""

    LOCAL = "LOCAL"
    XA = "XA"
    BASE = "BASE"

    @classmethod
    def of(cls, name: str) -> "TransactionType":
        try:
            return cls[name.upper()]
        except KeyError:
            raise TransactionError(
                f"unknown transaction type {name!r}; expected LOCAL, XA or BASE"
            ) from None


_xid_counter = itertools.count(1)


def new_xid(prefix: str = "ss") -> str:
    """Globally unique transaction id."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}-{next(_xid_counter)}"


class DistributedTransaction(abc.ABC):
    """One open distributed transaction across the fleet."""

    type: TransactionType

    def __init__(self, data_sources: Mapping[str, DataSource]):
        self.data_sources = dict(data_sources)
        self.xid = new_xid()
        self.connections: dict[str, Connection] = {}
        self._finished = False
        self._pin_lock = threading.Lock()

    # -- participant management ------------------------------------------

    def connection_for(self, ds_name: str) -> Connection:
        """Pin (lazily) the transaction's connection to one data source.

        Locked: a fanned-out statement inside the transaction reaches
        this from several executor workers at once, and racing pins
        would acquire (and leak) duplicate connections for one source.
        """
        self._check_active()
        connection = self.connections.get(ds_name)
        if connection is None:
            with self._pin_lock:
                connection = self.connections.get(ds_name)
                if connection is None:
                    source = self.data_sources[ds_name]
                    connection = source.pool.acquire()
                    connection.begin()
                    self.connections[ds_name] = connection
                    self.on_branch_started(ds_name, connection)
        return connection

    def on_branch_started(self, ds_name: str, connection: Connection) -> None:
        """Hook: a new participant joined (BASE registers branches here)."""

    @property
    def participants(self) -> list[str]:
        return sorted(self.connections)

    @property
    def finished(self) -> bool:
        return self._finished

    def _check_active(self) -> None:
        if self._finished:
            raise TransactionError(f"transaction {self.xid} already finished")

    # -- completion --------------------------------------------------------

    @abc.abstractmethod
    def commit(self) -> None:
        """Run the protocol's commit; must release all pinned connections."""

    @abc.abstractmethod
    def rollback(self) -> None:
        """Run the protocol's rollback; must release all pinned connections."""

    def _release_all(self) -> None:
        self._finished = True
        for ds_name, connection in self.connections.items():
            self.data_sources[ds_name].pool.release(connection)
        self.connections = {}
