"""Transaction manager: creates distributed transactions of the active type.

The adaptors hold one manager per logical connection; ``SET VARIABLE
transaction_type = <LOCAL|XA|BASE>`` (DistSQL RAL) switches the type at
runtime, as in Section V-A of the paper.
"""

from __future__ import annotations

from typing import Mapping

from ..exceptions import TransactionError
from ..storage import DataSource
from .base import DistributedTransaction, TransactionType
from .local import LocalTransaction
from .seata import SeataTransaction, TransactionCoordinator
from .xa import XATransaction, XATransactionLog


class TransactionManager:
    """Factory + policy holder for distributed transactions."""

    def __init__(
        self,
        data_sources: Mapping[str, DataSource],
        default_type: TransactionType = TransactionType.LOCAL,
        xa_log: XATransactionLog | None = None,
        coordinator: TransactionCoordinator | None = None,
    ):
        self.data_sources = data_sources if isinstance(data_sources, dict) else dict(data_sources)
        self.transaction_type = default_type
        self.xa_log = xa_log if xa_log is not None else XATransactionLog()
        self.coordinator = coordinator if coordinator is not None else TransactionCoordinator()

    def set_type(self, type_name: str | TransactionType) -> None:
        if isinstance(type_name, TransactionType):
            self.transaction_type = type_name
        else:
            self.transaction_type = TransactionType.of(type_name)

    def begin(self) -> DistributedTransaction:
        if self.transaction_type is TransactionType.LOCAL:
            return LocalTransaction(self.data_sources)
        if self.transaction_type is TransactionType.XA:
            return XATransaction(self.data_sources, log=self.xa_log)
        if self.transaction_type is TransactionType.BASE:
            return SeataTransaction(self.data_sources, coordinator=self.coordinator)
        raise TransactionError(f"unsupported transaction type {self.transaction_type}")
