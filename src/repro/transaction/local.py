"""LOCAL transactions: 1-phase commit (Fig. 5(d) of the paper).

The commit/rollback command is forwarded to every participant directly,
with no prepare phase. Per the paper: "Even if some data source commits
fail, ShardingSphere will ignore it" — best-effort, fastest, weakest.
"""

from __future__ import annotations

from .base import DistributedTransaction, TransactionType


class LocalTransaction(DistributedTransaction):
    """Fan-out 1PC across all pinned connections."""

    type = TransactionType.LOCAL

    def commit(self) -> None:
        self._check_active()
        failures = []
        for connection in self.connections.values():
            try:
                connection.commit()
            except Exception as exc:  # best effort: ignore per the paper
                failures.append(exc)
        self.failures = failures
        self._release_all()

    def rollback(self) -> None:
        self._check_active()
        for connection in self.connections.values():
            try:
                connection.rollback()
            except Exception:
                pass
        self._release_all()
