"""Distributed transactions: LOCAL (1PC), XA (2PC + recovery), BASE (Seata-AT)."""

from .base import DistributedTransaction, TransactionType, new_xid
from .local import LocalTransaction
from .manager import TransactionManager
from .seata import (
    GlobalStatus,
    SeataTransaction,
    TransactionCoordinator,
)
from .xa import XAState, XATransaction, XATransactionLog, recover

__all__ = [
    "TransactionType",
    "DistributedTransaction",
    "new_xid",
    "LocalTransaction",
    "XATransaction",
    "XATransactionLog",
    "XAState",
    "recover",
    "SeataTransaction",
    "TransactionCoordinator",
    "GlobalStatus",
    "TransactionManager",
]
