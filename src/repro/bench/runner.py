"""Benchmark measurement runner.

Drives concurrent sessions against a system under test and reports the
paper's metrics: TPS, average response time, and tail latencies (p99 for
Sysbench, p90 for TPC-C — the tools' default percentiles, as the paper
notes). Each worker thread owns one session, mirroring how sysbench and
BenchmarkSQL drive one connection per thread.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..baselines.base import Session, SystemUnderTest

TransactionFn = Callable[[Session, random.Random], None]


@dataclass
class Measurement:
    """Result of one benchmark run."""

    system: str
    scenario: str
    transactions: int = 0
    errors: int = 0
    elapsed: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def tps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.transactions / self.elapsed

    def percentile(self, q: float) -> float:
        """Latency percentile in ms (q in [0, 100])."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, max(0, int(round(q / 100 * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def avg_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def p90_ms(self) -> float:
        return self.percentile(90)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99)


def run_benchmark(
    system: SystemUnderTest,
    transaction: TransactionFn,
    scenario: str = "default",
    threads: int = 4,
    duration: float = 2.0,
    warmup: float = 0.2,
    seed: int = 1234,
    max_errors: int = 50,
) -> Measurement:
    """Run ``transaction`` from ``threads`` concurrent sessions.

    ``warmup`` seconds of work are executed and discarded first, then each
    thread loops until the deadline, recording per-transaction latency.
    """
    measurement = Measurement(system=system.name, scenario=scenario)
    lock = threading.Lock()
    barrier = threading.Barrier(threads + 1)
    stop = threading.Event()
    first_error: list[BaseException] = []

    def worker(worker_id: int) -> None:
        rng = random.Random(seed + worker_id)
        session = system.session()
        local_latencies: list[float] = []
        local_count = 0
        local_errors = 0
        try:
            warmup_deadline = time.perf_counter() + warmup
            while time.perf_counter() < warmup_deadline:
                try:
                    transaction(session, rng)
                except Exception:
                    local_errors += 1
                    if local_errors > max_errors:
                        raise
            barrier.wait()
            while not stop.is_set():
                start = time.perf_counter()
                try:
                    transaction(session, rng)
                except Exception:
                    local_errors += 1
                    if local_errors > max_errors:
                        raise
                    continue
                local_latencies.append((time.perf_counter() - start) * 1000)
                local_count += 1
        except BaseException as exc:
            with lock:
                if not first_error:
                    first_error.append(exc)
            try:
                barrier.wait(timeout=1)
            except threading.BrokenBarrierError:
                pass
        finally:
            session.close()
            with lock:
                measurement.latencies_ms.extend(local_latencies)
                measurement.transactions += local_count
                measurement.errors += local_errors

    workers = [threading.Thread(target=worker, args=(i,), daemon=True) for i in range(threads)]
    for thread in workers:
        thread.start()
    try:
        barrier.wait(timeout=max(30.0, warmup * 10 + 30))
    except threading.BrokenBarrierError:
        pass
    started = time.perf_counter()
    time.sleep(duration)
    stop.set()
    for thread in workers:
        thread.join(timeout=60)
    measurement.elapsed = time.perf_counter() - started
    if first_error:
        raise first_error[0]
    return measurement
