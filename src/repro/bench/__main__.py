"""Command-line benchmark runner: ``python -m repro.bench``.

Runs a sysbench scenario or the TPC-C mix against one of the systems
under test and prints the paper-style row. Examples::

    python -m repro.bench --system ssj --scenario read_write --threads 8
    python -m repro.bench --system ms --scenario point_select --duration 3
    python -m repro.bench --workload tpcc --system ssp --threads 4
    python -m repro.bench --system ssj --transaction-type XA
    python -m repro.bench --proxy --connections 500 --duration 5
"""

from __future__ import annotations

import argparse
import json
import sys

from ..baselines import (
    BENCH_LATENCY,
    AuroraLikeSystem,
    MiddlewareSystem,
    NewSQLSystem,
    ShardingJDBCSystem,
    ShardingProxySystem,
    SingleNodeSystem,
)
from ..transaction import TransactionType
from .report import format_table, sysbench_row, tpcc_row
from .runner import run_benchmark
from .sysbench import SCENARIOS, SysbenchConfig, SysbenchWorkload
from .tpcc import TPCC_BROADCAST_TABLES, TPCC_SHARDED_TABLES, TPCCConfig, TPCCWorkload

SYSTEMS = ("ssj", "ssp", "ms", "middleware", "newsql", "aurora")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a paper-style benchmark against one system under test.",
    )
    parser.add_argument("--workload", choices=("sysbench", "tpcc"), default="sysbench")
    parser.add_argument("--system", choices=SYSTEMS, default="ssj")
    parser.add_argument("--scenario", choices=SCENARIOS, default="read_write",
                        help="sysbench scenario (ignored for tpcc)")
    parser.add_argument("--table-size", type=int, default=20_000)
    parser.add_argument("--warehouses", type=int, default=2, help="tpcc scale")
    parser.add_argument("--sources", type=int, default=4, help="number of data sources")
    parser.add_argument("--tables-per-source", type=int, default=10)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--duration", type=float, default=2.0, help="seconds")
    parser.add_argument("--warmup", type=float, default=0.3, help="seconds")
    parser.add_argument("--maxcon", type=int, default=10,
                        help="maxConnectionsizePerQuery (Fig. 15's knob)")
    parser.add_argument("--transaction-type", choices=("LOCAL", "XA", "BASE"),
                        default="LOCAL")
    parser.add_argument("--layout", choices=("range", "hash"), default="range")
    parser.add_argument("--chaos", action="store_true",
                        help="inject seeded transient faults and enable the "
                             "resilience policy (retries + per-source breakers)")
    parser.add_argument("--chaos-seed", type=int, default=7)
    parser.add_argument("--chaos-transient-rate", type=float, default=0.02,
                        help="per-statement transient fault probability")
    parser.add_argument("--profile", action="store_true",
                        help="record per-stage latency histograms during the "
                             "measured run, print the breakdown and write "
                             "BENCH_profile.json")
    parser.add_argument("--profile-output", default="BENCH_profile.json",
                        help="where --profile writes its JSON report")
    parser.add_argument("--profile-sample-every", type=int, default=1,
                        help="stage-sampling stride under --profile (1 = exact "
                             "histograms; 8 = production-style 1-in-8 sampling)")
    parser.add_argument("--skew", choices=("uniform", "zipfian"), default="uniform",
                        help="point/update key distribution (sysbench --rand-type); "
                             "zipfian skews toward low ids to create hot shards")
    parser.add_argument("--zipf-exponent", type=float, default=1.2,
                        help="zipfian skew exponent (higher = hotter head)")
    parser.add_argument("--no-workload-analytics", action="store_true",
                        help="disable the workload-intelligence layer (digests, "
                             "heat maps, hot keys, SLO tracking) for overhead "
                             "comparisons")
    parser.add_argument("--batch-rows", type=int, default=256,
                        help="rows per chunk in vectorized storage plans "
                             "(1 = row-at-a-time path, for ablations)")
    parser.add_argument("--no-pipeline", action="store_true",
                        help="disable fused statement pipelining in the TPC-C "
                             "transactions (serial statement-at-a-time path)")
    parser.add_argument("--replicas", type=int, default=0,
                        help="read replicas per data source (engine systems); "
                             "reads split off to replicas via lag-aware "
                             "load balancing")
    parser.add_argument("--replication-lag-ms", type=float, default=0.0,
                        help="simulated async replication lag per replica "
                             "(jittered ±25%%); read-your-writes still holds "
                             "via causal session tokens")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the engine result cache (on by default "
                             "for engine systems) for ablations")
    parser.add_argument("--proxy", action="store_true",
                        help="run the proxy-reactor concurrency benchmark "
                             "instead of a workload: N concurrent sessions "
                             "on a bounded server thread pool, with a "
                             "read-your-writes check per operation")
    parser.add_argument("--connections", type=int, default=200,
                        help="concurrently-open proxy sessions (--proxy)")
    parser.add_argument("--proxy-output", default="BENCH_proxy.json",
                        help="where --proxy writes its JSON report")
    return parser


def apply_batch_rows(system, args: argparse.Namespace) -> None:
    """Set the vectorized-plan chunk size on every runtime database."""
    if args.batch_rows < 1:
        raise SystemExit("--batch-rows must be >= 1")
    runtime = getattr(system, "runtime", None)
    sources = (
        runtime.data_sources.values() if runtime is not None
        else [system.source] if hasattr(system, "source") else []
    )
    for source in sources:
        source.database.batch_rows = args.batch_rows


def enable_chaos(system, args: argparse.Namespace):
    """Wire a seeded FaultInjector + ResiliencePolicy into a sharding system.

    Returns the injector, or None when the system has no runtime to wire
    (single-node baselines run without fault injection).
    """
    runtime = getattr(system, "runtime", None)
    if runtime is None:
        print(f"warning: --chaos ignored: {system.name} has no sharding runtime",
              file=sys.stderr)
        return None
    from ..engine import ResiliencePolicy
    from ..storage import FaultInjector

    injector = FaultInjector(seed=args.chaos_seed)
    for name, source in runtime.data_sources.items():
        injector.configure(
            name,
            transient_rate=args.chaos_transient_rate,
            latency_rate=0.005,
            latency_spike=0.002,
        )
        source.set_fault_injector(injector)
    runtime.engine.executor.enable_resilience(
        ResiliencePolicy(max_retries=4, retry_writes=True, seed=args.chaos_seed)
    )
    return injector


def enable_profile(system, args: argparse.Namespace):
    """Attach a fresh Observability to the system's runtime (post-prepare).

    A new registry means the stage histograms cover only the measured run,
    not data loading. Returns the Observability, or None when the system
    has no sharding runtime to instrument.
    """
    runtime = getattr(system, "runtime", None)
    if runtime is None:
        print(f"warning: --profile ignored: {system.name} has no sharding runtime",
              file=sys.stderr)
        return None
    from ..observability import Observability

    observability = Observability()
    observability.stage_sample_every = max(1, args.profile_sample_every)
    runtime.observability = observability
    runtime.engine.attach_observability(observability)
    return observability


def apply_workload_analytics(system, args: argparse.Namespace) -> None:
    """Honor --no-workload-analytics on whatever Observability is live.

    Called after enable_profile so the toggle survives the profile's
    registry swap.
    """
    runtime = getattr(system, "runtime", None)
    observability = getattr(runtime, "observability", None)
    if observability is None:
        if args.no_workload_analytics:
            print(f"warning: --no-workload-analytics ignored: {system.name} "
                  "has no sharding runtime", file=sys.stderr)
        return
    observability.workload.enabled = not args.no_workload_analytics


def _plan_cache_stats(system):
    """Current plan-cache counters, or None for systems without the engine."""
    runtime = getattr(system, "runtime", None)
    engine = getattr(runtime, "engine", None) if runtime is not None else None
    plan_cache = getattr(engine, "plan_cache", None) if engine is not None else None
    return plan_cache.stats() if plan_cache is not None else None


def _result_cache_stats(system):
    """Current result-cache counters, or None for systems without the engine."""
    runtime = getattr(system, "runtime", None)
    engine = getattr(runtime, "engine", None) if runtime is not None else None
    cache = getattr(engine, "result_cache", None) if engine is not None else None
    return cache.stats() if cache is not None else None


def _storage_plan_stats(system):
    """Storage plan-cache counters summed across data sources, or None."""
    runtime = getattr(system, "runtime", None)
    sources = getattr(runtime, "data_sources", None) if runtime is not None else None
    if not sources:
        return None
    total = {"size": 0, "capacity": 0, "hits": 0, "misses": 0,
             "bypasses": 0, "evictions": 0, "invalidations": 0}
    for source in sources.values():
        stats = source.database.plan_cache.stats()
        for key in total:
            total[key] += stats[key]
    return total


def print_profile_report(system, observability, measurement, args,
                         plan_before=None, storage_before=None,
                         result_cache_before=None) -> None:
    profile = observability.stage_profile()
    rows = [
        (stage, int(stats["count"]), round(stats["avg"] * 1000, 3),
         round(stats["p50"] * 1000, 3), round(stats["p95"] * 1000, 3),
         round(stats["p99"] * 1000, 3))
        for stage, stats in profile.items()
    ]
    print(format_table(
        ["Stage", "Count", "Avg(ms)", "p50(ms)", "p95(ms)", "p99(ms)"], rows
    ))
    sources = {
        labels.get("source", "-"): value
        for labels, value in observability.registry.get("storage_queries_total").samples()
    }
    payload = {
        "system": measurement.system,
        "scenario": measurement.scenario,
        "transactions": measurement.transactions,
        "errors": measurement.errors,
        "tps": round(measurement.tps, 2),
        "avg_ms": round(measurement.avg_ms, 3),
        "p99_ms": round(measurement.p99_ms, 3),
        "stages": profile,
        "per_source_queries": sources,
    }
    plan_after = _plan_cache_stats(system)
    if plan_after is not None:
        # Delta vs the pre-run snapshot so prepare-phase compiles/bypasses
        # (bulk INSERTs) don't dilute the measured hit rate.
        before = plan_before or {}
        delta = {
            key: plan_after[key] - before.get(key, 0)
            for key in ("hits", "misses", "bypasses", "evictions", "invalidations")
        }
        total = delta["hits"] + delta["misses"] + delta["bypasses"]
        hit_rate = delta["hits"] / total if total else 0.0
        payload["plan_cache"] = {
            **delta,
            "size": plan_after["size"],
            "capacity": plan_after["capacity"],
            "hit_rate": round(hit_rate, 4),
        }
        print(
            f"plan cache: hit rate {hit_rate:.1%} "
            f"(hits={delta['hits']}, misses={delta['misses']}, "
            f"bypasses={delta['bypasses']}, size={plan_after['size']})"
        )
    storage_after = _storage_plan_stats(system)
    if storage_after is not None:
        before = storage_before or {}
        delta = {
            key: storage_after[key] - before.get(key, 0)
            for key in ("hits", "misses", "bypasses", "evictions", "invalidations")
        }
        total = delta["hits"] + delta["misses"] + delta["bypasses"]
        hit_rate = delta["hits"] / total if total else 0.0
        payload["storage_plan_cache"] = {
            **delta,
            "size": storage_after["size"],
            "capacity": storage_after["capacity"],
            "hit_rate": round(hit_rate, 4),
        }
        print(
            f"storage plan cache: hit rate {hit_rate:.1%} "
            f"(hits={delta['hits']}, misses={delta['misses']}, "
            f"bypasses={delta['bypasses']}, "
            f"invalidations={delta['invalidations']}, "
            f"size={storage_after['size']})"
        )
    cache_after = _result_cache_stats(system)
    if cache_after is not None and cache_after["enabled"]:
        before = result_cache_before or {}
        delta = {
            key: cache_after[key] - before.get(key, 0)
            for key in ("hits", "misses", "stores", "evictions",
                        "invalidations", "causal_bypasses")
        }
        total = delta["hits"] + delta["misses"]
        hit_rate = delta["hits"] / total if total else 0.0
        payload["result_cache"] = {
            **delta,
            "entries": cache_after["entries"],
            "capacity": cache_after["capacity"],
            "hit_rate": round(hit_rate, 4),
        }
        print(
            f"result cache: hit rate {hit_rate:.1%} "
            f"(hits={delta['hits']}, misses={delta['misses']}, "
            f"stores={delta['stores']}, "
            f"invalidations={delta['invalidations']}, "
            f"causal_bypasses={delta['causal_bypasses']}, "
            f"entries={cache_after['entries']})"
        )
    groups = getattr(system, "replica_groups", None)
    if groups:
        payload["replication"] = {
            "lag": [row for group in groups for row in group.lag_report()],
            "promotions": [
                {
                    "group": event.group,
                    "old_primary": event.old_primary,
                    "new_primary": event.new_primary,
                    "lsn": event.lsn,
                }
                for group in groups for event in group.promotions
            ],
        }
        total_lag = sum(
            row["lag_records"] for row in payload["replication"]["lag"]
        )
        print(
            f"replication: {len(groups)} group(s), "
            f"{sum(len(g.states) for g in groups)} replica(s), "
            f"{total_lag} unapplied record(s), "
            f"{len(payload['replication']['promotions'])} promotion(s)"
        )
    workload = getattr(observability, "workload", None)
    if workload is not None and workload.enabled:
        digests = workload.digest_report(limit=10)
        heat = workload.heat_report()
        skew = workload.table_skew()
        hot_keys = workload.hot_key_report(limit=10)
        payload["digests"] = digests
        payload["shard_heat"] = {"nodes": heat, "tables": skew}
        payload["hot_keys"] = hot_keys
        payload["slo"] = {
            "objectives": workload.slo_report(),
            "alerts": workload.alert_report(),
        }
        if digests:
            top = digests[0]
            print(
                f"workload: {len(digests)} digest(s); top by time: "
                f"{top['sql'][:60]!r} calls={top['calls']} "
                f"avg={top['avg_ms']}ms p95={top['p95_ms']}ms"
            )
        for table, info in skew.items():
            print(
                f"workload: table {table} imbalance {info['imbalance']}x "
                f"across {info['nodes']} node(s), hottest {info['hottest']}"
            )
        if hot_keys:
            head = hot_keys[0]
            print(
                f"workload: hottest key {head['table']}.{head['column']}="
                f"{head['key']} (count {head['count']}, "
                f"share {head['share']:.1%})"
            )
    with open(args.profile_output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"profile written to {args.profile_output}")


def print_chaos_report(system, injector) -> None:
    metrics = system.runtime.engine.executor.metrics.snapshot()
    print("chaos: injected =", dict(injector.snapshot()))
    print("chaos: absorbed = "
          + ", ".join(f"{key}={metrics[key]}" for key in
                      ("retries", "reroutes", "timeouts", "giveups",
                       "degraded_statements", "breaker_rejections")))


def build_system(args: argparse.Namespace, tables, broadcast=()):
    grid = dict(
        num_sources=args.sources,
        tables_per_source=args.tables_per_source,
        latency=BENCH_LATENCY,
    )
    if args.workload == "sysbench":
        grid.update(layout=args.layout)
        if args.layout == "range":
            grid.update(key_space=args.table_size + 1)
    engine_grid = dict(
        grid,
        replicas=args.replicas,
        replication_lag=args.replication_lag_ms / 1000.0,
        replication_jitter=0.25 if args.replication_lag_ms else 0.0,
        result_cache=not args.no_result_cache,
    )
    if args.replicas and args.system not in ("ssj", "ssp"):
        print(f"warning: --replicas ignored: {args.system} has no replica groups",
              file=sys.stderr)
    if args.system == "ssj":
        return ShardingJDBCSystem(
            tables, broadcast_tables=broadcast, name="SSJ",
            transaction_type=TransactionType.of(args.transaction_type),
            max_connections_per_query=args.maxcon, **engine_grid,
        )
    if args.system == "ssp":
        return ShardingProxySystem(
            tables, broadcast_tables=broadcast, name="SSP",
            max_connections_per_query=args.maxcon, **engine_grid,
        )
    if args.system == "middleware":
        return MiddlewareSystem(tables, broadcast_tables=broadcast, name="Vitess-like", **grid)
    if args.system == "newsql":
        return NewSQLSystem(tables, broadcast_tables=broadcast, name="TiDB-like", **grid)
    if args.system == "ms":
        return SingleNodeSystem("MS", latency=BENCH_LATENCY)
    if args.system == "aurora":
        return AuroraLikeSystem(latency=BENCH_LATENCY, name="Aurora-like")
    raise SystemExit(f"unknown system {args.system!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.proxy:
        from .proxy import run_proxy_bench

        return run_proxy_bench(args)

    if args.workload == "sysbench":
        workload = SysbenchWorkload(SysbenchConfig(
            table_size=args.table_size,
            key_distribution=args.skew,
            zipf_exponent=args.zipf_exponent,
        ))
        system = build_system(args, [("sbtest", "id")])
        apply_batch_rows(system, args)
        print(f"preparing {args.system} with {args.table_size} rows ...", file=sys.stderr)
        workload.prepare(system)
        if hasattr(system, "sync_replicas"):
            system.sync_replicas()
        injector = enable_chaos(system, args) if args.chaos else None
        observability = enable_profile(system, args) if args.profile else None
        apply_workload_analytics(system, args)
        plan_before = _plan_cache_stats(system) if args.profile else None
        storage_before = _storage_plan_stats(system) if args.profile else None
        cache_before = _result_cache_stats(system) if args.profile else None
        try:
            measurement = run_benchmark(
                system,
                lambda session, rng: workload.run_transaction(args.scenario, session, rng),
                scenario=args.scenario, threads=args.threads,
                duration=args.duration, warmup=args.warmup,
            )
        finally:
            system.close()
        print(format_table(["System", "TPS", "99T(ms)", "AvgT(ms)"], [sysbench_row(measurement)]))
        print(f"({measurement.transactions} transactions, {measurement.errors} errors, "
              f"scenario={args.scenario}, threads={args.threads})")
        if injector is not None:
            print_chaos_report(system, injector)
        if observability is not None:
            print_profile_report(system, observability, measurement, args,
                                 plan_before, storage_before, cache_before)
        return 0

    workload = TPCCWorkload(TPCCConfig(
        warehouses=args.warehouses, use_pipeline=not args.no_pipeline,
    ))
    system = build_system(
        args, TPCC_SHARDED_TABLES, broadcast=TPCC_BROADCAST_TABLES
    ) if args.system not in ("ms", "aurora") else build_system(args, [])
    apply_batch_rows(system, args)
    print(f"preparing TPC-C with {args.warehouses} warehouses ...", file=sys.stderr)
    workload.prepare(system)
    if hasattr(system, "sync_replicas"):
        system.sync_replicas()
    injector = enable_chaos(system, args) if args.chaos else None
    observability = enable_profile(system, args) if args.profile else None
    apply_workload_analytics(system, args)
    plan_before = _plan_cache_stats(system) if args.profile else None
    storage_before = _storage_plan_stats(system) if args.profile else None
    cache_before = _result_cache_stats(system) if args.profile else None
    try:
        measurement = run_benchmark(
            system,
            lambda session, rng: workload.run_transaction(
                workload.pick_transaction(rng), session, rng
            ),
            scenario="tpcc", threads=args.threads,
            duration=args.duration, warmup=args.warmup,
        )
    finally:
        system.close()
    print(format_table(["System", "TPS", "90T(ms)"], [tpcc_row(measurement)]))
    print(f"({measurement.transactions} transactions, {measurement.errors} errors, "
          f"threads={args.threads})")
    if injector is not None:
        print_chaos_report(system, injector)
    if observability is not None:
        print_profile_report(system, observability, measurement, args,
                             plan_before, storage_before, cache_before)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
