"""Proxy concurrency benchmark: ``python -m repro.bench --proxy``.

Measures the session-multiplexing reactor front-end the way the paper's
Fig. 14 measures ShardingSphere-Proxy — but the quantity under test here
is *session scalability*, not raw TPS: N concurrently-open client
sessions are served by a fixed ``1 + workers`` server threads, and every
session must keep read-your-writes through lagging replicas because its
causal tokens travel with the session, not with any OS thread.

Each measured operation is a write/read pair on the session's own key:
an UPDATE through the proxy followed by a SELECT that must observe it
(the replicas lag far behind, so a violation means session state leaked
between sessions or got lost between pool workers). The emitted
``BENCH_proxy.json`` records throughput, latency percentiles, the
server's thread budget, and its backpressure counters.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any

from ..adaptors import ShardingProxyServer, ShardingRuntime
from ..distsql import execute_distsql
from ..exceptions import ServerBusyError, ShardingSphereError
from ..protocol import ProxyClient
from ..storage import DataSource, LatencyModel, ReplicaGroup

BENCH_TABLE = "t_bench"


def _percentile(sorted_values: list[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(p * (len(sorted_values) - 1)))
    return sorted_values[index]


def build_proxy_runtime(shards: int, replicas: int, lag: float,
                        connections: int,
                        latency: LatencyModel | None = None) -> ShardingRuntime:
    """A replicated, sharded runtime seeded with one row per session."""
    latency = latency if latency is not None else LatencyModel.off()
    sources: dict[str, DataSource] = {}
    groups: list[ReplicaGroup] = []
    for i in range(shards):
        primary = DataSource(f"ds{i}", latency=latency)
        sources[f"ds{i}"] = primary
        group = ReplicaGroup(primary, seed=i)
        for r in range(replicas):
            replica = DataSource(f"ds{i}_r{r}", latency=latency)
            sources[f"ds{i}_r{r}"] = replica
            group.add_replica(replica, lag=lag)
        groups.append(group)
    runtime = ShardingRuntime(sources)
    resources = ", ".join(f"ds{i}" for i in range(shards))
    execute_distsql(
        f"CREATE SHARDING TABLE RULE {BENCH_TABLE} (RESOURCES({resources}), "
        f"SHARDING_COLUMN=uid, TYPE=hash_mod, "
        f"PROPERTIES('sharding-count'={shards}))",
        runtime,
    )
    runtime.engine.execute(
        f"CREATE TABLE {BENCH_TABLE} (uid INT PRIMARY KEY, v INT)")
    for uid in range(connections):
        runtime.engine.execute(
            f"INSERT INTO {BENCH_TABLE} (uid, v) VALUES ({uid}, 0)")
    if replicas:
        for i in range(shards):
            runtime.apply_rwsplit_rule(
                f"ds{i}", f"ds{i}", [f"ds{i}_r{r}" for r in range(replicas)])
        for group in groups:
            group.sync()
    return runtime


class _Driver:
    """One driver thread pumping a fixed slice of the open sessions."""

    def __init__(self, clients: list[tuple[int, ProxyClient]], deadline: float):
        self.clients = clients
        self.deadline = deadline
        self.ops = 0
        self.errors = 0
        self.busy = 0
        self.violations = 0
        self.latencies: list[float] = []
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        round_no = 0
        while time.monotonic() < self.deadline:
            round_no += 1
            for uid, client in self.clients:
                if time.monotonic() >= self.deadline:
                    break
                started = time.perf_counter()
                try:
                    client.execute(
                        f"UPDATE {BENCH_TABLE} SET v = {round_no} "
                        f"WHERE uid = {uid}")
                    rows = client.execute(
                        f"SELECT v FROM {BENCH_TABLE} WHERE uid = {uid}"
                    ).fetchall()
                except ServerBusyError:
                    self.busy += 1
                    continue
                except ShardingSphereError:
                    self.errors += 1
                    continue
                self.latencies.append(time.perf_counter() - started)
                self.ops += 1
                if rows != [(round_no,)]:
                    self.violations += 1


def run_proxy_bench(args: Any) -> int:
    connections = args.connections
    shards = args.sources
    replicas = args.replicas if args.replicas else 1
    lag = (args.replication_lag_ms / 1000.0) if args.replication_lag_ms else 30.0
    print(f"preparing proxy bench: {shards} shard(s) x {replicas} replica(s), "
          f"lag {lag:g}s, {connections} session(s) ...", file=sys.stderr)
    runtime = build_proxy_runtime(shards, replicas, lag, connections)
    server = ShardingProxyServer(runtime).start()
    clients: list[ProxyClient] = []
    try:
        connect_started = time.perf_counter()
        for _ in range(connections):
            clients.append(ProxyClient("127.0.0.1", server.port))
        connect_s = time.perf_counter() - connect_started
        server_threads = sum(
            1 for t in threading.enumerate()
            if t.is_alive() and t.name.startswith("ss-proxy"))

        deadline = time.monotonic() + args.duration
        numbered = list(enumerate(clients))
        drivers = [
            _Driver(numbered[i::args.threads], deadline)
            for i in range(args.threads)
        ]
        for driver in drivers:
            driver.thread.start()
        for driver in drivers:
            driver.thread.join(timeout=args.duration + 60)

        ops = sum(d.ops for d in drivers)
        latencies = sorted(x for d in drivers for x in d.latencies)
        stats = server.stats()
        payload = {
            "benchmark": "proxy-reactor",
            "connections": connections,
            "driver_threads": args.threads,
            "duration_s": args.duration,
            "shards": shards,
            "replicas_per_shard": replicas,
            "replication_lag_s": lag,
            "connect_s": round(connect_s, 4),
            "connects_per_s": round(connections / connect_s, 1) if connect_s else None,
            "ops": ops,
            "ops_per_s": round(ops / args.duration, 2),
            "errors": sum(d.errors for d in drivers),
            "busy_rejections_seen": sum(d.busy for d in drivers),
            "read_your_writes_violations": sum(d.violations for d in drivers),
            "avg_ms": round(sum(latencies) / len(latencies) * 1000, 3) if latencies else 0.0,
            "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
            "server_threads": server_threads,
            "workers": server.workers,
            "server": stats,
        }
    finally:
        for client in clients:
            try:
                client.close()
            except Exception:
                pass
        server.stop()
        runtime.close()

    print(f"proxy: {payload['ops']} op(s) in {args.duration:g}s "
          f"({payload['ops_per_s']} op/s) over {connections} session(s) on "
          f"{payload['server_threads']} server thread(s); "
          f"avg {payload['avg_ms']}ms p99 {payload['p99_ms']}ms")
    print(f"proxy: errors={payload['errors']} "
          f"busy={payload['busy_rejections_seen']} "
          f"read_your_writes_violations={payload['read_your_writes_violations']}")
    with open(args.proxy_output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"proxy report written to {args.proxy_output}")
    if payload["read_your_writes_violations"] or payload["errors"]:
        return 1
    return 0
