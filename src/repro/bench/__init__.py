"""Benchmark substrate: Sysbench + TPC-C workloads, runner, reporting."""

from .report import format_table, print_series, sysbench_row, tpcc_row
from .runner import Measurement, run_benchmark
from .sysbench import SCENARIOS, SysbenchConfig, SysbenchWorkload
from .tpcc import (
    TPCC_BROADCAST_TABLES,
    TPCC_SHARDED_TABLES,
    TRANSACTION_MIX,
    TPCCConfig,
    TPCCWorkload,
)

__all__ = [
    "SysbenchConfig",
    "SysbenchWorkload",
    "SCENARIOS",
    "TPCCConfig",
    "TPCCWorkload",
    "TPCC_SHARDED_TABLES",
    "TPCC_BROADCAST_TABLES",
    "TRANSACTION_MIX",
    "Measurement",
    "run_benchmark",
    "format_table",
    "print_series",
    "sysbench_row",
    "tpcc_row",
]
