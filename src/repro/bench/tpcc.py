"""TPC-C workload generator (laptop scale).

Re-implements the TPC-C benchmark the paper uses (the "native TPCC",
BenchmarkSQL-style ``bmsql_*`` schema): the nine warehouse-centric tables
and the five transaction profiles with the standard mix — New-Order 45%,
Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level 4%.

Scale is configurable; the defaults are laptop-sized (the paper uses 200
warehouses with ~600k rows each on a 12-server cluster). All tables are
sharded by warehouse id in the paper's layout; ``bmsql_item`` carries no
warehouse id and is treated as a broadcast (replicated) table.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from ..baselines.base import Session, SystemUnderTest

#: the paper's sharding layout for TPC-C: (logic table, sharding column[, tables/source])
TPCC_SHARDED_TABLES = [
    ("bmsql_warehouse", "w_id", 1),
    ("bmsql_district", "d_w_id", 1),
    ("bmsql_customer", "c_w_id", 1),
    ("bmsql_history", "h_w_id", 1),
    ("bmsql_stock", "s_w_id", 1),
    ("bmsql_oorder", "o_w_id", 1),
    ("bmsql_new_order", "no_w_id", 1),
    ("bmsql_order_line", "ol_w_id", 10),  # biggest table: 10 tables per source
]

TPCC_BROADCAST_TABLES = ["bmsql_item"]

#: standard transaction mix
TRANSACTION_MIX = [
    ("new_order", 45),
    ("payment", 43),
    ("order_status", 4),
    ("delivery", 4),
    ("stock_level", 4),
]

_DDL = [
    "CREATE TABLE bmsql_warehouse (w_id INT NOT NULL, w_name VARCHAR(10), "
    "w_ytd FLOAT DEFAULT 0, PRIMARY KEY (w_id))",
    "CREATE TABLE bmsql_district (d_w_id INT NOT NULL, d_id INT NOT NULL, "
    "d_name VARCHAR(10), d_ytd FLOAT DEFAULT 0, d_next_o_id INT DEFAULT 1, "
    "PRIMARY KEY (d_w_id, d_id))",
    "CREATE TABLE bmsql_customer (c_w_id INT NOT NULL, c_d_id INT NOT NULL, "
    "c_id INT NOT NULL, c_name VARCHAR(16), c_balance FLOAT DEFAULT 0, "
    "c_ytd_payment FLOAT DEFAULT 0, c_payment_cnt INT DEFAULT 0, "
    "PRIMARY KEY (c_w_id, c_d_id, c_id))",
    "CREATE TABLE bmsql_history (h_w_id INT, h_d_id INT, h_c_id INT, "
    "h_amount FLOAT, h_data VARCHAR(24))",
    "CREATE TABLE bmsql_item (i_id INT NOT NULL, i_name VARCHAR(24), "
    "i_price FLOAT, PRIMARY KEY (i_id))",
    "CREATE TABLE bmsql_stock (s_w_id INT NOT NULL, s_i_id INT NOT NULL, "
    "s_quantity INT DEFAULT 0, s_ytd FLOAT DEFAULT 0, s_order_cnt INT DEFAULT 0, "
    "PRIMARY KEY (s_w_id, s_i_id))",
    "CREATE TABLE bmsql_oorder (o_w_id INT NOT NULL, o_d_id INT NOT NULL, "
    "o_id INT NOT NULL, o_c_id INT, o_carrier_id INT, o_ol_cnt INT, "
    "o_entry_d VARCHAR(20), PRIMARY KEY (o_w_id, o_d_id, o_id))",
    "CREATE TABLE bmsql_new_order (no_w_id INT NOT NULL, no_d_id INT NOT NULL, "
    "no_o_id INT NOT NULL, PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
    "CREATE TABLE bmsql_order_line (ol_w_id INT NOT NULL, ol_d_id INT NOT NULL, "
    "ol_o_id INT NOT NULL, ol_number INT NOT NULL, ol_i_id INT, ol_quantity INT, "
    "ol_amount FLOAT, ol_delivery_d VARCHAR(20), "
    "PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
]


@dataclass
class TPCCConfig:
    """Scale knobs (real TPC-C values in comments)."""

    warehouses: int = 2            # paper: 200
    districts: int = 4             # spec: 10
    customers_per_district: int = 20   # spec: 3000
    items: int = 100               # spec: 100_000
    initial_orders_per_district: int = 20  # spec: 3000
    max_lines_per_order: int = 10  # spec: 5-15
    min_lines_per_order: int = 5
    seed: int = 7
    load_batch: int = 200
    #: ship independent statement runs through the session's fused
    #: pipeline (one storage round trip, write-I/O coalesced per table);
    #: False forces the serial statement-at-a-time path on every session
    use_pipeline: bool = True


def _name(rng: random.Random, length: int) -> str:
    return "".join(rng.choices(string.ascii_uppercase, k=length))


class TPCCWorkload:
    """Prepares the TPC-C data set and runs the five transactions."""

    def __init__(self, config: TPCCConfig | None = None):
        self.config = config or TPCCConfig()
        names = [name for name, _ in TRANSACTION_MIX]
        weights = [weight for _, weight in TRANSACTION_MIX]
        self._mix_names = names
        self._mix_weights = weights

    # ------------------------------------------------------------------
    # Prepare phase
    # ------------------------------------------------------------------

    def prepare(self, system: SystemUnderTest) -> None:
        cfg = self.config
        rng = random.Random(cfg.seed)
        session = system.session()
        try:
            for ddl in _DDL:
                session.execute(ddl)
            self._load_items(session, rng)
            for w_id in range(1, cfg.warehouses + 1):
                self._load_warehouse(session, rng, w_id)
        finally:
            session.close()

    def _load_items(self, session: Session, rng: random.Random) -> None:
        cfg = self.config
        rows = [
            f"({i}, '{_name(rng, 12)}', {round(rng.uniform(1, 100), 2)})"
            for i in range(1, cfg.items + 1)
        ]
        for start in range(0, len(rows), cfg.load_batch):
            chunk = rows[start : start + cfg.load_batch]
            session.execute(
                "INSERT INTO bmsql_item (i_id, i_name, i_price) VALUES " + ", ".join(chunk)
            )

    def _load_warehouse(self, session: Session, rng: random.Random, w_id: int) -> None:
        cfg = self.config
        session.execute(
            f"INSERT INTO bmsql_warehouse (w_id, w_name) VALUES ({w_id}, '{_name(rng, 6)}')"
        )
        stock_rows = [
            f"({w_id}, {i_id}, {rng.randint(10, 100)})" for i_id in range(1, cfg.items + 1)
        ]
        for start in range(0, len(stock_rows), cfg.load_batch):
            chunk = stock_rows[start : start + cfg.load_batch]
            session.execute(
                "INSERT INTO bmsql_stock (s_w_id, s_i_id, s_quantity) VALUES " + ", ".join(chunk)
            )
        for d_id in range(1, cfg.districts + 1):
            session.execute(
                "INSERT INTO bmsql_district (d_w_id, d_id, d_name, d_next_o_id) "
                f"VALUES ({w_id}, {d_id}, '{_name(rng, 6)}', "
                f"{cfg.initial_orders_per_district + 1})"
            )
            customers = [
                f"({w_id}, {d_id}, {c_id}, '{_name(rng, 10)}', {round(rng.uniform(-10, 10), 2)})"
                for c_id in range(1, cfg.customers_per_district + 1)
            ]
            session.execute(
                "INSERT INTO bmsql_customer (c_w_id, c_d_id, c_id, c_name, c_balance) "
                "VALUES " + ", ".join(customers)
            )
            self._load_orders(session, rng, w_id, d_id)

    def _load_orders(self, session: Session, rng: random.Random, w_id: int, d_id: int) -> None:
        cfg = self.config
        order_rows = []
        line_rows = []
        new_order_rows = []
        for o_id in range(1, cfg.initial_orders_per_district + 1):
            c_id = rng.randint(1, cfg.customers_per_district)
            ol_cnt = rng.randint(cfg.min_lines_per_order, cfg.max_lines_per_order)
            carrier = rng.randint(1, 10) if o_id <= cfg.initial_orders_per_district * 0.7 else "NULL"
            order_rows.append(
                f"({w_id}, {d_id}, {o_id}, {c_id}, {carrier}, {ol_cnt}, '2021-11-10')"
            )
            if carrier == "NULL":
                new_order_rows.append(f"({w_id}, {d_id}, {o_id})")
            for number in range(1, ol_cnt + 1):
                i_id = rng.randint(1, cfg.items)
                amount = round(rng.uniform(1, 200), 2)
                line_rows.append(
                    f"({w_id}, {d_id}, {o_id}, {number}, {i_id}, "
                    f"{rng.randint(1, 10)}, {amount}, '2021-11-10')"
                )
        session.execute(
            "INSERT INTO bmsql_oorder (o_w_id, o_d_id, o_id, o_c_id, o_carrier_id, "
            "o_ol_cnt, o_entry_d) VALUES " + ", ".join(order_rows)
        )
        if new_order_rows:
            session.execute(
                "INSERT INTO bmsql_new_order (no_w_id, no_d_id, no_o_id) VALUES "
                + ", ".join(new_order_rows)
            )
        for start in range(0, len(line_rows), cfg.load_batch):
            chunk = line_rows[start : start + cfg.load_batch]
            session.execute(
                "INSERT INTO bmsql_order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, "
                "ol_i_id, ol_quantity, ol_amount, ol_delivery_d) VALUES " + ", ".join(chunk)
            )

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def pick_transaction(self, rng: random.Random) -> str:
        return rng.choices(self._mix_names, weights=self._mix_weights, k=1)[0]

    def _run_batch(self, session: Session, statements):
        """Run a batch of independent statements, pipelined when possible.

        Sessions exposing ``execute_pipeline`` get the fused path (one
        connection checkout + one storage round trip per same-shard run);
        anything else — or ``use_pipeline=False`` — runs the statements
        serially. Results are identical either way: one rows-list per
        query, one rowcount per write, in statement order.
        """
        runner = getattr(session, "execute_pipeline", None)
        if self.config.use_pipeline and runner is not None:
            return runner(statements)
        return [session.execute(sql, params) for sql, params in statements]

    def run_transaction(self, name: str, session: Session, rng: random.Random) -> None:
        handler = getattr(self, f"txn_{name}", None)
        if handler is None:
            raise ValueError(f"unknown TPC-C transaction {name!r}")
        handler(session, rng)

    # -- New-Order (45%) ----------------------------------------------------

    def txn_new_order(self, session: Session, rng: random.Random) -> None:
        """New-Order with bounded retry: two concurrent orders in the same
        district race on d_next_o_id (we have no SELECT ... FOR UPDATE row
        locks), so a duplicate order id aborts and retries — the standard
        TPC-C driver behaviour for serialization failures."""
        for attempt in range(5):
            try:
                self._new_order_once(session, rng)
                return
            except Exception:
                if attempt == 4:
                    raise

    def _new_order_once(self, session: Session, rng: random.Random) -> None:
        """One New-Order attempt: claim phase -> read phase -> write phase.

        The claim phase pairs the d_next_o_id read with its increment in
        one autocommit batch (both route to the district's shard, so a
        pipelining session ships them as a single round trip) *before*
        the transaction opens: without SELECT ... FOR UPDATE row locks a
        rollback restores the district row's before-image, so claiming
        inside the transaction lets an aborted order rewind a concurrent
        committed increment and wedge the district on a used order id.
        Claiming outside means an aborted order burns its id (a gap,
        which Delivery's MIN(no_o_id) scan tolerates) and the race
        window shrinks to the two adjacent claim statements. The order
        lines are independent of each other, so the per-line price/stock
        lookups form one read batch and the per-line stock/order-line
        writes join the order inserts in one write batch — the whole
        transaction is three round trips instead of 3 + 4·lines statement
        trips, with every write's I/O coalesced per table. A duplicate
        order id still aborts on the oorder insert, unchanged.
        """
        cfg = self.config
        w_id = rng.randint(1, cfg.warehouses)
        d_id = rng.randint(1, cfg.districts)
        c_id = rng.randint(1, cfg.customers_per_district)
        ol_cnt = rng.randint(cfg.min_lines_per_order, cfg.max_lines_per_order)
        lines = [
            (rng.randint(1, cfg.items), rng.randint(1, 10)) for _ in range(ol_cnt)
        ]
        claim = self._run_batch(session, [
            (
                "SELECT d_next_o_id FROM bmsql_district WHERE d_w_id = ? AND d_id = ?",
                (w_id, d_id),
            ),
            (
                "UPDATE bmsql_district SET d_next_o_id = d_next_o_id + 1 "
                "WHERE d_w_id = ? AND d_id = ?",
                (w_id, d_id),
            ),
        ])
        o_id = claim[0][0][0]
        session.begin()
        try:
            reads = []
            for i_id, _quantity in lines:
                reads.append(
                    ("SELECT i_price FROM bmsql_item WHERE i_id = ?", (i_id,))
                )
                reads.append((
                    "SELECT s_quantity FROM bmsql_stock WHERE s_w_id = ? AND s_i_id = ?",
                    (w_id, i_id),
                ))
            rows = self._run_batch(session, reads)
            writes = [
                (
                    "INSERT INTO bmsql_oorder (o_w_id, o_d_id, o_id, o_c_id, o_ol_cnt, "
                    "o_entry_d) VALUES (?, ?, ?, ?, ?, ?)",
                    (w_id, d_id, o_id, c_id, ol_cnt, "2021-11-11"),
                ),
                (
                    "INSERT INTO bmsql_new_order (no_w_id, no_d_id, no_o_id) VALUES (?, ?, ?)",
                    (w_id, d_id, o_id),
                ),
            ]
            for number, (i_id, quantity) in enumerate(lines, start=1):
                price = rows[2 * number - 2][0][0]
                s_quantity = rows[2 * number - 1][0][0]
                new_quantity = (
                    s_quantity - quantity
                    if s_quantity > quantity + 10
                    else s_quantity - quantity + 91
                )
                writes.append((
                    "UPDATE bmsql_stock SET s_quantity = ?, s_ytd = s_ytd + ?, "
                    "s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?",
                    (new_quantity, quantity, w_id, i_id),
                ))
                writes.append((
                    "INSERT INTO bmsql_order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, "
                    "ol_i_id, ol_quantity, ol_amount) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (w_id, d_id, o_id, number, i_id, quantity, round(price * quantity, 2)),
                ))
            self._run_batch(session, writes)
        except Exception:
            session.rollback()
            raise
        else:
            session.commit()

    # -- Payment (43%) -------------------------------------------------------

    def txn_payment(self, session: Session, rng: random.Random) -> None:
        cfg = self.config
        w_id = rng.randint(1, cfg.warehouses)
        d_id = rng.randint(1, cfg.districts)
        c_id = rng.randint(1, cfg.customers_per_district)
        amount = round(rng.uniform(1, 5000), 2)
        session.begin()
        try:
            # all four writes shard by w_id -> one source: a pipelining
            # session ships them as one round trip (4 tables, 4 coalesced
            # write-I/O charges instead of 4 serial statement trips)
            self._run_batch(session, [
                (
                    "UPDATE bmsql_warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
                    (amount, w_id),
                ),
                (
                    "UPDATE bmsql_district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
                    (amount, w_id, d_id),
                ),
                (
                    "UPDATE bmsql_customer SET c_balance = c_balance - ?, "
                    "c_ytd_payment = c_ytd_payment + ?, c_payment_cnt = c_payment_cnt + 1 "
                    "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                    (amount, amount, w_id, d_id, c_id),
                ),
                (
                    "INSERT INTO bmsql_history (h_w_id, h_d_id, h_c_id, h_amount, h_data) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (w_id, d_id, c_id, amount, "payment"),
                ),
            ])
        except Exception:
            session.rollback()
            raise
        else:
            session.commit()

    # -- Order-Status (4%, read-only) ------------------------------------------

    def txn_order_status(self, session: Session, rng: random.Random) -> None:
        cfg = self.config
        w_id = rng.randint(1, cfg.warehouses)
        d_id = rng.randint(1, cfg.districts)
        c_id = rng.randint(1, cfg.customers_per_district)
        session.execute(
            "SELECT c_name, c_balance FROM bmsql_customer "
            "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            (w_id, d_id, c_id),
        )
        rows = session.execute(
            "SELECT MAX(o_id) FROM bmsql_oorder WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ?",
            (w_id, d_id, c_id),
        )
        o_id = rows[0][0]
        if o_id is not None:
            session.execute(
                "SELECT ol_i_id, ol_quantity, ol_amount, ol_delivery_d FROM bmsql_order_line "
                "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                (w_id, d_id, o_id),
            )

    # -- Delivery (4%) -------------------------------------------------------------

    def txn_delivery(self, session: Session, rng: random.Random) -> None:
        """Delivery in three phases: oldest-order lookups, order details,
        then every district's writes in one cross-district batch.

        The per-district work is independent (one order per district), so
        the serial statement interleaving can be regrouped: a pipelining
        session pays the write I/O once per *table* for the whole batch
        (new_order, oorder, order_line, customer) instead of once per
        district per table. The SUM(ol_amount) read moves ahead of the
        ol_delivery_d update — it does not read that column, so the total
        is unchanged.
        """
        cfg = self.config
        w_id = rng.randint(1, cfg.warehouses)
        carrier = rng.randint(1, 10)
        session.begin()
        try:
            mins = self._run_batch(session, [
                (
                    "SELECT MIN(no_o_id) FROM bmsql_new_order WHERE no_w_id = ? AND no_d_id = ?",
                    (w_id, d_id),
                )
                for d_id in range(1, cfg.districts + 1)
            ])
            targets = [
                (d_id, rows[0][0])
                for d_id, rows in enumerate(mins, start=1)
                if rows[0][0] is not None
            ]
            details = self._run_batch(session, [
                stmt
                for d_id, o_id in targets
                for stmt in (
                    (
                        "SELECT o_c_id FROM bmsql_oorder "
                        "WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
                        (w_id, d_id, o_id),
                    ),
                    (
                        "SELECT SUM(ol_amount) FROM bmsql_order_line "
                        "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                        (w_id, d_id, o_id),
                    ),
                )
            ])
            writes = []
            for index, (d_id, o_id) in enumerate(targets):
                customer = details[2 * index]
                total = details[2 * index + 1][0][0] or 0
                writes.append((
                    "DELETE FROM bmsql_new_order "
                    "WHERE no_w_id = ? AND no_d_id = ? AND no_o_id = ?",
                    (w_id, d_id, o_id),
                ))
                writes.append((
                    "UPDATE bmsql_oorder SET o_carrier_id = ? "
                    "WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
                    (carrier, w_id, d_id, o_id),
                ))
                writes.append((
                    "UPDATE bmsql_order_line SET ol_delivery_d = ? "
                    "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                    ("2021-11-12", w_id, d_id, o_id),
                ))
                if customer:
                    writes.append((
                        "UPDATE bmsql_customer SET c_balance = c_balance + ? "
                        "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                        (total, w_id, d_id, customer[0][0]),
                    ))
            if writes:
                self._run_batch(session, writes)
        except Exception:
            session.rollback()
            raise
        else:
            session.commit()

    # -- Stock-Level (4%, read-only) ---------------------------------------------

    def txn_stock_level(self, session: Session, rng: random.Random) -> None:
        cfg = self.config
        w_id = rng.randint(1, cfg.warehouses)
        d_id = rng.randint(1, cfg.districts)
        threshold = rng.randint(10, 20)
        rows = session.execute(
            "SELECT d_next_o_id FROM bmsql_district WHERE d_w_id = ? AND d_id = ?",
            (w_id, d_id),
        )
        next_o_id = rows[0][0]
        lines = session.execute(
            "SELECT DISTINCT ol_i_id FROM bmsql_order_line "
            "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id BETWEEN ? AND ?",
            (w_id, d_id, max(1, next_o_id - 20), next_o_id),
        )
        item_ids = sorted({row[0] for row in lines if row[0] is not None})
        if not item_ids:
            return
        placeholders = ", ".join("?" for _ in item_ids)
        session.execute(
            f"SELECT COUNT(*) FROM bmsql_stock WHERE s_w_id = ? AND s_i_id IN ({placeholders}) "
            "AND s_quantity < ?",
            (w_id, *item_ids, threshold),
        )
