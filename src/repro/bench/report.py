"""Report formatting: print rows/series the way the paper's tables do."""

from __future__ import annotations

from typing import Any, Sequence

from .runner import Measurement


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table."""
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def sysbench_row(measurement: Measurement) -> list[Any]:
    """One Table III/IV row: System, TPS, 99T(ms), AvgT(ms)."""
    return [
        measurement.system,
        round(measurement.tps, 1),
        round(measurement.p99_ms, 2),
        round(measurement.avg_ms, 2),
    ]


def tpcc_row(measurement: Measurement) -> list[Any]:
    """One Fig. 9 row: System, TPS, 90T(ms)."""
    return [
        measurement.system,
        round(measurement.tps, 1),
        round(measurement.p90_ms, 2),
    ]


def print_series(title: str, x_label: str, xs: Sequence[Any],
                 series: dict[str, Sequence[float]], unit: str = "") -> str:
    """Render a figure as a table of series (one row per x value)."""
    headers = [x_label] + [f"{name}{f' ({unit})' if unit else ''}" for name in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [round(values[i], 2) for values in series.values()])
    return f"== {title} ==\n" + format_table(headers, rows)
