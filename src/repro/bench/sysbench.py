"""Sysbench-compatible OLTP workload generator.

Re-implements the classic sysbench ``oltp_*`` scripts at laptop scale:
the ``sbtest`` table (id, k, c, pad) and the four scenarios the paper's
Table III reports — Point Select, Read Only, Write Only and Read Write —
with the standard per-transaction query mix (10 point selects, 4 range
query flavours, index/non-index updates, delete+insert).

The paper's Java requester drives these through ShardingSphere-JDBC or
JDBC; ours drives them through any :class:`repro.baselines.SystemUnderTest`.
"""

from __future__ import annotations

import random
import string
from bisect import bisect_left
from dataclasses import dataclass, field

from ..baselines.base import Session, SystemUnderTest


@dataclass
class SysbenchConfig:
    """Knobs mirroring sysbench's CLI options (scaled down; Table II)."""

    table_size: int = 10_000
    range_size: int = 20
    point_selects: int = 10
    simple_ranges: int = 1
    sum_ranges: int = 1
    order_ranges: int = 1
    distinct_ranges: int = 1
    index_updates: int = 1
    non_index_updates: int = 1
    delete_inserts: int = 1
    load_batch: int = 500
    seed: int = 42

    c_length: int = 119
    pad_length: int = 59

    #: how point/update row ids are drawn: "uniform" matches classic
    #: sysbench; "zipfian" skews toward low ids (sysbench's --rand-type
    #: equivalent) so hot-key detection has something to find.
    key_distribution: str = "uniform"
    zipf_exponent: float = 1.2


SCENARIOS = ("point_select", "read_only", "write_only", "read_write")

CREATE_SBTEST = (
    "CREATE TABLE sbtest ("
    "id INT NOT NULL, "
    "k INT NOT NULL DEFAULT 0, "
    "c CHAR(120) NOT NULL DEFAULT '', "
    "pad CHAR(60) NOT NULL DEFAULT '', "
    "PRIMARY KEY (id))"
)


def _random_text(rng: random.Random, length: int) -> str:
    return "".join(rng.choices(string.ascii_lowercase + string.digits, k=length))


class SysbenchWorkload:
    """Prepares the sbtest data set and runs scenario transactions."""

    def __init__(self, config: SysbenchConfig | None = None):
        self.config = config or SysbenchConfig()
        cfg = self.config
        if cfg.key_distribution not in ("uniform", "zipfian"):
            raise ValueError(
                f"unknown key_distribution {cfg.key_distribution!r}; "
                "known: uniform, zipfian"
            )
        self._zipf_cdf: list[float] = []
        self._zipf_total = 0.0
        if cfg.key_distribution == "zipfian":
            # Zipf over ids 1..table_size: P(id=i) ~ 1/i^s. Precompute the
            # cumulative weights once; sampling is then one bisect per id.
            total = 0.0
            cdf = []
            for i in range(1, cfg.table_size + 1):
                total += 1.0 / (i ** cfg.zipf_exponent)
                cdf.append(total)
            self._zipf_cdf = cdf
            self._zipf_total = total

    # ------------------------------------------------------------------
    # Prepare phase
    # ------------------------------------------------------------------

    def prepare(self, system: SystemUnderTest) -> None:
        """Create the sbtest table and load ``table_size`` rows."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        session = system.session()
        try:
            session.execute(CREATE_SBTEST)
            batch: list[str] = []
            for row_id in range(1, cfg.table_size + 1):
                k = rng.randint(1, cfg.table_size)
                c = _random_text(rng, cfg.c_length)
                pad = _random_text(rng, cfg.pad_length)
                batch.append(f"({row_id}, {k}, '{c}', '{pad}')")
                if len(batch) >= cfg.load_batch:
                    session.execute(
                        "INSERT INTO sbtest (id, k, c, pad) VALUES " + ", ".join(batch)
                    )
                    batch.clear()
            if batch:
                session.execute("INSERT INTO sbtest (id, k, c, pad) VALUES " + ", ".join(batch))
        finally:
            session.close()

    # ------------------------------------------------------------------
    # Scenario transactions
    # ------------------------------------------------------------------

    def run_transaction(self, scenario: str, session: Session, rng: random.Random) -> None:
        if scenario == "point_select":
            self._point_select(session, rng)
        elif scenario == "read_only":
            self._read_only(session, rng, transactional=True)
        elif scenario == "write_only":
            self._write_only(session, rng)
        elif scenario == "read_write":
            self._read_write(session, rng)
        else:
            raise ValueError(f"unknown scenario {scenario!r}; known: {SCENARIOS}")

    def _rand_id(self, rng: random.Random) -> int:
        if self._zipf_cdf:
            u = rng.random() * self._zipf_total
            return bisect_left(self._zipf_cdf, u) + 1
        return rng.randint(1, self.config.table_size)

    def _range_bounds(self, rng: random.Random) -> tuple[int, int]:
        start = rng.randint(1, max(1, self.config.table_size - self.config.range_size))
        return start, start + self.config.range_size - 1

    # -- reads ------------------------------------------------------------

    def _point_select(self, session: Session, rng: random.Random) -> None:
        session.execute("SELECT c FROM sbtest WHERE id = ?", (self._rand_id(rng),))

    def _reads(self, session: Session, rng: random.Random) -> None:
        cfg = self.config
        for _ in range(cfg.point_selects):
            session.execute("SELECT c FROM sbtest WHERE id = ?", (self._rand_id(rng),))
        for _ in range(cfg.simple_ranges):
            low, high = self._range_bounds(rng)
            session.execute("SELECT c FROM sbtest WHERE id BETWEEN ? AND ?", (low, high))
        for _ in range(cfg.sum_ranges):
            low, high = self._range_bounds(rng)
            session.execute("SELECT SUM(k) FROM sbtest WHERE id BETWEEN ? AND ?", (low, high))
        for _ in range(cfg.order_ranges):
            low, high = self._range_bounds(rng)
            session.execute(
                "SELECT c FROM sbtest WHERE id BETWEEN ? AND ? ORDER BY c", (low, high)
            )
        for _ in range(cfg.distinct_ranges):
            low, high = self._range_bounds(rng)
            session.execute(
                "SELECT DISTINCT c FROM sbtest WHERE id BETWEEN ? AND ? ORDER BY c", (low, high)
            )

    def _read_only(self, session: Session, rng: random.Random, transactional: bool) -> None:
        if transactional:
            session.begin()
        try:
            self._reads(session, rng)
        finally:
            if transactional:
                session.commit()

    # -- writes --------------------------------------------------------------

    def _writes(self, session: Session, rng: random.Random) -> None:
        cfg = self.config
        for _ in range(cfg.index_updates):
            session.execute("UPDATE sbtest SET k = k + 1 WHERE id = ?", (self._rand_id(rng),))
        for _ in range(cfg.non_index_updates):
            c = _random_text(rng, cfg.c_length)
            session.execute("UPDATE sbtest SET c = ? WHERE id = ?", (c, self._rand_id(rng)))
        for _ in range(cfg.delete_inserts):
            row_id = self._rand_id(rng)
            session.execute("DELETE FROM sbtest WHERE id = ?", (row_id,))
            k = rng.randint(1, cfg.table_size)
            c = _random_text(rng, cfg.c_length)
            pad = _random_text(rng, cfg.pad_length)
            session.execute(
                "INSERT INTO sbtest (id, k, c, pad) VALUES (?, ?, ?, ?)", (row_id, k, c, pad)
            )

    def _write_only(self, session: Session, rng: random.Random) -> None:
        session.begin()
        try:
            self._writes(session, rng)
        except Exception:
            session.rollback()
            raise
        else:
            session.commit()

    def _read_write(self, session: Session, rng: random.Random) -> None:
        session.begin()
        try:
            self._reads(session, rng)
            self._writes(session, rng)
        except Exception:
            session.rollback()
            raise
        else:
            session.commit()
