"""Baseline systems for the evaluation (Section VIII)."""

from .base import Session, SystemUnderTest
from .systems import (
    BENCH_LATENCY,
    DEFAULT_LATENCY,
    AuroraLikeSystem,
    MiddlewareSystem,
    NewSQLSystem,
    ShardingJDBCSystem,
    ShardingProxySystem,
    SingleNodeSystem,
)
from .topology import make_grid_rule, make_grid_sharding, make_sources

__all__ = [
    "BENCH_LATENCY",
    "DEFAULT_LATENCY",
    "SystemUnderTest",
    "Session",
    "SingleNodeSystem",
    "ShardingJDBCSystem",
    "ShardingProxySystem",
    "MiddlewareSystem",
    "NewSQLSystem",
    "AuroraLikeSystem",
    "make_sources",
    "make_grid_rule",
    "make_grid_sharding",
]
