"""The systems under test used throughout Section VIII.

Real systems we cannot run (MySQL, Vitess, Citus, TiDB, CockroachDB,
Aurora) are *analogues*: configurations of the same substrate exhibiting
the architectural property the paper attributes to each system (DESIGN.md,
substitution #7). The ShardingSphere configurations (SSJ/SSP) run the
actual pipeline of this library.

+----------------------+---------------------------------------------------------------+
| class                | architectural model                                           |
+----------------------+---------------------------------------------------------------+
| SingleNodeSystem     | MS / PG: one data source holding all rows in one table       |
| ShardingJDBCSystem   | SSJ: in-process pipeline, direct connections to sources      |
| ShardingProxySystem  | SSP: same pipeline behind a real TCP proxy                   |
| MiddlewareSystem     | Vitess/Citus-like: proxy-style middleware, no binding-table  |
|                      | optimization, serial per-source execution, forwarding delay  |
| NewSQLSystem         | TiDB/CRDB-like: sharded storage with consensus write         |
|                      | amplification, KV round trips, always-2PC transactions       |
| AuroraLikeSystem     | Aurora: single compute node, storage-offloaded fast commits, |
|                      | request hop to the cloud endpoint                            |
+----------------------+---------------------------------------------------------------+
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Sequence

from ..adaptors import ShardingDataSource, ShardingProxyServer, ShardingRuntime
from ..protocol import ProxyClient
from ..storage import DataSource, LatencyModel, ReplicaGroup
from ..transaction import TransactionType
from .base import SystemUnderTest
from .topology import make_grid_sharding, make_sources

DEFAULT_LATENCY = LatencyModel()

#: latency profile used by the paper-reproduction benchmarks: reads served
#: from buffer pool (cheap), DML paying a WAL/dirty-page write (expensive,
#: serialized per table) — the asymmetry behind Table IV's "requests on
#: smaller tables are much faster".
BENCH_LATENCY = LatencyModel(write_io=2e-3, commit_io=2e-3, buffer_pool_rows=30_000)


# ---------------------------------------------------------------------------
# Session wrappers
# ---------------------------------------------------------------------------


class _RawSession:
    """Session over one storage connection (single-node systems)."""

    def __init__(self, source: DataSource, overhead: float = 0.0):
        self.source = source
        self.connection = source.pool.acquire()
        self.overhead = overhead

    def execute(self, sql: str, params: Sequence[Any] = ()):
        if self.overhead:
            time.sleep(self.overhead)
        cursor = self.connection.execute(sql, params)
        if cursor.description is not None:
            return cursor.fetchall()
        return cursor.rowcount

    def execute_pipeline(self, statements: Sequence[tuple[str, Sequence[Any]]]):
        """Batch of statements in one storage round trip (write-I/O
        coalesced per written table); per-statement rows/rowcount out."""
        if self.overhead:
            time.sleep(self.overhead)
        results = self.connection.execute_pipeline(statements)
        return [
            list(r.rows) if r.columns else r.rowcount
            for r in results
        ]

    def begin(self) -> None:
        self.connection.begin()

    def commit(self) -> None:
        self.connection.commit()

    def rollback(self) -> None:
        self.connection.rollback()

    def close(self) -> None:
        self.source.pool.release(self.connection)


class _JdbcSession:
    """Session over a ShardingConnection (engine-based systems)."""

    def __init__(self, data_source: ShardingDataSource, overhead: float = 0.0):
        self.connection = data_source.get_connection()
        self.overhead = overhead

    def execute(self, sql: str, params: Sequence[Any] = ()):
        if self.overhead:
            time.sleep(self.overhead)
        result = self.connection.execute(sql, params)
        if result.description is not None:
            return result.fetchall()
        return result.rowcount

    def execute_pipeline(self, statements: Sequence[tuple[str, Sequence[Any]]]):
        """Batch of statements through the engine's fused pipeline;
        per-statement rows/rowcount out (see SQLEngine.execute_pipeline)."""
        if self.overhead:
            time.sleep(self.overhead)
        results = self.connection.execute_pipeline(statements)
        return [
            r.fetchall() if r.description is not None else r.rowcount
            for r in results
        ]

    def begin(self) -> None:
        self.connection.begin()

    def commit(self) -> None:
        self.connection.commit()

    def rollback(self) -> None:
        self.connection.rollback()

    def close(self) -> None:
        self.connection.close()


class _ProxySession:
    """Session over the wire protocol (proxy systems)."""

    def __init__(self, host: str, port: int):
        self.client = ProxyClient(host, port)

    def execute(self, sql: str, params: Sequence[Any] = ()):
        result = self.client.execute(sql, params)
        if result.description is not None:
            return result.fetchall()
        return result.rowcount

    def begin(self) -> None:
        self.client.begin()

    def commit(self) -> None:
        self.client.commit()

    def rollback(self) -> None:
        self.client.rollback()

    def close(self) -> None:
        self.client.close()


# ---------------------------------------------------------------------------
# Systems
# ---------------------------------------------------------------------------


class SingleNodeSystem(SystemUnderTest):
    """MS / PG analogue: everything in one data source, no sharding."""

    def __init__(self, name: str = "SingleNode", latency: LatencyModel = DEFAULT_LATENCY,
                 pool_size: int = 256, io_channels: int = 4):
        self.name = name
        self.source = DataSource(name.lower(), latency=latency, pool_size=pool_size,
                                 io_channels=io_channels)

    def session(self) -> _RawSession:
        return _RawSession(self.source)

    def close(self) -> None:
        self.source.pool.close()


class ShardingJDBCSystem(SystemUnderTest):
    """SSJ: the library's in-process adaptor (the paper's fastest mode)."""

    def __init__(
        self,
        tables: Sequence[tuple[str, str]],
        num_sources: int = 4,
        tables_per_source: int = 10,
        binding_groups: Sequence[Sequence[str]] = (),
        broadcast_tables: Sequence[str] = (),
        layout: str = "hash",
        key_space: int = 0,
        max_connections_per_query: int = 10,
        transaction_type: TransactionType = TransactionType.LOCAL,
        latency: LatencyModel = DEFAULT_LATENCY,
        name: str = "SSJ",
        pool_size: int = 128,
        io_channels: int = 4,
        replicas: int = 0,
        replication_lag: float = 0.0,
        replication_jitter: float = 0.0,
        result_cache: bool = False,
    ):
        self.name = name
        source_names = [f"ds{i}" for i in range(num_sources)]
        sources = make_sources(source_names, latency=latency, pool_size=pool_size,
                               io_channels=io_channels)
        self.replica_groups: list[ReplicaGroup] = []
        if replicas:
            for index, primary_name in enumerate(source_names):
                replica_sources = make_sources(
                    [f"{primary_name}_r{j}" for j in range(replicas)],
                    latency=latency, pool_size=pool_size, io_channels=io_channels,
                )
                group = ReplicaGroup(
                    sources[primary_name], list(replica_sources.values()),
                    lag=replication_lag, jitter=replication_jitter, seed=index,
                )
                sources.update(replica_sources)
                self.replica_groups.append(group)
        rule = make_grid_sharding(
            tables, source_names, tables_per_source, binding_groups, broadcast_tables,
            layout=layout, key_space=key_space,
        )
        self.runtime = ShardingRuntime(
            sources, rule,
            max_connections_per_query=max_connections_per_query,
            transaction_type=transaction_type,
        )
        for group in self.replica_groups:
            self.runtime.apply_rwsplit_rule(group.name, group.name, group.replica_names)
        if result_cache:
            self.runtime.engine.result_cache.enabled = True
        self.data_source = ShardingDataSource(self.runtime)

    def sync_replicas(self) -> None:
        """Force all replicas fully caught up (post-prepare barrier)."""
        for group in self.replica_groups:
            group.sync()

    def session(self) -> _JdbcSession:
        return _JdbcSession(self.data_source)

    def close(self) -> None:
        self.data_source.close()


class ShardingProxySystem(ShardingJDBCSystem):
    """SSP: the same runtime behind a real TCP proxy server."""

    def __init__(self, *args: Any, name: str = "SSP", **kwargs: Any):
        super().__init__(*args, name=name, **kwargs)
        self.server = ShardingProxyServer(self.runtime).start()

    def session(self) -> _ProxySession:
        assert self.server.port is not None
        return _ProxySession("127.0.0.1", self.server.port)

    def close(self) -> None:
        self.server.stop()
        super().close()


class MiddlewareSystem(SystemUnderTest):
    """Vitess/Citus analogue: a generic proxy-style sharding middleware.

    Differences from SSP that match the paper's characterization:
    no binding-table optimization (joins go cartesian), serial execution
    per source (MaxCon=1), and a fixed forwarding delay standing in for
    its (leaner, compiled) proxy hop instead of our JSON socket.
    """

    def __init__(
        self,
        tables: Sequence[tuple[str, str]],
        num_sources: int = 4,
        tables_per_source: int = 10,
        forwarding_delay: float = 1.2e-3,
        broadcast_tables: Sequence[str] = (),
        layout: str = "hash",
        key_space: int = 0,
        latency: LatencyModel = DEFAULT_LATENCY,
        name: str = "Middleware",
        pool_size: int = 128,
    ):
        self.name = name
        source_names = [f"ds{i}" for i in range(num_sources)]
        sources = make_sources(source_names, latency=latency, pool_size=pool_size)
        rule = make_grid_sharding(
            tables, source_names, tables_per_source, binding_groups=(),
            broadcast_tables=broadcast_tables, layout=layout, key_space=key_space,
        )
        self.runtime = ShardingRuntime(
            sources, rule, max_connections_per_query=1,
            transaction_type=TransactionType.LOCAL,
        )
        self.data_source = ShardingDataSource(self.runtime)
        self.forwarding_delay = forwarding_delay

    def session(self) -> _JdbcSession:
        return _JdbcSession(self.data_source, overhead=self.forwarding_delay)

    def close(self) -> None:
        self.data_source.close()


class NewSQLSystem(SystemUnderTest):
    """TiDB/CockroachDB analogue: consensus-replicated distributed SQL.

    Writes pay Raft-style majority replication (amplified commit I/O);
    every statement pays a KV round trip between the SQL layer and the
    storage layer; transactions are always two-phase (Percolator-style),
    which our XA manager models.
    """

    def __init__(
        self,
        tables: Sequence[tuple[str, str]],
        num_sources: int = 4,
        tables_per_source: int = 8,
        kv_rtt: float = 900e-6,
        replication_factor: int = 3,
        broadcast_tables: Sequence[str] = (),
        layout: str = "hash",
        key_space: int = 0,
        latency: LatencyModel = DEFAULT_LATENCY,
        name: str = "NewSQL",
        pool_size: int = 128,
    ):
        self.name = name
        source_names = [f"kv{i}" for i in range(num_sources)]
        # Majority replication: commits wait for ceil(RF/2) follower
        # acknowledgements; follower log writes are pipelined, so the
        # effective write amplification is sub-linear in RF.
        followers = replication_factor // 2
        consensus_latency = replace(
            latency,
            commit_io=latency.commit_io * (1 + followers),
            write_io=latency.write_io * (1 + 0.5 * followers),
            base=latency.base * 1.5,
        )
        sources = make_sources(source_names, latency=consensus_latency, pool_size=pool_size)
        rule = make_grid_sharding(
            tables, source_names, tables_per_source, binding_groups=(),
            broadcast_tables=broadcast_tables, layout=layout, key_space=key_space,
        )
        self.runtime = ShardingRuntime(
            sources, rule, max_connections_per_query=4,
            transaction_type=TransactionType.XA,
        )
        self.data_source = ShardingDataSource(self.runtime)
        self.kv_rtt = kv_rtt

    def session(self) -> _JdbcSession:
        return _JdbcSession(self.data_source, overhead=self.kv_rtt)

    def close(self) -> None:
        self.data_source.close()


class AuroraLikeSystem(SystemUnderTest):
    """Aurora analogue: one compute node over an offloaded storage service.

    Only redo logs cross the network on commit (cheap commits), storage
    bandwidth is effectively unlimited (low row cost), but every request
    pays the hop to the cloud endpoint.
    """

    def __init__(
        self,
        request_hop: float = 100e-6,
        latency: LatencyModel = DEFAULT_LATENCY,
        name: str = "AuroraLike",
        pool_size: int = 256,
    ):
        self.name = name
        storage_latency = replace(
            latency,
            commit_io=latency.commit_io * 0.4,
            write_io=latency.write_io * 0.4,
            row_cost=latency.row_cost * 0.5,
        )
        # "the storage power of Aurora can be seen as unlimited": a wide
        # storage service, not a single disk.
        self.source = DataSource(
            name.lower(), latency=storage_latency, pool_size=pool_size, io_channels=32
        )
        self.request_hop = request_hop

    def session(self) -> _RawSession:
        return _RawSession(self.source, overhead=self.request_hop)

    def close(self) -> None:
        self.source.pool.close()
