"""Common system-under-test (SUT) interface for the evaluation.

Every system in Section VIII — MS/PG, SSJ, SSP, Vitess/Citus-like
middlewares, TiDB/CRDB-like NewSQL, Aurora-like — exposes the same two
calls to the benchmark drivers:

- ``session()`` -> a :class:`Session` with ``execute`` and transaction
  verbs (one session per benchmark thread);
- ``close()`` to tear the system down.

Sessions are deliberately minimal; the benchmark drivers never see how a
system shards, proxies or replicates.
"""

from __future__ import annotations

import abc
from typing import Any, Protocol, Sequence


class Session(Protocol):
    """One client session against a system under test."""

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any: ...

    def begin(self) -> None: ...

    def commit(self) -> None: ...

    def rollback(self) -> None: ...

    def close(self) -> None: ...


class SystemUnderTest(abc.ABC):
    """A benchmarkable database system."""

    name: str = "system"

    @abc.abstractmethod
    def session(self) -> Session:
        """Open one client session (per benchmark thread)."""

    def close(self) -> None:
        """Tear down the system."""

    def __enter__(self) -> "SystemUnderTest":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
