"""Topology builders shared by the systems under test.

The paper's default layout (Table II / Settings): data sharded across
``num_sources`` data sources and, within each source, into
``tables_per_source`` tables. The grid rule places key ``k`` at data
source ``k % S`` and table ``(k // S) % T`` so every (source, table) node
receives a uniform slice.
"""

from __future__ import annotations

from typing import Sequence

from ..sharding import (
    ClassBasedShardingAlgorithm,
    DataNode,
    ModShardingAlgorithm,
    ShardingAlgorithm,
    ShardingRule,
    StandardShardingStrategy,
    TableRule,
)
from ..storage import DataSource, LatencyModel


def make_sources(
    names: Sequence[str],
    latency: LatencyModel | None = None,
    network_hop: float = 0.0,
    pool_size: int = 64,
    io_channels: int = 4,
) -> dict[str, DataSource]:
    return {
        name: DataSource(name, latency=latency, network_hop=network_hop,
                         pool_size=pool_size, io_channels=io_channels)
        for name in names
    }


def _table_level_algorithm(num_sources: int, tables_per_source: int) -> ShardingAlgorithm:
    """table index = (k // S) % T, matched to the ``_i`` suffix."""

    def pick(targets, value):
        index = (int(value) // num_sources) % tables_per_source
        return ShardingAlgorithm.pick_by_index(targets, index)

    return ClassBasedShardingAlgorithm({"function": pick})


def make_grid_rule(
    logic_table: str,
    source_names: Sequence[str],
    tables_per_source: int,
    column: str,
) -> TableRule:
    """Two-level rule over the S x T grid described in the module doc."""
    num_sources = len(source_names)
    nodes = [
        DataNode(ds, f"{logic_table}_{j}")
        for ds in source_names
        for j in range(tables_per_source)
    ]
    database_strategy = StandardShardingStrategy(
        column, ModShardingAlgorithm({"sharding-count": num_sources})
    )
    table_strategy = StandardShardingStrategy(
        column, _table_level_algorithm(num_sources, tables_per_source)
    )
    if num_sources == 1:
        database_strategy = None  # type: ignore[assignment]
    return TableRule(
        logic_table,
        nodes,
        database_strategy=database_strategy,
        table_strategy=table_strategy,
    )


def make_grid_sharding(
    tables: Sequence[tuple],
    source_names: Sequence[str],
    tables_per_source: int,
    binding_groups: Sequence[Sequence[str]] = (),
    broadcast_tables: Sequence[str] = (),
    layout: str = "hash",
    key_space: int = 0,
) -> ShardingRule:
    """A full rule set: each (logic_table, column[, tables_per_source])
    sharded over the grid. A per-table third element overrides the default
    ``tables_per_source`` (the paper's TPC-C layout shards order_line into
    10 tables per source while the other tables get one each).

    ``layout="hash"`` spreads keys mod/div-mod style; ``layout="range"``
    (requires ``key_space``) uses contiguous blocks so small BETWEEN
    ranges stay shard-local.
    """
    rules = []
    for entry in tables:
        if len(entry) == 3:
            table, column, tps = entry
        else:
            table, column = entry
            tps = tables_per_source
        if layout == "range":
            if key_space < 1:
                raise ValueError("range layout requires a positive key_space")
            rules.append(make_range_grid_rule(table, source_names, tps, column, key_space))
        else:
            rules.append(make_grid_rule(table, source_names, tps, column))
    return ShardingRule(
        rules,
        binding_groups=binding_groups,
        broadcast_tables=broadcast_tables,
        default_data_source=source_names[0],
    )


class RangeLevelAlgorithm(ShardingAlgorithm):
    """Contiguous-block range sharding for one level of the grid.

    ``index = clamp(offset(value) // block, 0, count-1)`` where ``offset``
    lets the table level work within its data source's block. Ranges prune
    to exactly the overlapped blocks, which is what keeps sysbench's small
    BETWEEN ranges shard-local (see EXPERIMENTS.md on layout choice).
    """

    type_name = "RANGE_GRID_LEVEL"

    def __init__(self, block: int, count: int, modulo: int | None = None):
        super().__init__({})
        if block < 1 or count < 1:
            raise ValueError("block and count must be positive")
        self.block = block
        self.count = count
        self.modulo = modulo  # offset within the parent block (table level)

    def _index(self, value) -> int:
        v = int(value)
        if self.modulo is not None:
            v = v % self.modulo
        return max(0, min(v // self.block, self.count - 1))

    def do_sharding(self, targets, value):
        return self.pick_by_index(targets, self._index(value))

    def do_range_sharding(self, targets, low, high):
        if low is None or high is None:
            return list(targets)
        low_i, high_i = int(low), int(high)
        if self.modulo is not None:
            # Crossing a parent-block boundary scrambles local offsets.
            if high_i - low_i + 1 >= self.modulo or low_i // self.modulo != high_i // self.modulo:
                return list(targets)
        indexes = range(self._index(low_i), self._index(high_i) + 1)
        seen: dict[str, None] = {}
        for index in indexes:
            seen.setdefault(self.pick_by_index(targets, index))
        return list(seen)


def make_range_grid_rule(
    logic_table: str,
    source_names: Sequence[str],
    tables_per_source: int,
    column: str,
    key_space: int,
) -> TableRule:
    """Range-partitioned S x T grid over keys in [0, key_space)."""
    num_sources = len(source_names)
    ds_block = -(-key_space // num_sources)  # ceil
    table_block = max(1, -(-ds_block // tables_per_source))
    nodes = [
        DataNode(ds, f"{logic_table}_{j}")
        for ds in source_names
        for j in range(tables_per_source)
    ]
    database_strategy = (
        StandardShardingStrategy(column, RangeLevelAlgorithm(ds_block, num_sources))
        if num_sources > 1
        else None
    )
    table_strategy = StandardShardingStrategy(
        column, RangeLevelAlgorithm(table_block, tables_per_source, modulo=ds_block)
    )
    return TableRule(
        logic_table,
        nodes,
        database_strategy=database_strategy,
        table_strategy=table_strategy,
    )
