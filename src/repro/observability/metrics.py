"""Metrics registry: counters, gauges and fixed-bucket histograms.

Prometheus-flavoured pull model: metric *families* are registered once
(name + kind + label names), label sets materialize children lazily, and
:meth:`MetricsRegistry.render_prometheus` emits the text exposition
format. Histograms use fixed buckets and estimate p50/p95/p99 by linear
interpolation inside the bucket containing the target rank — the standard
fixed-bucket quantile estimate, accurate to one bucket width.

The registry also accepts *collectors*: callables that produce sample
families at collection time. The execution engine's ad-hoc
``ExecutionMetrics`` counters are folded into the registry this way, so
``SHOW METRICS``, ``SHOW EXECUTION METRICS`` and the Prometheus export all
read one source of truth without adding locked counter updates to the
executor's hot path.

Naming scheme (see DESIGN.md "Observability"): ``<subsystem>_<what>_<unit>``
with ``_total`` for counters — e.g. ``engine_stage_seconds{stage="route"}``,
``storage_queries_total{source="ds0"}``, ``pool_checkout_wait_seconds``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from threading import get_ident
from typing import Any, Callable, Iterable, Mapping, Sequence

#: default latency buckets (seconds): 10µs .. 2.5s, roughly ×2.5 steps
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5,
)

#: default fan-out buckets (execution units per statement)
DEFAULT_FANOUT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

LabelValues = tuple[str, ...]

#: a collector yields (name, kind, help, [(labels_dict, value)]) families
SampleFamily = tuple[str, str, str, list[tuple[dict[str, str], float]]]
Collector = Callable[[], Iterable[SampleFamily]]


class _Metric:
    """Base family: shared registry lock + per-label-set children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: dict[LabelValues, Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_dict(self, key: LabelValues) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def remove(self, **labels: Any) -> None:
        """Drop one label set's child (e.g. an unregistered data source)."""
        key = self._key(labels)
        with self._lock:
            self._children.pop(key, None)


class Counter(_Metric):
    """Monotonic counter family.

    Two write paths: :meth:`inc` (validated, locked) for general use, and
    :meth:`inc_sharded` for per-statement hot paths — a lock-free exact
    increment into one slot per (label values, thread). Each slot has a
    single writer and CPython dict get/set are individually atomic under
    the GIL, so no update is ever lost; contended-mutex convoys (thread
    parks + GIL handoffs) never happen on the statement path. Readers
    merge the shards under the registry lock.
    """

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock):
        super().__init__(name, help, labelnames, lock)
        self._shards: dict[tuple[LabelValues, int], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def _inc_locked(self, amount: float, key: LabelValues) -> None:
        self._children[key] = self._children.get(key, 0.0) + amount

    def inc_sharded(self, key: LabelValues, amount: float = 1.0) -> None:
        """Lock-free increment; ``key`` is the label-values tuple."""
        shards = self._shards
        slot = (key, get_ident())
        shards[slot] = shards.get(slot, 0.0) + amount

    def _merged_locked(self) -> dict[LabelValues, float]:
        totals = dict(self._children)
        # list() snapshots atomically under the GIL while writers insert
        for (key, _tid), value in list(self._shards.items()):
            totals[key] = totals.get(key, 0.0) + value
        return totals

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._merged_locked().get(key, 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        with self._lock:
            items = sorted(self._merged_locked().items())
        return [(self._label_dict(key), value) for key, value in items]


class Gauge(_Metric):
    """Point-in-time value; supports callback children (pool occupancy)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        """Register a callable sampled at collection time."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = fn

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            raw = self._children.get(key, 0.0)
        return float(raw()) if callable(raw) else raw

    def samples(self) -> list[tuple[dict[str, str], float]]:
        with self._lock:
            items = sorted(self._children.items())
        out = []
        for key, raw in items:
            value = float(raw()) if callable(raw) else raw
            out.append((self._label_dict(key), value))
        return out


class _HistogramChild:
    __slots__ = ("counts", "count", "sum", "max")

    def __init__(self, num_buckets: int):
        self.counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram family with interpolated percentiles."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.Lock, buckets: Sequence[float] | None = None):
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds

    def _child(self, key: LabelValues) -> _HistogramChild:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(len(self.bounds))
        return child

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._observe_locked(value, key)

    def _observe_locked(self, value: float, key: LabelValues) -> None:
        child = self._child(key)
        child.counts[bisect_left(self.bounds, value)] += 1
        child.count += 1
        child.sum += value
        if value > child.max:
            child.max = value

    # -- reads -------------------------------------------------------------

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.sum if child is not None else 0.0

    def percentile(self, p: float, **labels: Any) -> float:
        """Estimated percentile (p in [0, 100]) via in-bucket interpolation."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None or child.count == 0:
                return 0.0
            counts = list(child.counts)
            total, observed_max = child.count, child.max
        rank = max(0.0, min(100.0, p)) / 100.0 * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else observed_max
                upper = max(upper, lower)
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return observed_max

    def stats(self, **labels: Any) -> dict[str, float]:
        """count/sum/avg plus the paper's three tail percentiles."""
        count = self.count(**labels)
        total = self.sum(**labels)
        return {
            "count": count,
            "sum": total,
            "avg": (total / count) if count else 0.0,
            "p50": self.percentile(50, **labels),
            "p95": self.percentile(95, **labels),
            "p99": self.percentile(99, **labels),
        }

    def samples(self) -> list[tuple[dict[str, str], float]]:
        """Summary view used by SHOW METRICS (value = observation count)."""
        with self._lock:
            items = sorted((k, c.count) for k, c in self._children.items())
        return [(self._label_dict(key), float(count)) for key, count in items]

    def label_sets(self) -> list[dict[str, str]]:
        with self._lock:
            keys = sorted(self._children)
        return [self._label_dict(key) for key in keys]

    def _prometheus_lines(self) -> list[str]:
        lines: list[str] = []
        with self._lock:
            items = sorted(self._children.items())
            snapshot = [
                (key, list(child.counts), child.count, child.sum) for key, child in items
            ]
        for key, counts, count, total in snapshot:
            cumulative = 0
            for i, bound in enumerate(self.bounds):
                cumulative += counts[i]
                labels = {**self._label_dict(key), "le": _format_value(bound)}
                lines.append(f"{self.name}_bucket{_render_labels(labels)} {cumulative}")
            labels = {**self._label_dict(key), "le": "+Inf"}
            lines.append(f"{self.name}_bucket{_render_labels(labels)} {count}")
            lines.append(f"{self.name}_sum{_render_labels(self._label_dict(key))} "
                         f"{_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(self._label_dict(key))} {count}")
        return lines


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format label escaping: ``\\``, ``"``, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def like_to_matcher(pattern: str) -> Callable[[str], bool]:
    """SQL LIKE (``%``/``_`` wildcards, case-insensitive) → predicate."""
    if not pattern:
        return lambda name: True
    import re

    regex = re.compile(
        "^" + "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern.lower()
        ) + "$"
    )
    return lambda name: regex.match(name.lower()) is not None


class MetricsRegistry:
    """Holds metric families plus pull-time collectors.

    All families share one registry lock. The statement hot path avoids
    it entirely: counters go through ``Counter.inc_sharded`` (lock-free
    per-thread slots) and histograms only lock on sampled statements
    (see ``Observability.on_statement``).
    """

    def __init__(self):
        self.lock = threading.Lock()
        self._families: dict[str, _Metric] = {}
        self._order: list[str] = []
        #: (dedup key, collector) pairs; keys compare by equality so an
        #: UNREGISTER RESOURCE can drop a source's collector again
        self._collectors: list[tuple[Any, Collector]] = []

    # -- family creation (get-or-create, kind-checked) --------------------

    def _family(self, cls, name: str, help: str, labelnames: Sequence[str],
                **kwargs: Any) -> Any:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, labelnames, self.lock, **kwargs)
        self._families[name] = metric
        self._order.append(name)
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> Histogram:
        return self._family(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._families.get(name)

    # -- collectors ---------------------------------------------------------

    def register_collector(self, collector: Collector, key: Any = None) -> None:
        """Add a pull-time sample source; ``key`` dedupes re-registration."""
        marker = key if key is not None else collector
        with self.lock:
            if any(existing == marker for existing, _ in self._collectors):
                return
            self._collectors.append((marker, collector))

    def unregister_collector(self, key: Any) -> None:
        """Remove the collector registered under ``key`` (no-op if absent)."""
        with self.lock:
            self._collectors = [
                (marker, collector)
                for marker, collector in self._collectors
                if marker != key
            ]

    # -- collection ---------------------------------------------------------

    def collect(self) -> list[SampleFamily]:
        """Every family (static + collector-produced) with its samples."""
        out: list[SampleFamily] = []
        for name in list(self._order):
            metric = self._families[name]
            out.append((metric.name, metric.kind, metric.help, metric.samples()))
        for _, collector in list(self._collectors):
            out.extend(collector())
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for name in list(self._order):
            metric = self._families[name]
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                lines.extend(metric._prometheus_lines())
            else:
                for labels, value in metric.samples():
                    lines.append(
                        f"{metric.name}{_render_labels(labels)} {_format_value(value)}"
                    )
        for _, collector in list(self._collectors):
            for name, kind, help, samples in collector():
                if help:
                    lines.append(f"# HELP {name} {help}")
                lines.append(f"# TYPE {name} {kind}")
                for labels, value in samples:
                    lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
        return "\n".join(lines) + "\n"
