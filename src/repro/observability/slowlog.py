"""Slow-query log: a bounded ring buffer of completed traces.

Every finished trace is offered to the log; traces whose wall time exceeds
the configurable threshold are always recorded, and one in every
``sample_every`` fast traces is recorded too (sampled normal traffic, so
the log shows what "normal" looks like next to the outliers). The buffer
is a fixed-capacity ring: when full, recording a new entry evicts the
oldest one.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .trace import Trace


@dataclass
class SlowQueryEntry:
    """One recorded statement with its full trace attached."""

    trace_id: int
    sql: str
    wall: float
    simulated: float
    kind: str  # "slow" | "sampled"
    route_type: str
    spans: int
    error: str | None
    trace: Any  # the full Trace, for drill-down
    digest: str = ""  # statement digest id ("" when analytics disabled)


class SlowQueryLog:
    """Threshold-filtered, sampled ring buffer of completed traces."""

    def __init__(self, threshold: float = 0.1, capacity: int = 128,
                 sample_every: int = 0):
        if capacity < 1:
            raise ValueError("slow query log capacity must be >= 1")
        self.threshold = threshold
        self.capacity = capacity
        #: record every Nth non-slow trace as well (0 disables sampling)
        self.sample_every = sample_every
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seen_fast = 0
        self.recorded = 0

    def offer(self, trace: "Trace", digest: str = "") -> bool:
        """Consider one finished trace; True when it was recorded."""
        slow = trace.wall >= self.threshold
        if not slow:
            if not self.sample_every:
                return False
            with self._lock:
                self._seen_fast += 1
                if self._seen_fast % self.sample_every != 0:
                    return False
        entry = SlowQueryEntry(
            trace_id=trace.trace_id,
            sql=trace.name,
            wall=trace.wall,
            simulated=trace.simulated,
            kind="slow" if slow else "sampled",
            route_type=str(trace.root.attributes.get("route_type", "")),
            spans=len(trace.spans),
            error=trace.error,
            trace=trace,
            digest=digest,
        )
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1
        return True

    def entries(self) -> list[SlowQueryEntry]:
        """Recorded entries, newest first."""
        with self._lock:
            return list(self._entries)[::-1]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._seen_fast = 0
