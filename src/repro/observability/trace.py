"""Tracing: one root span per logical statement, child spans per stage.

The span model mirrors what ShardingSphere's observability Agent hangs off
the SQL engine: a root ``statement`` span with children for ``parse``,
``route``, ``rewrite``, one ``storage`` span per execution unit, and
``merge``. Storage spans carry the data source, connection mode, rewritten
SQL and retry history, and they separate *wall* time (what the client
waited) from *simulated* time (the latency model's priced sleeps) and
*lock wait* (time blocked on pool/table/database locks) — so a benchmark
can attribute cost to middleware CPU vs. storage I/O per query.

Determinism: trace and span ids come from monotonic per-tracer counters
(no global randomness), and per-unit spans are allocated in routing order
on the submitting thread, so the same statement against the same topology
always yields the same ids — chaos runs and tests can assert on them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterable


class Span:
    """One timed operation inside a trace.

    Wall time is measured with ``time.perf_counter``; simulated time and
    lock waits are *reported* by the storage layer via
    :meth:`record_simulated` / :meth:`record_lock_wait` (the connection
    carries the span while it executes, see ``Connection.trace_span``).
    A span is owned by one thread at a time, so its mutators need no lock.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "events",
        "simulated",
        "lock_wait",
        "error",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        name: str,
        parent_id: int | None = None,
        attributes: dict[str, Any] | None = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter()
        self.end: float | None = None
        self.attributes: dict[str, Any] = attributes if attributes is not None else {}
        self.events: list[tuple[str, dict[str, Any]]] = []
        self.simulated = 0.0
        self.lock_wait = 0.0
        self.error: str | None = None

    # -- lifecycle -------------------------------------------------------

    def finish(self, error: BaseException | None = None) -> "Span":
        if self.end is None:
            self.end = time.perf_counter()
        if error is not None and self.error is None:
            self.error = f"{type(error).__name__}: {error}"
        return self

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def wall(self) -> float:
        """Elapsed wall seconds (0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    # -- storage-side attribution ---------------------------------------

    def record_simulated(self, seconds: float) -> None:
        """Attribute latency-model sleep time to this span."""
        if seconds > 0:
            self.simulated += seconds

    def record_lock_wait(self, seconds: float) -> None:
        """Attribute time spent blocked on a storage lock to this span."""
        if seconds > 0:
            self.lock_wait += seconds

    def add_event(self, name: str, **fields: Any) -> None:
        """Append a point-in-time annotation (retry, reroute, redirect...)."""
        self.events.append((name, fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, wall={self.wall * 1000:.3f}ms)"


class Trace:
    """All spans of one logical statement, rooted at ``statement``."""

    def __init__(self, tracer: "Tracer", trace_id: int, name: str):
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.error: str | None = None
        self.root = self.start_span("statement", parent=None, sql=name)

    # -- span management -------------------------------------------------

    def start_span(self, name: str, parent: Span | None = None, **attributes: Any) -> Span:
        """Open a child span (of ``parent``, or of the root when omitted)."""
        parent_id = parent.span_id if parent is not None else (
            self.root.span_id if self.spans else None
        )
        span = Span(
            self.trace_id,
            self.tracer.next_span_id(),
            name,
            parent_id=parent_id,
            attributes=attributes or None,
        )
        with self._lock:
            self.spans.append(span)
        return span

    def finish(self, error: BaseException | None = None) -> "Trace":
        """Close the root (and any straggler spans) and record the trace."""
        self.root.finish(error=error)
        if error is not None:
            self.error = self.root.error
        with self._lock:
            for span in self.spans:
                if not span.finished:
                    span.end = self.root.end
                    if error is not None and span.error is None:
                        span.error = "unfinished"
        return self

    # -- aggregate views -------------------------------------------------

    @property
    def wall(self) -> float:
        return self.root.wall

    @property
    def simulated(self) -> float:
        """Total latency-model seconds attributed across all spans."""
        with self._lock:
            return sum(span.simulated for span in self.spans)

    @property
    def lock_wait(self) -> float:
        with self._lock:
            return sum(span.lock_wait for span in self.spans)

    def find_spans(self, name: str) -> list[Span]:
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.parent_id == span.span_id]

    # -- rendering ---------------------------------------------------------

    _DETAIL_KEYS = (
        "route_type", "data_source", "mode", "units", "rows", "retries",
        "merger_kind", "partial", "skipped_sources", "attempt", "sql",
    )

    def _detail(self, span: Span) -> str:
        parts = []
        for key in self._DETAIL_KEYS:
            if key in span.attributes:
                parts.append(f"{key}={span.attributes[key]}")
        for key in sorted(set(span.attributes) - set(self._DETAIL_KEYS)):
            parts.append(f"{key}={span.attributes[key]}")
        for name, fields in span.events:
            inner = ",".join(f"{k}={v}" for k, v in fields.items())
            parts.append(f"!{name}({inner})")
        if span.lock_wait > 0:
            parts.append(f"lock_wait={span.lock_wait * 1000:.3f}ms")
        if span.error:
            parts.append(f"error={span.error}")
        return " ".join(parts)

    def tree_rows(self) -> list[tuple[str, float, float, str]]:
        """(indented name, wall_ms, simulated_ms, detail) per span, pre-order."""
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.span_id)
        by_parent: dict[int | None, list[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        rows: list[tuple[str, float, float, str]] = []

        def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                label = span.name
                child_prefix = ""
            else:
                connector = "└─ " if is_last else "├─ "
                label = prefix + connector + span.name
                child_prefix = prefix + ("   " if is_last else "│  ")
            rows.append(
                (label, round(span.wall * 1000, 3), round(span.simulated * 1000, 3),
                 self._detail(span))
            )
            children = by_parent.get(span.span_id, [])
            for i, child in enumerate(children):
                visit(child, child_prefix, i == len(children) - 1, False)

        for i, top in enumerate(by_parent.get(None, [])):
            visit(top, "", i == len(by_parent.get(None, [])) - 1, True)
        return rows

    def render(self) -> str:
        """Human-readable span tree (used by DistSQL ``TRACE <sql>``)."""
        header = (
            f"trace #{self.trace_id} · {self.name!r} · "
            f"wall {self.wall * 1000:.3f}ms · simulated {self.simulated * 1000:.3f}ms"
        )
        lines = [header]
        for label, wall_ms, simulated_ms, detail in self.tree_rows():
            lines.append(
                f"{label:<40} wall={wall_ms:.3f}ms sim={simulated_ms:.3f}ms"
                + (f"  {detail}" if detail else "")
            )
        return "\n".join(lines)


class Tracer:
    """Creates and retains traces; ids are monotonic and seed-free.

    ``enabled`` is the zero-cost switch the engine checks before creating
    any span. Finished traces land in a bounded ring buffer (``finished``)
    for ``SHOW TRACES``; listeners (the slow-query log) see every finished
    trace regardless of the buffer.
    """

    def __init__(self, enabled: bool = False, keep: int = 128):
        self.enabled = enabled
        self.keep = keep
        self.finished: deque[Trace] = deque(maxlen=keep)
        self._lock = threading.Lock()
        self._trace_seq = 0
        self._span_seq = 0
        self._listeners: list[Callable[[Trace], None]] = []

    # -- id allocation ----------------------------------------------------

    def next_span_id(self) -> int:
        with self._lock:
            self._span_seq += 1
            return self._span_seq

    @property
    def span_count(self) -> int:
        """How many spans this tracer ever allocated (overhead guard)."""
        with self._lock:
            return self._span_seq

    # -- trace lifecycle ---------------------------------------------------

    def start_trace(self, name: str) -> Trace:
        with self._lock:
            self._trace_seq += 1
            trace_id = self._trace_seq
        return Trace(self, trace_id, name)

    def record(self, trace: Trace) -> None:
        """Register a finished trace (ring buffer + listeners)."""
        self.finished.append(trace)
        for listener in self._listeners:
            listener(trace)

    def add_listener(self, listener: Callable[[Trace], None]) -> None:
        self._listeners.append(listener)

    def recent(self) -> Iterable[Trace]:
        """Finished traces, newest first."""
        return list(self.finished)[::-1]
