"""Observability: tracing, metrics and slow-query analytics (plugin-style).

The paper's pluggable architecture is what lets real ShardingSphere ship
its observability Agent as an add-on; this package is that agent for the
reproduction. One :class:`Observability` object bundles the three parts:

- :class:`~repro.observability.trace.Tracer` — one root span per logical
  statement, child spans per pipeline stage and per execution unit,
  simulated vs. wall time separated (``TRACE <sql>``, ``SHOW TRACES``);
- :class:`~repro.observability.metrics.MetricsRegistry` — counters,
  gauges and fixed-bucket histograms with p50/p95/p99, plus a Prometheus
  text exporter (``SHOW METRICS``, ``registry.render_prometheus()``);
- :class:`~repro.observability.slowlog.SlowQueryLog` — ring buffer of
  completed traces over a threshold plus sampled normal traffic
  (``SHOW SLOW QUERIES``).

Everything is zero-cost when disabled: an engine without an Observability
attached takes none of these code paths, and with one attached the tracer
adds no spans until ``tracer.enabled`` (or a one-shot ``TRACE``) flips on.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Mapping

from .metrics import (
    DEFAULT_FANOUT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    like_to_matcher,
)
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import Span, Trace, Tracer
from .workload import WorkloadIntelligence

if TYPE_CHECKING:
    from ..storage.pool import ConnectionPool

#: pipeline stages in execution order (used by SHOW METRICS and --profile)
STAGES = ("parse", "route", "rewrite", "plan_cache_hit", "execute", "merge", "federation")


class Observability:
    """Tracer + metrics registry + slow-query log for one deployment."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        slow_log: SlowQueryLog | None = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        #: workload intelligence (statement digests, shard heat, hot keys,
        #: SLOs) — records on sampled statements only, exported by pull
        self.workload = WorkloadIntelligence()
        reg = self.registry
        reg.register_collector(self.workload.families, key=self.workload)
        # Pre-created hot-path instruments (one lock round-trip per statement
        # via the *_locked variants in on_statement).
        self._stage_hist = reg.histogram(
            "engine_stage_seconds", "wall seconds per pipeline stage", ("stage",)
        )
        self._statements = reg.counter(
            "engine_statements_total", "logical statements by route type", ("route_type",)
        )
        self._statement_errors = reg.counter(
            "engine_statement_errors_total", "logical statements that raised"
        )
        self._fanout = reg.histogram(
            "engine_route_fanout_units", "execution units per routed statement",
            buckets=DEFAULT_FANOUT_BUCKETS,
        )
        self._source_queries = reg.counter(
            "storage_queries_total", "per-unit attempts per data source", ("source",)
        )
        self._source_errors = reg.counter(
            "storage_errors_total", "failed per-unit attempts per data source", ("source",)
        )
        self._pool_wait = reg.histogram(
            "pool_checkout_wait_seconds", "connection pool checkout wait", ("source",)
        )
        reg.gauge("pool_in_use", "connections checked out", ("source",))
        reg.gauge("pool_idle", "idle pooled connections", ("source",))
        # Hot-path shortcut: pre-materialized histogram children so
        # on_statement updates them inline (one dict get per stage, no
        # label-validation) — this runs on every statement.
        self._stage_bounds = self._stage_hist.bounds
        self._stage_children = {
            stage: self._stage_hist._child((stage,)) for stage in STAGES
        }
        self._fanout_bounds = self._fanout.bounds
        self._fanout_child = self._fanout._child(())
        #: histogram sampling (DESIGN.md "Observability > Sampling"):
        #: counters stay exact; after the first ``stage_sample_warmup``
        #: statements, only 1 in ``stage_sample_every`` pays the stage
        #: timing and histogram updates, weighted by the sample period so
        #: histogram counts and sums still estimate the full population.
        #: Set stage_sample_every = 1 for exact histograms.
        self.stage_sample_warmup = 64
        self.stage_sample_every = 8
        self._seq = 0

    # -- statement-level recording (engine pipeline) ----------------------

    def stage_weight(self) -> int:
        """Sampling decision for one statement: 0 = skip stage timing.

        Returns the weight the statement's histogram observations should
        carry (the sample period, so sampled observations stand in for the
        skipped ones). The unlocked increment is a benign race under
        threads: a lost update only shifts the sampling phase.
        """
        seq = self._seq = self._seq + 1
        if seq <= self.stage_sample_warmup:
            return 1
        if seq % self.stage_sample_every == 0:
            return self.stage_sample_every
        return 0

    def on_statement(self, stages: Mapping[str, float], route_type: str,
                     fanout: int, error: bool, weight: int = 1) -> None:
        """Record one logical statement; lock only when histograms sample.

        Counters take the sharded lock-free path (exact, per-thread
        slots), so the 1-in-N unsampled majority of statements never
        touches the registry mutex — contended locks convoy badly with
        the GIL and were measurable at benchmark concurrency.
        """
        self._statements.inc_sharded((route_type or "unrouted",))
        if error:
            self._statement_errors.inc_sharded(())
        if weight and stages:
            with self.registry.lock:
                bounds = self._stage_bounds
                children = self._stage_children
                for stage, seconds in stages.items():
                    child = children.get(stage)
                    if child is None:
                        child = children[stage] = self._stage_hist._child((stage,))
                    child.counts[bisect_left(bounds, seconds)] += weight
                    child.count += weight
                    child.sum += seconds * weight
                    if seconds > child.max:
                        child.max = seconds
                if fanout:
                    fanout_child = self._fanout_child
                    fanout_child.counts[bisect_left(self._fanout_bounds, fanout)] += weight
                    fanout_child.count += weight
                    fanout_child.sum += fanout * weight
                    if fanout > fanout_child.max:
                        fanout_child.max = fanout

    def on_source_attempt(self, source: str, ok: bool) -> None:
        """Per-unit attempt outcome (QPS and error rate per data source)."""
        self._source_queries.inc_sharded((source,))
        if not ok:
            self._source_errors.inc_sharded((source,))

    # -- trace lifecycle ----------------------------------------------------

    def record_trace(self, trace: Trace) -> None:
        self.tracer.record(trace)
        digest = ""
        workload = self.workload
        if workload.enabled:
            digest = workload.note_trace(trace)
        self.slow_log.offer(trace, digest=digest)

    # -- wiring --------------------------------------------------------------

    def watch_pool(self, source: str, pool: "ConnectionPool") -> None:
        """Attach pool checkout-wait + occupancy instruments to one pool."""
        # Pre-bind the child + lock so every checkout pays one inline
        # histogram update instead of kwargs label validation, and apply
        # the same weighted 1-in-N sampling as the stage histograms.
        bounds = self._pool_wait.bounds
        lock = self.registry.lock
        with lock:
            child = self._pool_wait._child((source,))
        warmup = self.stage_sample_warmup
        state = [0]  # per-pool observation counter (GIL race = phase shift)

        def observe_wait(waited: float) -> None:
            state[0] = seen = state[0] + 1
            if seen <= warmup:
                weight = 1
            else:
                every = self.stage_sample_every
                if seen % every:
                    return
                weight = every
            with lock:
                child.counts[bisect_left(bounds, waited)] += weight
                child.count += weight
                child.sum += waited * weight
                if waited > child.max:
                    child.max = waited

        pool.wait_observer = observe_wait
        self.registry.gauge("pool_in_use", labelnames=("source",)).set_function(
            lambda: pool.in_use, source=source
        )
        self.registry.gauge("pool_idle", labelnames=("source",)).set_function(
            lambda: pool.idle, source=source
        )

    def unwatch_pool(self, source: str, pool: "ConnectionPool | None" = None) -> None:
        """Detach one pool's instruments (UNREGISTER RESOURCE).

        Drops the occupancy gauge children and the checkout-wait histogram
        child so exports stop reporting a ghost source, and clears the
        pool's wait observer so a lingering reference to the closed pool
        can't keep feeding the histogram.
        """
        self.registry.gauge("pool_in_use", labelnames=("source",)).remove(source=source)
        self.registry.gauge("pool_idle", labelnames=("source",)).remove(source=source)
        self._pool_wait.remove(source=source)
        if pool is not None:
            pool.wait_observer = None

    def register_execution_metrics(self, metrics: Any) -> None:
        """Fold the executor's ad-hoc counters into the registry (pull)."""
        self.registry.register_collector(metrics.families, key=metrics)

    def register_plan_cache(self, plan_cache: Any) -> None:
        """Expose plan-cache hit/miss/invalidation counters (pull)."""
        self.registry.register_collector(plan_cache.families, key=plan_cache)

    def register_storage_plan_cache(self, source: str, cache: Any) -> None:
        """Expose one data source's compiled storage-plan cache (pull)."""
        self.registry.register_collector(
            lambda: cache.families(source), key=(cache, source)
        )

    def unregister_storage_plan_cache(self, source: str, cache: Any) -> None:
        """Drop one data source's storage-plan-cache collector."""
        self.registry.unregister_collector((cache, source))

    # -- reporting ------------------------------------------------------------

    def stage_profile(self) -> dict[str, dict[str, float]]:
        """Per-stage latency stats (bench ``--profile``, SHOW METRICS)."""
        profile: dict[str, dict[str, float]] = {}
        for labels in self._stage_hist.label_sets():
            stage = labels["stage"]
            stats = self._stage_hist.stats(stage=stage)
            if stats["count"]:
                profile[stage] = stats
        # stable, pipeline-ordered output
        ordered = {s: profile[s] for s in STAGES if s in profile}
        ordered.update({s: v for s, v in profile.items() if s not in ordered})
        return ordered


__all__ = [
    "Observability",
    "WorkloadIntelligence",
    "Tracer",
    "Trace",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SlowQueryLog",
    "SlowQueryEntry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_FANOUT_BUCKETS",
    "like_to_matcher",
    "STAGES",
]
