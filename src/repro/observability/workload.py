"""Workload intelligence: statement digests, shard heat, hot keys, SLOs.

The base observability suite (tracing, metrics, slow log) answers "how is
the system doing"; this module answers "what is the workload doing to it":

- **Statement digests** — SQL normalized to a fingerprint (literals
  become ``?``), with a bounded per-digest stats table in the style of
  ``pg_stat_statements``: calls, errors, rows, a latency histogram, route
  fanout, plan/storage-plan cache hit rates, and the slowest trace kept
  as an exemplar for drill-down.
- **Shard heat maps** — reads/writes/rows plus simulated and wall time
  accounted per data node (data source + actual table) and rolled up per
  logical table, with a max/mean imbalance ratio that flags skew.
- **Hot keys** — a space-saving (Misra–Gries) top-K sketch per
  (table, sharding column) over routed shard-key values. The sketch
  over-counts by at most ``error`` per entry, so ``count - error`` is a
  lower bound and any key with a true share above ``1/capacity`` of the
  stream is guaranteed to be in the table.
- **SLO tracking** — per-route-type latency objectives with error-budget
  burn accounting and a bounded alert ring.

Recording piggybacks on the engine's weighted 1-in-N statement sampling
(`Observability.stage_weight`): a sampled statement records once with its
sample weight, unsampled statements pay nothing, and a disabled tracker
(``enabled = False`` / ``SET VARIABLE workload_analytics = off``) costs
one attribute check per statement. Counts are therefore *estimates* of
the full population, exact while sampling is exact (warmup, ``--profile``).
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..cache import LruCache
from .metrics import DEFAULT_LATENCY_BUCKETS, SampleFamily, bisect_left

if TYPE_CHECKING:
    from ..engine.context import StatementContext
    from ..engine.rewriter import ExecutionUnit
    from .trace import Trace

__all__ = [
    "WorkloadIntelligence",
    "DigestTable",
    "ShardHeatMap",
    "SpaceSaving",
    "SLOTracker",
    "SLObjective",
    "normalize_sql",
    "digest_of",
]


# ---------------------------------------------------------------------------
# Digest normalization
# ---------------------------------------------------------------------------

#: SQL string literal (with '' escapes)
_STRING_RE = re.compile(r"'(?:[^']|'')*'")
#: numeric literal not embedded in an identifier (sbtest_h0 stays intact)
_NUMBER_RE = re.compile(r"(?<![A-Za-z0-9_])\d+(?:\.\d+)?(?:[eE][+-]?\d+)?")
_WS_RE = re.compile(r"\s+")
#: (?, ?, ?) -> (?): IN lists and VALUES rows of any arity share a digest
_PLACEHOLDER_LIST_RE = re.compile(r"\(\s*\?\s*(?:,\s*\?\s*)+\)")
#: (?), (?), (?) -> (?): multi-row INSERT batches of any size share a digest
_ROW_RUN_RE = re.compile(r"\(\?\)(?:\s*,\s*\(\?\))+")


def normalize_sql(sql: str) -> str:
    """Collapse one SQL text to its digest form (literals -> ``?``)."""
    text = sql.strip().rstrip(";").strip()
    text = _STRING_RE.sub("?", text)
    text = _NUMBER_RE.sub("?", text)
    text = _WS_RE.sub(" ", text)
    text = _PLACEHOLDER_LIST_RE.sub("(?)", text)
    text = _ROW_RUN_RE.sub("(?)", text)
    return text


def digest_of(sql: str) -> tuple[str, str]:
    """(digest id, normalized text) for one SQL text (case-insensitive id)."""
    normalized = normalize_sql(sql)
    digest = hashlib.sha1(normalized.lower().encode("utf-8")).hexdigest()[:12]
    return digest, normalized


# ---------------------------------------------------------------------------
# Statement digests (pg_stat_statements style)
# ---------------------------------------------------------------------------


class DigestStats:
    """Accumulated statistics for one statement fingerprint."""

    __slots__ = (
        "digest", "text", "calls", "errors", "rows",
        "bucket_counts", "total_seconds", "max_seconds",
        "fanout_sum", "fanout_max", "plan_hits",
        "storage_units", "storage_hits",
        "route_types", "exemplar", "exemplar_wall", "last_seen",
    )

    def __init__(self, digest: str, text: str):
        self.digest = digest
        self.text = text
        self.calls = 0.0
        self.errors = 0.0
        self.rows = 0.0
        self.bucket_counts = [0.0] * (len(DEFAULT_LATENCY_BUCKETS) + 1)
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.fanout_sum = 0.0
        self.fanout_max = 0
        self.plan_hits = 0.0
        self.storage_units = 0.0
        self.storage_hits = 0.0
        self.route_types: dict[str, float] = {}
        self.exemplar: "Trace | None" = None
        self.exemplar_wall = 0.0
        self.last_seen = 0

    def observe(self, seconds: float, weight: float, fanout: int,
                route_type: str, plan_hit: bool,
                storage_units: int, storage_hits: int) -> None:
        self.calls += weight
        self.bucket_counts[bisect_left(DEFAULT_LATENCY_BUCKETS, seconds)] += weight
        self.total_seconds += seconds * weight
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self.fanout_sum += fanout * weight
        if fanout > self.fanout_max:
            self.fanout_max = fanout
        if plan_hit:
            self.plan_hits += weight
        self.storage_units += storage_units * weight
        self.storage_hits += storage_hits * weight
        if route_type:
            self.route_types[route_type] = self.route_types.get(route_type, 0.0) + weight

    def percentile(self, p: float) -> float:
        """Fixed-bucket estimate, same interpolation as Histogram."""
        if self.calls <= 0:
            return 0.0
        rank = max(0.0, min(100.0, p)) / 100.0 * self.calls
        cumulative = 0.0
        bounds = DEFAULT_LATENCY_BUCKETS
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = bounds[i - 1] if i > 0 else 0.0
                upper = bounds[i] if i < len(bounds) else self.max_seconds
                upper = max(upper, lower)
                return lower + (rank - cumulative) / bucket_count * (upper - lower)
            cumulative += bucket_count
        return self.max_seconds


class DigestTable:
    """Bounded digest -> stats map; overflows evict the least-recently-seen."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("digest table capacity must be >= 1")
        self.capacity = capacity
        self.entries: dict[str, DigestStats] = {}
        self.evicted = 0
        self._stamp = 0

    def touch(self, digest: str, text: str) -> DigestStats:
        stats = self.entries.get(digest)
        if stats is None:
            if len(self.entries) >= self.capacity:
                victim = min(self.entries.values(), key=lambda s: s.last_seen)
                del self.entries[victim.digest]
                self.evicted += 1
            stats = self.entries[digest] = DigestStats(digest, text)
        self._stamp += 1
        stats.last_seen = self._stamp
        return stats

    def clear(self) -> None:
        self.entries.clear()
        self.evicted = 0


# ---------------------------------------------------------------------------
# Shard heat map
# ---------------------------------------------------------------------------


class NodeHeat:
    """Accumulated load for one data node (source + actual table)."""

    __slots__ = ("logic_table", "data_source", "table",
                 "reads", "writes", "rows", "wall", "simulated")

    def __init__(self, logic_table: str, data_source: str, table: str):
        self.logic_table = logic_table
        self.data_source = data_source
        self.table = table
        self.reads = 0.0
        self.writes = 0.0
        self.rows = 0.0
        self.wall = 0.0
        self.simulated = 0.0

    @property
    def statements(self) -> float:
        return self.reads + self.writes


class ShardHeatMap:
    """Per-node load accounting with per-logical-table skew rollups."""

    def __init__(self) -> None:
        self.nodes: dict[tuple[str, str, str], NodeHeat] = {}

    def node(self, key: tuple[str, str, str]) -> NodeHeat:
        heat = self.nodes.get(key)
        if heat is None:
            source, logic, actual = key
            heat = self.nodes[key] = NodeHeat(logic, source, actual)
        return heat

    def table_skew(self) -> dict[str, dict[str, Any]]:
        """Per logical table: max/mean statement imbalance + hottest node."""
        by_table: dict[str, list[NodeHeat]] = {}
        for heat in self.nodes.values():
            by_table.setdefault(heat.logic_table, []).append(heat)
        skew: dict[str, dict[str, Any]] = {}
        for table, heats in sorted(by_table.items()):
            loads = [h.statements for h in heats]
            total = sum(loads)
            mean = total / len(loads) if loads else 0.0
            hottest = max(heats, key=lambda h: h.statements)
            skew[table] = {
                "nodes": len(heats),
                "statements": round(total, 1),
                "imbalance": round(max(loads) / mean, 3) if mean > 0 else 0.0,
                "hottest": f"{hottest.data_source}.{hottest.table}",
            }
        return skew

    def clear(self) -> None:
        self.nodes.clear()


# ---------------------------------------------------------------------------
# Hot keys: space-saving (Misra–Gries) top-K sketch
# ---------------------------------------------------------------------------


class SpaceSaving:
    """Space-saving sketch: top-K heavy hitters in O(capacity) memory.

    Each monitored key holds ``(count, error)``: ``count`` never
    undercounts the true frequency and overcounts by at most ``error``
    (the evicted minimum it inherited), so ``count - error`` is a certain
    lower bound. Any key whose true share exceeds ``1/capacity`` of the
    stream weight is guaranteed to be monitored.
    """

    __slots__ = ("capacity", "counters", "total")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("sketch capacity must be >= 1")
        self.capacity = capacity
        self.counters: dict[Any, list[float]] = {}  # key -> [count, error]
        self.total = 0.0

    def offer(self, key: Any, weight: float = 1.0) -> None:
        self.total += weight
        entry = self.counters.get(key)
        if entry is not None:
            entry[0] += weight
            return
        if len(self.counters) < self.capacity:
            self.counters[key] = [weight, 0.0]
            return
        victim_key = min(self.counters, key=lambda k: self.counters[k][0])
        floor = self.counters.pop(victim_key)[0]
        self.counters[key] = [floor + weight, floor]

    def top(self, limit: int | None = None) -> list[tuple[Any, float, float]]:
        """(key, estimated count, max error) ordered hottest-first."""
        ranked = sorted(
            ((key, entry[0], entry[1]) for key, entry in self.counters.items()),
            key=lambda item: item[1], reverse=True,
        )
        return ranked[:limit] if limit is not None else ranked


# ---------------------------------------------------------------------------
# SLO tracking
# ---------------------------------------------------------------------------


class SLObjective:
    """A latency objective: fraction ``target`` under ``threshold`` seconds."""

    __slots__ = ("route_type", "threshold", "target")

    def __init__(self, route_type: str, threshold: float, target: float):
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be a fraction in (0, 1)")
        self.route_type = route_type
        self.threshold = threshold
        self.target = target


#: single-shard traffic is held to a tight objective; scatter-gather and
#: federation pay their fan-out, so their objectives are looser
DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective("standard", 0.005, 0.999),
    SLObjective("unicast", 0.005, 0.999),
    SLObjective("broadcast", 0.050, 0.99),
    SLObjective("cartesian", 0.100, 0.99),
    SLObjective("federation", 0.250, 0.99),
    SLObjective("*", 0.250, 0.99),
)


class _RouteSLO:
    __slots__ = ("objective", "statements", "breaches", "alerting")

    def __init__(self, objective: SLObjective):
        self.objective = objective
        self.statements = 0.0
        self.breaches = 0.0
        self.alerting = False

    @property
    def burn_rate(self) -> float:
        """Error-budget burn: bad fraction / allowed bad fraction (>1 = burning)."""
        if self.statements <= 0:
            return 0.0
        budget = 1.0 - self.objective.target
        return (self.breaches / self.statements) / budget


class SLOTracker:
    """Per-route-type objectives + burn accounting + alert ring buffer."""

    #: weighted statements required before burn can raise an alert
    min_statements = 100.0

    def __init__(self, objectives: Sequence[SLObjective] = DEFAULT_OBJECTIVES,
                 alert_capacity: int = 64):
        self._objectives = {o.route_type: o for o in objectives}
        if "*" not in self._objectives:
            self._objectives["*"] = SLObjective("*", 0.25, 0.99)
        self.routes: dict[str, _RouteSLO] = {}
        self.alerts: deque[dict[str, Any]] = deque(maxlen=alert_capacity)
        self.alerts_total = 0
        self._alert_seq = 0

    def route(self, route_type: str) -> _RouteSLO:
        slo = self.routes.get(route_type)
        if slo is None:
            objective = self._objectives.get(route_type, self._objectives["*"])
            slo = self.routes[route_type] = _RouteSLO(objective)
        return slo

    def record(self, route_type: str, seconds: float, weight: float) -> None:
        slo = self.route(route_type or "*")
        slo.statements += weight
        if seconds > slo.objective.threshold:
            slo.breaches += weight
        if slo.statements < self.min_statements:
            return
        burn = slo.burn_rate
        if burn > 1.0:
            if not slo.alerting:
                # alert on the crossing, not on every burning statement
                slo.alerting = True
                self._alert_seq += 1
                self.alerts_total += 1
                self.alerts.append({
                    "seq": self._alert_seq,
                    "route_type": route_type or "*",
                    "burn_rate": round(burn, 3),
                    "statements": round(slo.statements, 1),
                    "breaches": round(slo.breaches, 1),
                    "threshold_ms": slo.objective.threshold * 1000.0,
                    "target": slo.objective.target,
                })
        else:
            slo.alerting = False

    def clear(self) -> None:
        self.routes.clear()
        self.alerts.clear()
        self._alert_seq = 0
        self.alerts_total = 0


# ---------------------------------------------------------------------------
# The tracker
# ---------------------------------------------------------------------------


class _HeatSample:
    """Per-statement carrier handed to the executor for unit accounting.

    The executor calls :meth:`unit_done` once per completed execution
    unit with the unit's wall time and cursor; node heat (wall, simulated
    cost, rows when known) and storage-plan hit counters accumulate here.
    """

    __slots__ = ("workload", "weight", "storage_units", "storage_hits",
                 "unknown_rows_key")

    def __init__(self, workload: "WorkloadIntelligence", weight: float):
        self.workload = workload
        self.weight = weight
        self.storage_units = 0
        self.storage_hits = 0
        #: node key of a streaming unit whose row count is only known once
        #: the merged iterator is drained (single-unit point reads)
        self.unknown_rows_key: tuple[str, str, str] | None = None

    def unit_done(self, unit: "ExecutionUnit", wall: float,
                  cursor: Any, rows: int) -> None:
        result = getattr(cursor, "_result", None)
        cost = getattr(result, "cost", 0.0) or 0.0
        plan_status = getattr(result, "plan", "")
        workload = self.workload
        key = _unit_key(unit)
        weight = self.weight
        with workload._lock:
            node = workload.heat.node(key)
            node.wall += wall * weight
            node.simulated += cost * weight
            if rows >= 0:
                node.rows += rows * weight
            elif self.unknown_rows_key is None:
                self.unknown_rows_key = key
        self.storage_units += 1
        if plan_status == "hit":
            self.storage_hits += 1


def _unit_key(unit: "ExecutionUnit") -> tuple[str, str, str]:
    """(data source, logic table, actual table) for one execution unit.

    The first table-map entry is the routed primary table (binding-join
    companions follow it); units with no table map (DAL, defaults) fall
    into a per-source ``-`` bucket.
    """
    table_map = unit.unit.table_map
    if table_map:
        logic, actual = next(iter(table_map.items()))
        return (unit.data_source, logic, actual)
    return (unit.data_source, "-", "-")


class WorkloadIntelligence:
    """Digests + shard heat + hot keys + SLOs behind one lock.

    All mutation happens on sampled statements only (see module docstring),
    so the single lock sees 1-in-N of the statement rate; views snapshot
    under the same lock.
    """

    def __init__(self, max_digests: int = 512, hot_key_capacity: int = 64,
                 objectives: Sequence[SLObjective] = DEFAULT_OBJECTIVES):
        #: master switch (SET VARIABLE workload_analytics = on|off)
        self.enabled = True
        self._lock = threading.Lock()
        self.digests = DigestTable(max_digests)
        self.heat = ShardHeatMap()
        self.hot_key_capacity = hot_key_capacity
        self.hot_keys: dict[tuple[str, str], SpaceSaving] = {}
        self.slo = SLOTracker(objectives)
        self._digest_cache: LruCache[str, tuple[str, str]] = LruCache(4096)

    # -- recording (engine pipeline/executor) ---------------------------

    def digest_of(self, sql: str) -> tuple[str, str]:
        """Cached (digest id, normalized text) for one raw SQL text."""
        cached = self._digest_cache.get(sql)
        if cached is None:
            cached = digest_of(sql)
            self._digest_cache.put(sql, cached)
        return cached

    def begin_statement(self, weight: float) -> _HeatSample:
        """Start unit-level accounting for one sampled statement."""
        return _HeatSample(self, weight)

    def record_statement(
        self,
        context: "StatementContext",
        route_type: str,
        units: Sequence["ExecutionUnit"],
        stages: dict[str, float],
        weight: float,
        update_count: int,
        is_query: bool,
        heat_sample: _HeatSample | None = None,
    ) -> Callable[[int], None] | None:
        """Record one sampled statement after execute+merge.

        Returns a row sink for queries — the pipeline wraps the merged
        iterator with it so consumed row counts flow back — or None for
        writes (whose row counts are already exact in ``update_count``).
        """
        digest, text = self.digest_of(context.sql)
        seconds = sum(stages.values())
        plan_hit = "plan_cache_hit" in stages
        shard_keys = _shard_key_values(context)
        storage_units = heat_sample.storage_units if heat_sample is not None else 0
        storage_hits = heat_sample.storage_hits if heat_sample is not None else 0
        with self._lock:
            stats = self.digests.touch(digest, text)
            stats.observe(
                seconds, weight, fanout=len(units), route_type=route_type,
                plan_hit=plan_hit, storage_units=storage_units,
                storage_hits=storage_hits,
            )
            if not is_query:
                stats.rows += max(update_count, 0) * weight
            for unit in units:
                node = self.heat.node(_unit_key(unit))
                if is_query:
                    node.reads += weight
                else:
                    node.writes += weight
            for table, column, value in shard_keys:
                sketch_key = (table, column)
                sketch = self.hot_keys.get(sketch_key)
                if sketch is None:
                    sketch = self.hot_keys[sketch_key] = SpaceSaving(self.hot_key_capacity)
                sketch.offer(value, weight)
            self.slo.record(route_type, seconds, weight)
        if not is_query:
            return None
        unknown_key = heat_sample.unknown_rows_key if heat_sample is not None else None

        def row_sink(consumed: int) -> None:
            with self._lock:
                stats.rows += consumed * weight
                if unknown_key is not None:
                    self.heat.node(unknown_key).rows += consumed * weight

        return row_sink

    def record_error(self, sql: str) -> None:
        """Exact per-digest error accounting (errors bypass sampling)."""
        digest, text = self.digest_of(sql)
        with self._lock:
            stats = self.digests.touch(digest, text)
            stats.calls += 1
            stats.errors += 1

    def note_trace(self, trace: "Trace") -> str:
        """Keep the slowest trace per digest as an exemplar; returns the id."""
        digest, text = self.digest_of(trace.name)
        with self._lock:
            stats = self.digests.touch(digest, text)
            if trace.wall >= stats.exemplar_wall:
                stats.exemplar = trace
                stats.exemplar_wall = trace.wall
        return digest

    def reset(self) -> None:
        """Drop all accumulated state (DistSQL ``RESET WORKLOAD``)."""
        with self._lock:
            self.digests.clear()
            self.heat.clear()
            self.hot_keys.clear()
            self.slo.clear()

    # -- views ----------------------------------------------------------

    def digest_report(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Digests ordered by total time, JSON-safe (pg_stat_statements view)."""
        with self._lock:
            entries = sorted(
                self.digests.entries.values(),
                key=lambda s: s.total_seconds, reverse=True,
            )
            if limit is not None:
                entries = entries[:limit]
            report = []
            for s in entries:
                storage_total = s.storage_units
                report.append({
                    "digest": s.digest,
                    "sql": s.text,
                    "calls": round(s.calls, 1),
                    "errors": round(s.errors, 1),
                    "rows": round(s.rows, 1),
                    "total_ms": round(s.total_seconds * 1000, 3),
                    "avg_ms": round(s.total_seconds / s.calls * 1000, 4) if s.calls else 0.0,
                    "p95_ms": round(s.percentile(95) * 1000, 4),
                    "max_ms": round(s.max_seconds * 1000, 3),
                    "fanout_avg": round(s.fanout_sum / s.calls, 2) if s.calls else 0.0,
                    "fanout_max": s.fanout_max,
                    "plan_hit_rate": round(s.plan_hits / s.calls, 4) if s.calls else 0.0,
                    "storage_plan_hit_rate": (
                        round(s.storage_hits / storage_total, 4) if storage_total else 0.0
                    ),
                    "route_types": dict(s.route_types),
                    "exemplar_trace_id": (
                        s.exemplar.trace_id if s.exemplar is not None else None
                    ),
                    "exemplar_ms": round(s.exemplar_wall * 1000, 3),
                })
        return report

    def exemplar(self, digest: str) -> "Trace | None":
        with self._lock:
            stats = self.digests.entries.get(digest)
            return stats.exemplar if stats is not None else None

    def heat_report(self) -> list[dict[str, Any]]:
        """Per-node heat, hottest node first, with in-table share."""
        with self._lock:
            nodes = sorted(
                self.heat.nodes.values(),
                key=lambda h: h.statements, reverse=True,
            )
            totals: dict[str, float] = {}
            for h in nodes:
                totals[h.logic_table] = totals.get(h.logic_table, 0.0) + h.statements
            return [
                {
                    "table": h.logic_table,
                    "data_source": h.data_source,
                    "actual_table": h.table,
                    "reads": round(h.reads, 1),
                    "writes": round(h.writes, 1),
                    "rows": round(h.rows, 1),
                    "wall_ms": round(h.wall * 1000, 3),
                    "simulated_ms": round(h.simulated * 1000, 3),
                    "share": (
                        round(h.statements / totals[h.logic_table], 4)
                        if totals[h.logic_table] else 0.0
                    ),
                }
                for h in nodes
            ]

    def table_skew(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            return self.heat.table_skew()

    def hot_key_report(self, table: str = "",
                       limit: int = 10) -> list[dict[str, Any]]:
        """Top-K keys per (table, column) sketch, hottest first."""
        table = table.lower()
        with self._lock:
            report = []
            for (sketch_table, column), sketch in sorted(self.hot_keys.items()):
                if table and sketch_table != table:
                    continue
                for key, count, error in sketch.top(limit):
                    report.append({
                        "table": sketch_table,
                        "column": column,
                        "key": key if isinstance(key, (int, float, str)) else repr(key),
                        "count": round(count, 1),
                        "max_error": round(error, 1),
                        "share": round(count / sketch.total, 4) if sketch.total else 0.0,
                    })
        report.sort(key=lambda r: r["count"], reverse=True)
        return report

    def slo_report(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                {
                    "route_type": route_type,
                    "threshold_ms": slo.objective.threshold * 1000.0,
                    "target": slo.objective.target,
                    "statements": round(slo.statements, 1),
                    "breaches": round(slo.breaches, 1),
                    "compliance": (
                        round(1.0 - slo.breaches / slo.statements, 5)
                        if slo.statements else 1.0
                    ),
                    "budget_burn": round(slo.burn_rate, 3),
                    "state": "BURNING" if slo.alerting else "OK",
                }
                for route_type, slo in sorted(self.slo.routes.items())
            ]

    def alert_report(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self.slo.alerts)[::-1]

    # -- Prometheus export (pull-time collector) -------------------------

    def families(self) -> Iterable[SampleFamily]:
        """Metrics-registry collector: shard heat, skew, hot keys, SLOs."""
        if not self.enabled and not self.heat.nodes and not self.slo.routes:
            return []
        with self._lock:
            nodes = sorted(self.heat.nodes.values(),
                           key=lambda h: (h.logic_table, h.data_source, h.table))
            skew = self.heat.table_skew()
            hot = [
                ({"table": t, "column": c,
                  "key": str(key) if isinstance(key, (int, float, str)) else repr(key)},
                 float(count))
                for (t, c), sketch in sorted(self.hot_keys.items())
                for key, count, _err in sketch.top(5)
            ]
            slos = sorted(self.slo.routes.items())
            slo_samples = [
                (
                    [({"route_type": rt}, slo.statements) for rt, slo in slos],
                    [({"route_type": rt}, slo.breaches) for rt, slo in slos],
                    [({"route_type": rt}, slo.burn_rate) for rt, slo in slos],
                )
            ][0]
            digest_count = float(len(self.digests.entries))
            digest_evicted = float(self.digests.evicted)
            alerts_total = float(self.slo.alerts_total)

        def node_samples(attr: str) -> list[tuple[dict[str, str], float]]:
            return [
                ({"table": h.logic_table, "source": h.data_source,
                  "node": h.table}, float(getattr(h, attr)))
                for h in nodes
            ]

        families: list[SampleFamily] = [
            ("workload_digests", "gauge", "tracked statement digests",
             [({}, digest_count)]),
            ("workload_digests_evicted_total", "counter",
             "digest-table evictions", [({}, digest_evicted)]),
            ("workload_shard_reads_total", "counter",
             "sampled read statements per data node", node_samples("reads")),
            ("workload_shard_writes_total", "counter",
             "sampled write statements per data node", node_samples("writes")),
            ("workload_shard_rows_total", "counter",
             "rows produced/affected per data node", node_samples("rows")),
            ("workload_shard_wall_seconds_total", "counter",
             "wall seconds per data node", node_samples("wall")),
            ("workload_shard_simulated_seconds_total", "counter",
             "simulated I/O seconds per data node", node_samples("simulated")),
            ("workload_table_imbalance_ratio", "gauge",
             "max/mean statement load across a table's data nodes",
             [({"table": t}, float(info["imbalance"])) for t, info in skew.items()]),
            ("workload_hot_key_count", "gauge",
             "space-saving estimated count for the hottest shard-key values", hot),
            ("workload_slo_statements_total", "counter",
             "statements measured against the route-type SLO", slo_samples[0]),
            ("workload_slo_breaches_total", "counter",
             "statements over the route-type SLO threshold", slo_samples[1]),
            ("workload_slo_burn_rate", "gauge",
             "error-budget burn rate per route type (>1 = burning)", slo_samples[2]),
            ("workload_slo_alerts_total", "counter",
             "SLO burn alerts raised", [({}, alerts_total)]),
        ]
        return families


def _shard_key_values(context: "StatementContext") -> list[tuple[str, str, Any]]:
    """Shard-key values this statement routed by (hot-key observations)."""
    from ..engine.router import shard_key_values

    return shard_key_values(context)
