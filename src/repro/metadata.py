"""Versioned metadata contexts: copy-on-write configuration snapshots.

The paper's Governor treats configuration as a first-class versioned
object: every cluster member holds *one* consistent view of the data
sources, sharding rules, features and props, and reconfigures by swapping
to the next version. This module is that model for the reproduction:

- :class:`MetadataContext` — an immutable snapshot (data-source map,
  frozen :class:`~repro.sharding.ShardingRule`, feature tuple, variables)
  carrying a monotonic ``version``. The engine pins one snapshot per
  statement, so the whole parse→route→rewrite→execute→merge lifetime sees
  a single configuration even while DistSQL mutates it concurrently.
- :class:`ContextManager` — the single writer. Every mutation (DistSQL
  RDL/RAL, feature add/remove, resource register/unregister) builds the
  next snapshot copy-on-write under one lock, atomically swaps it in
  (a plain attribute store: lock-free for readers under the GIL), bumps
  the version and notifies subscribers (cache invalidation, Governor
  publication).

Two counters ride on each snapshot:

- ``version`` increments on *every* mutation — the value traced on each
  statement's spans (``metadata_version``) and published to the Governor.
- ``plan_epoch`` increments only on mutations that change what compiled
  plans bake in (rule, data sources, features). Variables like
  ``tracing`` bump the version but never drop a plan cache.
"""

from __future__ import annotations

import threading
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from .exceptions import ShardingConfigError
from .session import current_session
from .sharding import ShardingRule

if TYPE_CHECKING:
    from .governor import ConfigCenter
    from .sharding import TableRule
    from .storage import DataSource

#: the session variables the runtime understands (DistSQL ``SET VARIABLE``);
#: anything else is a typo and must fail loudly.
KNOWN_VARIABLES = frozenset(
    {
        "transaction_type",
        "max_connections_per_query",
        "tracing",
        "slow_query_threshold_ms",
        "plan_cache",
        "workload_analytics",
        "result_cache",
    }
)


class MetadataContext:
    """One immutable configuration snapshot.

    ``data_sources`` and ``variables`` are read-only mapping views over
    private copies; ``rule`` is frozen (mutators raise) except for the
    bootstrap snapshot, which keeps the caller's rule object writable for
    direct-embedding use (tests, examples building a rule up front).
    """

    __slots__ = (
        "version",
        "plan_epoch",
        "data_sources",
        "rule",
        "features",
        "variables",
        "plan_cache_safe",
        "reason",
    )

    def __init__(
        self,
        version: int,
        plan_epoch: int,
        data_sources: Mapping[str, "DataSource"],
        rule: ShardingRule,
        features: tuple[Any, ...],
        variables: Mapping[str, Any],
        reason: str,
    ):
        self.version = version
        self.plan_epoch = plan_epoch
        self.data_sources: Mapping[str, "DataSource"] = MappingProxyType(dict(data_sources))
        self.rule = rule
        self.features = features
        self.variables: Mapping[str, Any] = MappingProxyType(dict(variables))
        #: True when every feature leaves statement ASTs untouched, so the
        #: engine may take the plan-cache hot path (precomputed once per
        #: snapshot instead of per statement).
        self.plan_cache_safe = all(
            getattr(f, "plan_cache_safe", False) for f in features
        )
        #: what mutation produced this snapshot (diagnostics, SHOW METADATA)
        self.reason = reason

    def dialect_of(self, data_source: str):
        return self.data_sources[data_source].dialect

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetadataContext(v{self.version}, epoch={self.plan_epoch}, "
            f"sources={list(self.data_sources)}, "
            f"tables={self.rule.logic_tables()}, reason={self.reason!r})"
        )


class _Draft:
    """Copy-on-write workspace for building the next snapshot.

    Fields are copied from the base snapshot only on first write, so a
    variables-only mutation shares the previous rule object (and its
    route-memo identity) untouched.
    """

    __slots__ = ("base", "_rule", "_sources", "_features", "_variables")

    def __init__(self, base: MetadataContext):
        self.base = base
        self._rule: ShardingRule | None = None
        self._sources: dict[str, "DataSource"] | None = None
        self._features: list[Any] | None = None
        self._variables: dict[str, Any] | None = None

    # -- copy-on-write accessors ----------------------------------------

    @property
    def rule(self) -> ShardingRule:
        if self._rule is None:
            self._rule = self.base.rule.copy()
        return self._rule

    @property
    def data_sources(self) -> dict[str, "DataSource"]:
        if self._sources is None:
            self._sources = dict(self.base.data_sources)
        return self._sources

    @property
    def features(self) -> list[Any]:
        if self._features is None:
            self._features = list(self.base.features)
        return self._features

    @property
    def variables(self) -> dict[str, Any]:
        if self._variables is None:
            self._variables = dict(self.base.variables)
        return self._variables

    # -- read-only peeks (no copy) ---------------------------------------

    @property
    def current_rule(self) -> ShardingRule:
        return self._rule if self._rule is not None else self.base.rule

    @property
    def current_sources(self) -> Mapping[str, "DataSource"]:
        return self._sources if self._sources is not None else self.base.data_sources

    @property
    def plan_affecting(self) -> bool:
        """True when the mutation touched rule, sources or features."""
        return (
            self._rule is not None
            or self._sources is not None
            or self._features is not None
        )

    def build(self, version: int, reason: str) -> MetadataContext:
        rule = self._rule if self._rule is not None else self.base.rule
        if self._rule is not None:
            # Only manager-produced copies are frozen; the bootstrap rule
            # stays writable for direct-embedding callers.
            rule.freeze()
        return MetadataContext(
            version=version,
            plan_epoch=self.base.plan_epoch + (1 if self.plan_affecting else 0),
            data_sources=self.current_sources,
            rule=rule,
            features=tuple(self._features) if self._features is not None else self.base.features,
            variables=self._variables if self._variables is not None else self.base.variables,
            reason=reason,
        )


#: subscriber callback: (old snapshot, new snapshot)
MetadataListener = Callable[[MetadataContext, MetadataContext], None]


class ContextManager:
    """Single writer of versioned metadata contexts.

    Readers call :meth:`current` — one attribute load, no lock (CPython
    attribute stores are atomic, and snapshots are immutable). Writers
    funnel through :meth:`mutate`, which serializes on one re-entrant
    lock, builds the next snapshot copy-on-write, swaps it in and runs
    subscribers *before* releasing the lock, so a subscriber always sees
    the swap it was notified about as the latest state.

    ``live_sources`` is the one mutable data-source dict shared (by
    reference) with the execution engine and the transaction manager; it
    is kept in sync with the current snapshot under the write lock, with
    targeted add/del so long-lived readers of the dict never see it
    emptied mid-update.
    """

    def __init__(
        self,
        data_sources: Mapping[str, "DataSource"] | None = None,
        rule: ShardingRule | None = None,
        features: Sequence[Any] = (),
        variables: Mapping[str, Any] | None = None,
        config_center: "ConfigCenter | None" = None,
    ):
        self.live_sources: dict[str, "DataSource"] = (
            data_sources if isinstance(data_sources, dict) else dict(data_sources or {})
        )
        self._lock = threading.RLock()
        self._listeners: list[MetadataListener] = []
        self.config_center = config_center
        self._current = MetadataContext(
            version=0,
            plan_epoch=0,
            data_sources=self.live_sources,
            rule=rule if rule is not None else ShardingRule(),
            features=tuple(features),
            variables=variables or {},
            reason="bootstrap",
        )

    # -- reads -----------------------------------------------------------

    def current(self) -> MetadataContext:
        """The latest snapshot (lock-free)."""
        return self._current

    @property
    def version(self) -> int:
        return self._current.version

    @property
    def in_mutation(self) -> bool:
        """True while *this session* is inside :meth:`mutate`.

        The registry fires watch callbacks synchronously on the writer's
        thread, so cluster watchers use this to skip events caused by
        their own runtime's mutations. The guard lives on the session
        (keyed by this manager object), not a thread-local, so mutations
        triggered from proxy workers attribute to the right session and
        the flag survives explicit session handoff.
        """
        return current_session().guard_depth(self) > 0

    # -- subscription ------------------------------------------------------

    def subscribe(self, listener: MetadataListener) -> Callable[[], None]:
        """Register a swap listener; returns an unsubscribe function."""
        with self._lock:
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._listeners:
                    self._listeners.remove(listener)

        return unsubscribe

    # -- the single writer -------------------------------------------------

    def mutate(self, fn: Callable[[_Draft], Any], reason: str) -> Any:
        """Apply one mutation: draft → build → atomic swap → notify.

        Returns whatever ``fn`` returns. Raising inside ``fn`` leaves the
        current snapshot untouched (drafts are private until the swap).
        """
        with self._lock:
            session = current_session()
            session.enter_guard(self)
            try:
                base = self._current
                draft = _Draft(base)
                result = fn(draft)
                new = draft.build(base.version + 1, reason)
                self._sync_live_sources(new)
                self._current = new
                if self.config_center is not None:
                    self.config_center.publish_metadata_version(new.version, reason)
                for listener in list(self._listeners):
                    listener(base, new)
            finally:
                session.exit_guard(self)
        return result

    def _sync_live_sources(self, new: MetadataContext) -> None:
        live = self.live_sources
        fresh = new.data_sources
        for name in [n for n in live if n not in fresh]:
            del live[name]
        for name, source in fresh.items():
            if live.get(name) is not source:
                live[name] = source

    def touch(self, reason: str) -> None:
        """Bump the version with no config change (e.g. an in-place
        feature reconfiguration that watchers should still observe)."""
        self.mutate(lambda draft: None, reason)

    # -- convenience mutators (what DistSQL / the runtime call) -----------

    def add_data_source(self, name: str, source: "DataSource") -> None:
        def apply(draft: _Draft) -> None:
            draft.data_sources[name] = source
            if draft.current_rule.default_data_source is None:
                draft.rule.default_data_source = name

        self.mutate(apply, f"register resource {name}")

    def remove_data_source(self, name: str) -> "DataSource | None":
        def apply(draft: _Draft) -> "DataSource | None":
            removed = draft.data_sources.pop(name, None)
            if draft.current_rule.default_data_source == name:
                draft.rule.default_data_source = next(iter(draft.data_sources), None)
            return removed

        return self.mutate(apply, f"unregister resource {name}")

    def apply_table_rule(self, table_rule: "TableRule", reason: str | None = None) -> None:
        self.mutate(
            lambda draft: draft.rule.add_table_rule(table_rule),
            reason or f"sharding rule {table_rule.logic_table}",
        )

    def drop_table_rule(self, logic_table: str) -> None:
        def apply(draft: _Draft) -> None:
            if not draft.current_rule.is_sharded(logic_table):
                raise ShardingConfigError(f"no sharding rule for table {logic_table!r}")
            draft.rule.drop_table_rule(logic_table)

        self.mutate(apply, f"drop sharding rule {logic_table}")

    def add_binding_group(self, tables: Sequence[str]) -> None:
        self.mutate(
            lambda draft: draft.rule.add_binding_group(tables),
            f"binding group {'+'.join(sorted(t.lower() for t in tables))}",
        )

    def add_broadcast_table(self, table: str) -> None:
        if self._current.rule.is_broadcast(table):
            return  # idempotent: no version churn on replayed configs
        self.mutate(
            lambda draft: draft.rule.add_broadcast_table(table),
            f"broadcast table {table}",
        )

    def set_default_data_source(self, name: str | None) -> None:
        def apply(draft: _Draft) -> None:
            draft.rule.default_data_source = name

        self.mutate(apply, f"default data source {name}")

    def add_feature(self, feature: Any) -> None:
        self.mutate(
            lambda draft: draft.features.append(feature),
            f"feature added: {getattr(feature, 'name', type(feature).__name__)}",
        )

    def remove_feature(self, name: str) -> None:
        def apply(draft: _Draft) -> None:
            draft._features = [f for f in draft.features if f.name != name]

        self.mutate(apply, f"feature removed: {name}")

    def set_variable(self, name: str, value: Any) -> None:
        def apply(draft: _Draft) -> None:
            draft.variables[name] = value

        self.mutate(apply, f"set {name} = {value}")

    # -- iteration helpers -------------------------------------------------

    def __iter__(self) -> Iterator[MetadataContext]:  # pragma: no cover
        yield self._current


__all__ = ["MetadataContext", "ContextManager", "KNOWN_VARIABLES"]
