"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PLACEHOLDER = "placeholder"
    EOF = "eof"


# Keywords recognized by the lexer. Identifiers matching these
# (case-insensitively) are emitted as KEYWORD tokens with upper-cased value.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET ASC DESC
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE DROP INDEX TRUNCATE ALTER ADD RENAME TO UNIQUE
    PRIMARY KEY NOT NULL DEFAULT AUTO_INCREMENT REFERENCES FOREIGN
    JOIN INNER LEFT RIGHT FULL OUTER CROSS ON USING AS
    AND OR IN IS BETWEEN LIKE EXISTS ALL ANY SOME
    DISTINCT UNION EXCEPT INTERSECT
    COUNT SUM AVG MIN MAX
    BEGIN START TRANSACTION COMMIT ROLLBACK SAVEPOINT RELEASE WORK
    TRUE FALSE
    INT INTEGER BIGINT SMALLINT FLOAT DOUBLE DECIMAL NUMERIC REAL
    VARCHAR CHAR TEXT BOOLEAN BOOL DATE TIME TIMESTAMP DATETIME BLOB
    SHOW DESCRIBE EXPLAIN USE
    IF CASE WHEN THEN ELSE END CAST
    FOR SHARE OF NOWAIT
    """.split()
)

# Multi-character operators, longest first so the lexer is greedy.
OPERATORS = ("<=>", "<>", "!=", ">=", "<=", "||", "<<", ">>", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is upper-cased for keywords, verbatim for everything else.
    ``position`` is the character offset in the source string, used for
    error messages and for the rewriter's token-level splicing.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, *keywords: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in keywords

    def is_punct(self, char: str) -> bool:
        return self.type is TokenType.PUNCTUATION and self.value == char

    def is_op(self, op: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value == op
