"""AST -> SQL text formatter.

The rewriter mutates the AST (actual table names, derived columns, revised
pagination) and then uses this module to regenerate executable SQL for the
underlying data sources, honoring each target's dialect.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import RewriteError
from . import ast
from .dialects import SQL92, Dialect


def format_statement(stmt: ast.Statement, dialect: Dialect = SQL92) -> str:
    """Render a statement AST back to SQL text in the given dialect."""
    formatter = _Formatter(dialect)
    return formatter.statement(stmt)


def format_expression(expr: ast.Expression, dialect: Dialect = SQL92) -> str:
    return _Formatter(dialect).expr(expr)


def format_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


class _Formatter:
    def __init__(self, dialect: Dialect):
        self.dialect = dialect

    # -- statements -----------------------------------------------------

    def statement(self, stmt: ast.Statement) -> str:
        if isinstance(stmt, ast.SelectStatement):
            return self.select(stmt)
        if isinstance(stmt, ast.InsertStatement):
            return self.insert(stmt)
        if isinstance(stmt, ast.UpdateStatement):
            return self.update(stmt)
        if isinstance(stmt, ast.DeleteStatement):
            return self.delete(stmt)
        if isinstance(stmt, ast.CreateTableStatement):
            return self.create_table(stmt)
        if isinstance(stmt, ast.DropTableStatement):
            suffix = "IF EXISTS " if stmt.if_exists else ""
            return f"DROP TABLE {suffix}{stmt.table.name}"
        if isinstance(stmt, ast.CreateIndexStatement):
            unique = "UNIQUE " if stmt.unique else ""
            cols = ", ".join(stmt.columns)
            return f"CREATE {unique}INDEX {stmt.index_name} ON {stmt.table.name} ({cols})"
        if isinstance(stmt, ast.TruncateStatement):
            return f"TRUNCATE TABLE {stmt.table.name}"
        if isinstance(stmt, ast.BeginStatement):
            return "BEGIN"
        if isinstance(stmt, ast.CommitStatement):
            return "COMMIT"
        if isinstance(stmt, ast.RollbackStatement):
            return "ROLLBACK"
        if isinstance(stmt, ast.SetStatement):
            return f"SET {stmt.name} = {format_literal(stmt.value)}"
        if isinstance(stmt, ast.ShowStatement):
            return f"SHOW {stmt.subject}"
        raise RewriteError(f"cannot format statement of type {type(stmt).__name__}")

    def select(self, stmt: ast.SelectStatement) -> str:
        parts = ["SELECT"]
        if stmt.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self.select_item(item) for item in stmt.select_items))
        if stmt.from_table is not None:
            parts.append("FROM")
            parts.append(self.table_ref(stmt.from_table))
        for join in stmt.joins:
            if join.kind == "CROSS":
                parts.append(f"CROSS JOIN {self.table_ref(join.table)}")
            else:
                parts.append(f"{join.kind} JOIN {self.table_ref(join.table)}")
            if join.condition is not None:
                parts.append(f"ON {self.expr(join.condition)}")
        if stmt.where is not None:
            parts.append(f"WHERE {self.expr(stmt.where)}")
        if stmt.group_by:
            parts.append("GROUP BY " + ", ".join(self.expr(e) for e in stmt.group_by))
        if stmt.having is not None:
            parts.append(f"HAVING {self.expr(stmt.having)}")
        if stmt.order_by:
            rendered = ", ".join(
                self.expr(item.expression) + (" DESC" if item.desc else "")
                for item in stmt.order_by
            )
            parts.append("ORDER BY " + rendered)
        if stmt.limit is not None:
            count = self.expr(stmt.limit.count) if stmt.limit.count is not None else None
            offset = self.expr(stmt.limit.offset) if stmt.limit.offset is not None else None
            clause = self.dialect.render_limit(count, offset)
            if clause:
                parts.append(clause)
        if stmt.for_update:
            parts.append("FOR UPDATE")
        return " ".join(parts)

    def select_item(self, item: ast.SelectItem) -> str:
        text = self.expr(item.expression)
        if item.alias:
            return f"{text} AS {item.alias}"
        return text

    def insert(self, stmt: ast.InsertStatement) -> str:
        cols = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
        rows = ", ".join(
            "(" + ", ".join(self.expr(v) for v in row) + ")" for row in stmt.values_rows
        )
        return f"INSERT INTO {stmt.table.name}{cols} VALUES {rows}"

    def update(self, stmt: ast.UpdateStatement) -> str:
        sets = ", ".join(f"{col} = {self.expr(value)}" for col, value in stmt.assignments)
        sql = f"UPDATE {self.table_ref(stmt.table)} SET {sets}"
        if stmt.where is not None:
            sql += f" WHERE {self.expr(stmt.where)}"
        return sql

    def delete(self, stmt: ast.DeleteStatement) -> str:
        sql = f"DELETE FROM {stmt.table.name}"
        if stmt.where is not None:
            sql += f" WHERE {self.expr(stmt.where)}"
        return sql

    def create_table(self, stmt: ast.CreateTableStatement) -> str:
        defs = []
        for col in stmt.columns:
            text = f"{col.name} {col.type_name}"
            if col.length is not None:
                text += f"({col.length})"
            if col.not_null:
                text += " NOT NULL"
            if col.auto_increment:
                text += " AUTO_INCREMENT"
            if col.unique:
                text += " UNIQUE"
            if col.default is not None:
                text += f" DEFAULT {format_literal(col.default)}"
            defs.append(text)
        if stmt.primary_key:
            defs.append(f"PRIMARY KEY ({', '.join(stmt.primary_key)})")
        exists = "IF NOT EXISTS " if stmt.if_not_exists else ""
        return f"CREATE TABLE {exists}{stmt.table.name} ({', '.join(defs)})"

    def table_ref(self, ref: ast.TableRef) -> str:
        if ref.alias:
            return f"{ref.name} {ref.alias}"
        return ref.name

    # -- expressions ----------------------------------------------------

    def expr(self, node: ast.Expression) -> str:
        if isinstance(node, ast.Literal):
            return format_literal(node.value)
        if isinstance(node, ast.Placeholder):
            return "?"
        if isinstance(node, ast.ColumnRef):
            return node.qualified
        if isinstance(node, ast.Star):
            return f"{node.table}.*" if node.table else "*"
        if isinstance(node, ast.BinaryOp):
            left = self._maybe_paren(node.left, node.op)
            right = self._maybe_paren(node.right, node.op)
            return f"{left} {node.op} {right}"
        if isinstance(node, ast.UnaryOp):
            if node.op == "NOT":
                return f"NOT ({self.expr(node.operand)})"
            return f"{node.op}{self.expr(node.operand)}"
        if isinstance(node, ast.InExpr):
            not_kw = "NOT " if node.negated else ""
            items = ", ".join(self.expr(i) for i in node.items)
            return f"{self.expr(node.operand)} {not_kw}IN ({items})"
        if isinstance(node, ast.BetweenExpr):
            not_kw = "NOT " if node.negated else ""
            return (
                f"{self.expr(node.operand)} {not_kw}BETWEEN "
                f"{self.expr(node.low)} AND {self.expr(node.high)}"
            )
        if isinstance(node, ast.IsNullExpr):
            not_kw = "NOT " if node.negated else ""
            return f"{self.expr(node.operand)} IS {not_kw}NULL"
        if isinstance(node, ast.FunctionCall):
            distinct = "DISTINCT " if node.distinct else ""
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{node.name}({distinct}{args})"
        if isinstance(node, ast.CaseExpr):
            parts = ["CASE"]
            for cond, value in node.whens:
                parts.append(f"WHEN {self.expr(cond)} THEN {self.expr(value)}")
            if node.default is not None:
                parts.append(f"ELSE {self.expr(node.default)}")
            parts.append("END")
            return " ".join(parts)
        raise RewriteError(f"cannot format expression of type {type(node).__name__}")

    def _maybe_paren(self, node: ast.Expression, parent_op: str) -> str:
        text = self.expr(node)
        if isinstance(node, ast.BinaryOp):
            from .parser import _PRECEDENCE

            child = _PRECEDENCE.get(node.op, 10)
            parent = _PRECEDENCE.get(parent_op, 10)
            if child < parent:
                return f"({text})"
        return text
