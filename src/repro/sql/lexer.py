"""Hand-written SQL tokenizer.

Supports quoted identifiers in three dialect styles (backticks for MySQL,
double quotes for PostgreSQL/SQL-92, square brackets for SQL Server),
single-quoted strings with doubled-quote escaping, line (``--``) and block
(``/* */``) comments, numeric literals and ``?`` placeholders.
"""

from __future__ import annotations

from ..exceptions import SQLParseError
from .tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType

_QUOTE_PAIRS = {"`": "`", '"': '"', "[": "]"}


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SQLParseError("unterminated block comment", position=i)
            i = end + 2
            continue
        if ch == "'":
            token, i = _read_string(sql, i)
            tokens.append(token)
            continue
        if ch in _QUOTE_PAIRS:
            token, i = _read_quoted_identifier(sql, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            token, i = _read_number(sql, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _read_word(sql, i)
            tokens.append(token)
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PLACEHOLDER, "?", i))
            i += 1
            continue
        op = _match_operator(sql, i)
        if op is not None:
            tokens.append(Token(TokenType.OPERATOR, op, i))
            i += len(op)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SQLParseError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[Token, int]:
    """Read a single-quoted string literal; ``''`` escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise SQLParseError("unterminated string literal", position=start)


def _read_quoted_identifier(sql: str, start: int) -> tuple[Token, int]:
    closing = _QUOTE_PAIRS[sql[start]]
    end = sql.find(closing, start + 1)
    if end == -1:
        raise SQLParseError("unterminated quoted identifier", position=start)
    return Token(TokenType.IDENTIFIER, sql[start + 1 : end], start), end + 1


def _read_number(sql: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # Exponent must be followed by digits (optionally signed).
            j = i + 1
            if j < n and sql[j] in "+-":
                j += 1
            if j < n and sql[j].isdigit():
                seen_exp = True
                i = j
            else:
                break
        else:
            break
    return Token(TokenType.NUMBER, sql[start:i], start), i


def _read_word(sql: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start), i
    return Token(TokenType.IDENTIFIER, word, start), i


def _match_operator(sql: str, i: int) -> str | None:
    for op in OPERATORS:
        if sql.startswith(op, i):
            return op
    return None
