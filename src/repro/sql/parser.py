"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` nodes.

The grammar covers the subset ShardingSphere's pipeline exercises in the
paper: DQL (SELECT with joins, grouping, ordering, pagination, aggregates),
DML (multi-row INSERT, UPDATE, DELETE), DDL (CREATE/DROP TABLE, CREATE
INDEX, TRUNCATE), TCL (BEGIN/COMMIT/ROLLBACK) and two DAL statements
(SET, SHOW). Expressions support the operators the router's sharding
condition extraction understands (=, IN, BETWEEN, comparisons, AND/OR/NOT,
LIKE, IS NULL) plus arithmetic and function calls.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import SQLParseError, UnsupportedSQLError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

# Precedence for binary operators, higher binds tighter.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "<>": 4, "!=": 4, "<": 4, ">": 4, "<=": 4, ">=": 4, "<=>": 4, "LIKE": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}

_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">=", "<=>"}


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement into an AST."""
    return Parser(sql).parse_statement()


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (used in tests and DistSQL)."""
    parser = Parser(sql)
    expr = parser._parse_expr()
    parser._expect_eof()
    return expr


class Parser:
    """Single-statement recursive-descent parser."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self._placeholder_count = 0

    # ------------------------------------------------------------------
    # Token stream helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Token | None:
        if self._peek().matches(*keywords):
            return self._advance()
        return None

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._accept_keyword(*keywords)
        if token is None:
            got = self._peek()
            raise SQLParseError(
                f"expected {' or '.join(keywords)}, got {got.value!r}", position=got.position
            )
        return token

    def _accept_punct(self, char: str) -> bool:
        if self._peek().is_punct(char):
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            got = self._peek()
            raise SQLParseError(f"expected {char!r}, got {got.value!r}", position=got.position)

    def _expect_identifier(self) -> str:
        token = self._peek()
        # Allow non-reserved keywords to be used as identifiers where an
        # identifier is required (e.g. a column named `key` is out of scope,
        # but `count` appears in benchmarks).
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._advance()
            return token.value
        raise SQLParseError(f"expected identifier, got {token.value!r}", position=token.position)

    def _expect_eof(self) -> None:
        self._accept_punct(";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SQLParseError(f"unexpected trailing input {token.value!r}", position=token.position)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            raise SQLParseError(f"expected statement, got {token.value!r}", position=token.position)
        handlers = {
            "SELECT": self._parse_select,
            "INSERT": self._parse_insert,
            "UPDATE": self._parse_update,
            "DELETE": self._parse_delete,
            "CREATE": self._parse_create,
            "DROP": self._parse_drop,
            "TRUNCATE": self._parse_truncate,
            "BEGIN": self._parse_begin,
            "START": self._parse_begin,
            "COMMIT": self._parse_commit,
            "ROLLBACK": self._parse_rollback,
            "SET": self._parse_set,
            "SHOW": self._parse_show,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise UnsupportedSQLError(f"unsupported statement {token.value}", position=token.position)
        statement = handler()
        self._expect_eof()
        return statement

    # -- SELECT ---------------------------------------------------------

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        stmt = ast.SelectStatement()
        stmt.distinct = self._accept_keyword("DISTINCT") is not None
        self._accept_keyword("ALL")
        stmt.select_items.append(self._parse_select_item())
        while self._accept_punct(","):
            stmt.select_items.append(self._parse_select_item())
        if self._accept_keyword("FROM"):
            stmt.from_table = self._parse_table_ref()
            stmt.joins = self._parse_joins()
        if self._accept_keyword("WHERE"):
            stmt.where = self._parse_expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            stmt.group_by.append(self._parse_expr())
            while self._accept_punct(","):
                stmt.group_by.append(self._parse_expr())
        if self._accept_keyword("HAVING"):
            stmt.having = self._parse_expr()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            stmt.order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                stmt.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            stmt.limit = self._parse_limit()
        elif self._accept_keyword("OFFSET"):
            # PostgreSQL allows OFFSET before/without LIMIT.
            offset = self._parse_limit_value()
            stmt.limit = ast.Limit(count=None, offset=offset)
            if self._accept_keyword("LIMIT"):
                stmt.limit.count = self._parse_limit_value()
        if self._accept_keyword("FOR"):
            self._expect_keyword("UPDATE", "SHARE")
            stmt.for_update = True
        return stmt

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.is_op("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # table.* form
        if token.type is TokenType.IDENTIFIER and self._peek(1).is_punct(".") and self._peek(2).is_op("*"):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(table=token.value))
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderByItem:
        expr = self._parse_expr()
        desc = False
        if self._accept_keyword("DESC"):
            desc = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderByItem(expr, desc=desc)

    def _parse_limit(self) -> ast.Limit:
        first = self._parse_limit_value()
        if self._accept_punct(","):
            # MySQL "LIMIT offset, count"
            count = self._parse_limit_value()
            return ast.Limit(count=count, offset=first)
        if self._accept_keyword("OFFSET"):
            offset = self._parse_limit_value()
            return ast.Limit(count=first, offset=offset)
        return ast.Limit(count=first)

    def _parse_limit_value(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(_parse_number(token.value))
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            index = self._placeholder_count
            self._placeholder_count += 1
            return ast.Placeholder(index)
        raise SQLParseError(f"expected LIMIT value, got {token.value!r}", position=token.position)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name, alias=alias)

    def _parse_joins(self) -> list[ast.Join]:
        joins: list[ast.Join] = []
        while True:
            kind = None
            if self._accept_keyword("JOIN") or self._accept_keyword("INNER"):
                if self._peek(-1).matches("INNER"):
                    self._expect_keyword("JOIN")
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "LEFT"
            elif self._accept_keyword("RIGHT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "RIGHT"
            elif self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                kind = "CROSS"
            elif self._accept_punct(","):
                kind = "CROSS"
            else:
                return joins
            table = self._parse_table_ref()
            condition = None
            if kind != "CROSS" and self._accept_keyword("ON"):
                condition = self._parse_expr()
            joins.append(ast.Join(table, kind=kind, condition=condition))

    # -- INSERT ---------------------------------------------------------

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        stmt = ast.InsertStatement()
        stmt.table = self._parse_table_ref()
        if self._accept_punct("("):
            stmt.columns.append(self._expect_identifier())
            while self._accept_punct(","):
                stmt.columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        stmt.values_rows.append(self._parse_value_row())
        while self._accept_punct(","):
            stmt.values_rows.append(self._parse_value_row())
        return stmt

    def _parse_value_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        row = [self._parse_expr()]
        while self._accept_punct(","):
            row.append(self._parse_expr())
        self._expect_punct(")")
        return row

    # -- UPDATE / DELETE -------------------------------------------------

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        stmt = ast.UpdateStatement()
        stmt.table = self._parse_table_ref()
        self._expect_keyword("SET")
        stmt.assignments.append(self._parse_assignment())
        while self._accept_punct(","):
            stmt.assignments.append(self._parse_assignment())
        if self._accept_keyword("WHERE"):
            stmt.where = self._parse_expr()
        return stmt

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_identifier()
        if self._accept_punct("."):
            column = self._expect_identifier()
        token = self._peek()
        if not token.is_op("="):
            raise SQLParseError(f"expected '=' in assignment, got {token.value!r}", position=token.position)
        self._advance()
        return column, self._parse_expr()

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        stmt = ast.DeleteStatement()
        stmt.table = self._parse_table_ref()
        if self._accept_keyword("WHERE"):
            stmt.where = self._parse_expr()
        return stmt

    # -- DDL --------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("UNIQUE"):
            self._expect_keyword("INDEX")
            return self._parse_create_index(unique=True)
        if self._accept_keyword("INDEX"):
            return self._parse_create_index(unique=False)
        self._expect_keyword("TABLE")
        stmt = ast.CreateTableStatement()
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            # EXISTS is a keyword in our lexer
            self._expect_keyword("EXISTS")
            stmt.if_not_exists = True
        stmt.table = ast.TableRef(self._expect_identifier())
        self._expect_punct("(")
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                stmt.primary_key.append(self._expect_identifier())
                while self._accept_punct(","):
                    stmt.primary_key.append(self._expect_identifier())
                self._expect_punct(")")
            elif self._accept_keyword("UNIQUE"):
                self._accept_keyword("KEY", "INDEX")
                self._skip_parenthesized()
            elif self._accept_keyword("KEY", "INDEX"):
                # Secondary index definitions inside CREATE TABLE are noted
                # but not modeled; skip "name (cols)".
                if self._peek().type is TokenType.IDENTIFIER:
                    self._advance()
                self._skip_parenthesized()
            else:
                stmt.columns.append(self._parse_column_definition())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        for col in stmt.columns:
            if col.primary_key and col.name not in stmt.primary_key:
                stmt.primary_key.append(col.name)
        return stmt

    def _skip_parenthesized(self) -> None:
        if self._peek().type is TokenType.IDENTIFIER:
            self._advance()
        self._expect_punct("(")
        depth = 1
        while depth:
            token = self._advance()
            if token.type is TokenType.EOF:
                raise SQLParseError("unterminated parenthesis", position=token.position)
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1

    def _parse_column_definition(self) -> ast.ColumnDefinition:
        name = self._expect_identifier()
        type_token = self._peek()
        if type_token.type not in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            raise SQLParseError(f"expected column type, got {type_token.value!r}", position=type_token.position)
        self._advance()
        col = ast.ColumnDefinition(name=name, type_name=type_token.value.upper())
        if self._accept_punct("("):
            length_token = self._advance()
            col.length = int(length_token.value)
            # DECIMAL(p, s) — keep precision only.
            if self._accept_punct(","):
                self._advance()
            self._expect_punct(")")
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                col.not_null = True
            elif self._accept_keyword("NULL"):
                pass
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                col.primary_key = True
            elif self._accept_keyword("UNIQUE"):
                col.unique = True
            elif self._accept_keyword("AUTO_INCREMENT"):
                col.auto_increment = True
            elif self._accept_keyword("DEFAULT"):
                col.default = self._parse_primary_literal()
            else:
                break
        return col

    def _parse_primary_literal(self) -> Any:
        token = self._advance()
        if token.type is TokenType.NUMBER:
            return _parse_number(token.value)
        if token.type is TokenType.STRING:
            return token.value
        if token.matches("NULL"):
            return None
        if token.matches("TRUE"):
            return True
        if token.matches("FALSE"):
            return False
        raise SQLParseError(f"expected literal, got {token.value!r}", position=token.position)

    def _parse_create_index(self, unique: bool) -> ast.CreateIndexStatement:
        stmt = ast.CreateIndexStatement(unique=unique)
        stmt.index_name = self._expect_identifier()
        self._expect_keyword("ON")
        stmt.table = ast.TableRef(self._expect_identifier())
        self._expect_punct("(")
        stmt.columns.append(self._expect_identifier())
        while self._accept_punct(","):
            stmt.columns.append(self._expect_identifier())
        self._expect_punct(")")
        return stmt

    def _parse_drop(self) -> ast.DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        stmt = ast.DropTableStatement()
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            stmt.if_exists = True
        stmt.table = ast.TableRef(self._expect_identifier())
        return stmt

    def _parse_truncate(self) -> ast.TruncateStatement:
        self._expect_keyword("TRUNCATE")
        self._accept_keyword("TABLE")
        return ast.TruncateStatement(table=ast.TableRef(self._expect_identifier()))

    # -- TCL / DAL --------------------------------------------------------

    def _parse_begin(self) -> ast.BeginStatement:
        if self._accept_keyword("START"):
            self._expect_keyword("TRANSACTION")
        else:
            self._expect_keyword("BEGIN")
            self._accept_keyword("TRANSACTION", "WORK")
        return ast.BeginStatement()

    def _parse_commit(self) -> ast.CommitStatement:
        self._expect_keyword("COMMIT")
        self._accept_keyword("WORK")
        return ast.CommitStatement()

    def _parse_rollback(self) -> ast.RollbackStatement:
        self._expect_keyword("ROLLBACK")
        self._accept_keyword("WORK")
        return ast.RollbackStatement()

    def _parse_set(self) -> ast.SetStatement:
        self._expect_keyword("SET")
        # Accept "SET VARIABLE name = value" (DistSQL RAL style) and
        # plain "SET name = value".
        name = self._expect_identifier()
        if name.upper() == "VARIABLE":
            name = self._expect_identifier()
        token = self._peek()
        if not token.is_op("="):
            raise SQLParseError(f"expected '=' in SET, got {token.value!r}", position=token.position)
        self._advance()
        value_token = self._advance()
        if value_token.type is TokenType.NUMBER:
            value: Any = _parse_number(value_token.value)
        elif value_token.type is TokenType.STRING:
            value = value_token.value
        else:
            value = value_token.value
        return ast.SetStatement(name=name, value=value)

    def _parse_show(self) -> ast.ShowStatement:
        self._expect_keyword("SHOW")
        parts = []
        while self._peek().type is not TokenType.EOF and not self._peek().is_punct(";"):
            parts.append(self._advance().value)
        return ast.ShowStatement(subject=" ".join(parts))

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expr(self, min_precedence: int = 1) -> ast.Expression:
        left = self._parse_unary()
        while True:
            left, matched = self._try_postfix(left)
            if matched:
                continue
            token = self._peek()
            op = None
            if token.type is TokenType.OPERATOR and token.value in _PRECEDENCE:
                op = token.value
            elif token.matches("AND", "OR", "LIKE"):
                op = token.value
            if op is None or _PRECEDENCE[op] < min_precedence:
                return left
            self._advance()
            right = self._parse_expr(_PRECEDENCE[op] + 1)
            left = ast.BinaryOp(op, left, right)

    def _try_postfix(self, operand: ast.Expression) -> tuple[ast.Expression, bool]:
        """Handle IN / BETWEEN / IS NULL / NOT IN / NOT BETWEEN / NOT LIKE."""
        negated = False
        save = self.pos
        if self._accept_keyword("NOT"):
            if self._peek().matches("IN", "BETWEEN", "LIKE"):
                negated = True
            else:
                self.pos = save
                return operand, False
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = [self._parse_expr()]
            while self._accept_punct(","):
                items.append(self._parse_expr())
            self._expect_punct(")")
            return ast.InExpr(operand, items, negated=negated), True
        if self._accept_keyword("BETWEEN"):
            low = self._parse_expr(_PRECEDENCE["AND"] + 1)
            self._expect_keyword("AND")
            high = self._parse_expr(_PRECEDENCE["AND"] + 1)
            return ast.BetweenExpr(operand, low, high, negated=negated), True
        if negated and self._accept_keyword("LIKE"):
            pattern = self._parse_expr(_PRECEDENCE["LIKE"] + 1)
            return ast.UnaryOp("NOT", ast.BinaryOp("LIKE", operand, pattern)), True
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNullExpr(operand, negated=is_negated), True
        self.pos = save
        return operand, False

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.matches("NOT"):
            self._advance()
            return ast.UnaryOp("NOT", self._parse_expr(_PRECEDENCE["AND"] + 1))
        if token.is_op("-"):
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        if token.is_op("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(_parse_number(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            index = self._placeholder_count
            self._placeholder_count += 1
            return ast.Placeholder(index)
        if token.matches("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches("CASE"):
            return self._parse_case()
        if token.matches("CAST"):
            return self._parse_cast()
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.matches("COUNT", "SUM", "AVG", "MIN", "MAX") and self._peek(1).is_punct("("):
            return self._parse_function_call()
        if token.type is TokenType.IDENTIFIER:
            if self._peek(1).is_punct("("):
                return self._parse_function_call()
            return self._parse_column_ref()
        raise SQLParseError(f"unexpected token {token.value!r}", position=token.position)

    def _parse_case(self) -> ast.CaseExpr:
        self._expect_keyword("CASE")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        default = None
        while self._accept_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            value = self._parse_expr()
            whens.append((cond, value))
        if self._accept_keyword("ELSE"):
            default = self._parse_expr()
        self._expect_keyword("END")
        if not whens:
            raise SQLParseError("CASE requires at least one WHEN", position=self._peek().position)
        return ast.CaseExpr(whens, default)

    def _parse_cast(self) -> ast.FunctionCall:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        value = self._parse_expr()
        self._expect_keyword("AS")
        type_token = self._advance()
        if self._accept_punct("("):
            self._advance()
            self._expect_punct(")")
        self._expect_punct(")")
        return ast.FunctionCall("CAST", [value, ast.Literal(type_token.value.upper())])

    def _parse_function_call(self) -> ast.FunctionCall:
        name_token = self._advance()
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT") is not None
        args: list[ast.Expression] = []
        if self._peek().is_op("*"):
            self._advance()
            args.append(ast.Star())
        elif not self._peek().is_punct(")"):
            args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
        self._expect_punct(")")
        return ast.FunctionCall(name_token.value.upper(), args, distinct=distinct)

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = self._expect_identifier()
        if self._accept_punct("."):
            second = self._expect_identifier()
            return ast.ColumnRef(second, table=first)
        return ast.ColumnRef(first)


def _parse_number(text: str) -> int | float:
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
