"""SQL dialect dictionaries.

The paper's parser ships "SQL dialect dictionaries of different types of
databases". A dialect here controls identifier quoting, string escaping and
pagination syntax — the aspects that differ between the six integrated
databases when the rewriter regenerates SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ShardingConfigError


@dataclass(frozen=True)
class Dialect:
    """Rendering rules for one database family."""

    name: str
    identifier_quote: str = '"'
    identifier_quote_close: str = '"'
    #: "limit_offset" -> LIMIT n OFFSET m; "limit_comma" -> LIMIT m, n;
    #: "fetch" -> OFFSET m ROWS FETCH NEXT n ROWS ONLY
    limit_style: str = "limit_offset"
    supports_boolean_literal: bool = True

    def quote(self, identifier: str) -> str:
        return f"{self.identifier_quote}{identifier}{self.identifier_quote_close}"

    def render_limit(self, count: str | None, offset: str | None) -> str:
        """Render the pagination clause (without a leading space)."""
        if count is None and offset is None:
            return ""
        if self.limit_style == "limit_comma" and count is not None and offset is not None:
            return f"LIMIT {offset}, {count}"
        if self.limit_style == "fetch":
            parts = []
            if offset is not None:
                parts.append(f"OFFSET {offset} ROWS")
            if count is not None:
                parts.append(f"FETCH NEXT {count} ROWS ONLY")
            return " ".join(parts)
        parts = []
        if count is not None:
            parts.append(f"LIMIT {count}")
        if offset is not None:
            parts.append(f"OFFSET {offset}")
        return " ".join(parts)


MYSQL = Dialect(name="MySQL", identifier_quote="`", identifier_quote_close="`", limit_style="limit_comma")
MARIADB = Dialect(name="MariaDB", identifier_quote="`", identifier_quote_close="`", limit_style="limit_comma")
POSTGRESQL = Dialect(name="PostgreSQL")
OPENGAUSS = Dialect(name="openGauss")
SQLSERVER = Dialect(
    name="SQLServer", identifier_quote="[", identifier_quote_close="]", limit_style="fetch",
    supports_boolean_literal=False,
)
ORACLE = Dialect(name="Oracle", limit_style="fetch", supports_boolean_literal=False)
SQL92 = Dialect(name="SQL92")

_REGISTRY: dict[str, Dialect] = {
    d.name.lower(): d
    for d in (MYSQL, MARIADB, POSTGRESQL, OPENGAUSS, SQLSERVER, ORACLE, SQL92)
}


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by case-insensitive name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ShardingConfigError(f"unknown dialect {name!r}; known: {sorted(_REGISTRY)}") from None


def register_dialect(dialect: Dialect) -> None:
    """Register a custom dialect (SPI-style extension point)."""
    _REGISTRY[dialect.name.lower()] = dialect


def available_dialects() -> list[str]:
    return sorted(_REGISTRY)
