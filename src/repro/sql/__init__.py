"""SQL subsystem: lexer, AST, parser, dialects and formatter.

This is the Python stand-in for the ANTLR-based parser module of
Apache ShardingSphere. Typical use::

    from repro.sql import parse, format_statement
    stmt = parse("SELECT * FROM t_user WHERE uid IN (1, 2)")
    sql = format_statement(stmt)
"""

from . import ast
from .dialects import (
    MARIADB,
    MYSQL,
    OPENGAUSS,
    ORACLE,
    POSTGRESQL,
    SQL92,
    SQLSERVER,
    Dialect,
    available_dialects,
    get_dialect,
    register_dialect,
)
from .formatter import format_expression, format_literal, format_statement
from .lexer import tokenize
from .parser import parse, parse_expression
from .tokens import Token, TokenType

__all__ = [
    "ast",
    "parse",
    "parse_expression",
    "tokenize",
    "format_statement",
    "format_expression",
    "format_literal",
    "Dialect",
    "get_dialect",
    "register_dialect",
    "available_dialects",
    "MYSQL",
    "MARIADB",
    "POSTGRESQL",
    "OPENGAUSS",
    "SQLSERVER",
    "ORACLE",
    "SQL92",
    "Token",
    "TokenType",
]
