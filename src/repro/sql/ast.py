"""Typed abstract syntax tree for the SQL subset the engine supports.

All nodes are frozen-ish dataclasses (mutable where the rewriter needs to
patch them). Expression nodes evaluate against a row mapping via
:mod:`repro.storage.expression`; statement nodes are consumed by the storage
executor and by the sharding pipeline (context extraction, routing,
rewriting, merging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expression:
    """Base class for expression nodes."""

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Expression", ...]:
        return ()


@dataclass
class Literal(Expression):
    """A constant value: number, string, boolean or NULL."""

    value: Any


@dataclass
class Placeholder(Expression):
    """A ``?`` parameter marker; ``index`` is its ordinal (0-based)."""

    index: int


@dataclass
class ColumnRef(Expression):
    """A possibly-qualified column reference, e.g. ``u.uid`` or ``name``."""

    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: str | None = None


@dataclass
class BinaryOp(Expression):
    """A binary operation: comparison, arithmetic, AND/OR, LIKE."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)


@dataclass
class UnaryOp(Expression):
    """NOT or unary minus."""

    op: str
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass
class InExpr(Expression):
    """``column IN (v1, v2, ...)`` (or NOT IN)."""

    operand: Expression
    items: list[Expression]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)


@dataclass
class BetweenExpr(Expression):
    """``column BETWEEN low AND high`` (or NOT BETWEEN)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)


@dataclass
class IsNullExpr(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass
class FunctionCall(Expression):
    """A function call; aggregates are COUNT/SUM/AVG/MIN/MAX."""

    name: str
    args: list[Expression]
    distinct: bool = False

    AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in self.AGGREGATES

    def children(self) -> tuple[Expression, ...]:
        return tuple(self.args)


@dataclass
class CaseExpr(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: list[tuple[Expression, Expression]]
    default: Expression | None = None

    def children(self) -> tuple[Expression, ...]:
        out: list[Expression] = []
        for cond, value in self.whens:
            out.append(cond)
            out.append(value)
        if self.default is not None:
            out.append(self.default)
        return tuple(out)


# --------------------------------------------------------------------------
# Statement building blocks
# --------------------------------------------------------------------------


@dataclass
class TableRef:
    """A table reference with optional alias."""

    name: str
    alias: str | None = None

    @property
    def exposed_name(self) -> str:
        """The name visible to the rest of the query (alias wins)."""
        return self.alias or self.name


@dataclass
class Join:
    """A join clause attached to the FROM table."""

    table: TableRef
    kind: str = "INNER"  # INNER, LEFT, RIGHT, CROSS
    condition: Expression | None = None


@dataclass
class SelectItem:
    """One item in the select list: an expression with optional alias."""

    expression: Expression
    alias: str | None = None
    # Set by the rewriter when the column was derived (added for merging).
    derived: bool = False

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        expr = self.expression
        if isinstance(expr, ColumnRef):
            return expr.name
        if isinstance(expr, FunctionCall):
            inner = "*" if expr.args and isinstance(expr.args[0], Star) else ""
            if not inner and expr.args:
                arg = expr.args[0]
                inner = arg.name if isinstance(arg, ColumnRef) else "expr"
            return f"{expr.name.upper()}({inner})"
        if isinstance(expr, Star):
            return "*"
        return "expr"


@dataclass
class OrderByItem:
    expression: Expression
    desc: bool = False


@dataclass
class Limit:
    """LIMIT/OFFSET clause. Values may be literals or placeholders."""

    count: Expression | None = None
    offset: Expression | None = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Statement:
    """Base class for statements."""

    #: SQL statement category: DQL, DML, DDL, TCL, DAL.
    category = "DAL"

    def tables(self) -> list[TableRef]:
        """All table references in the statement."""
        return []


@dataclass
class SelectStatement(Statement):
    category = "DQL"

    select_items: list[SelectItem] = field(default_factory=list)
    from_table: TableRef | None = None
    joins: list[Join] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderByItem] = field(default_factory=list)
    limit: Limit | None = None
    distinct: bool = False
    for_update: bool = False

    def tables(self) -> list[TableRef]:
        out = []
        if self.from_table is not None:
            out.append(self.from_table)
        out.extend(j.table for j in self.joins)
        return out

    def aggregates(self) -> list[FunctionCall]:
        """Aggregate calls appearing in the select list."""
        found: list[FunctionCall] = []
        for item in self.select_items:
            for node in item.expression.walk():
                if isinstance(node, FunctionCall) and node.is_aggregate:
                    found.append(node)
        return found


@dataclass
class InsertStatement(Statement):
    category = "DML"

    table: TableRef = None  # type: ignore[assignment]
    columns: list[str] = field(default_factory=list)
    values_rows: list[list[Expression]] = field(default_factory=list)

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class UpdateStatement(Statement):
    category = "DML"

    table: TableRef = None  # type: ignore[assignment]
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Expression | None = None

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class DeleteStatement(Statement):
    category = "DML"

    table: TableRef = None  # type: ignore[assignment]
    where: Expression | None = None

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class ColumnDefinition:
    name: str
    type_name: str
    length: int | None = None
    not_null: bool = False
    primary_key: bool = False
    auto_increment: bool = False
    default: Any = None
    unique: bool = False


@dataclass
class CreateTableStatement(Statement):
    category = "DDL"

    table: TableRef = None  # type: ignore[assignment]
    columns: list[ColumnDefinition] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    if_not_exists: bool = False

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class DropTableStatement(Statement):
    category = "DDL"

    table: TableRef = None  # type: ignore[assignment]
    if_exists: bool = False

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class CreateIndexStatement(Statement):
    category = "DDL"

    index_name: str = ""
    table: TableRef = None  # type: ignore[assignment]
    columns: list[str] = field(default_factory=list)
    unique: bool = False

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class TruncateStatement(Statement):
    category = "DDL"

    table: TableRef = None  # type: ignore[assignment]

    def tables(self) -> list[TableRef]:
        return [self.table]


@dataclass
class BeginStatement(Statement):
    category = "TCL"


@dataclass
class CommitStatement(Statement):
    category = "TCL"


@dataclass
class RollbackStatement(Statement):
    category = "TCL"


@dataclass
class SetStatement(Statement):
    """``SET [VARIABLE] name = value`` (DAL)."""

    category = "DAL"

    name: str = ""
    value: Any = None


@dataclass
class ShowStatement(Statement):
    """``SHOW <subject>`` (DAL); subject is the raw remainder."""

    category = "DAL"

    subject: str = ""


# --------------------------------------------------------------------------
# Fast cloning
# --------------------------------------------------------------------------
#
# The rewriter must mutate per-unit copies of the statement (actual table
# names, derived columns, revised pagination). copy.deepcopy dominates the
# per-statement cost on the OLTP fast path, so cloning is hand-rolled.


def clone_expression(expr: Expression) -> Expression:
    """Deep-clone an expression tree without copy.deepcopy overhead."""
    if isinstance(expr, Literal):
        return Literal(expr.value)
    if isinstance(expr, Placeholder):
        return Placeholder(expr.index)
    if isinstance(expr, ColumnRef):
        return ColumnRef(expr.name, expr.table)
    if isinstance(expr, Star):
        return Star(expr.table)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, clone_expression(expr.left), clone_expression(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, clone_expression(expr.operand))
    if isinstance(expr, InExpr):
        return InExpr(
            clone_expression(expr.operand),
            [clone_expression(i) for i in expr.items],
            expr.negated,
        )
    if isinstance(expr, BetweenExpr):
        return BetweenExpr(
            clone_expression(expr.operand),
            clone_expression(expr.low),
            clone_expression(expr.high),
            expr.negated,
        )
    if isinstance(expr, IsNullExpr):
        return IsNullExpr(clone_expression(expr.operand), expr.negated)
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, [clone_expression(a) for a in expr.args], expr.distinct)
    if isinstance(expr, CaseExpr):
        return CaseExpr(
            [(clone_expression(c), clone_expression(v)) for c, v in expr.whens],
            clone_expression(expr.default) if expr.default is not None else None,
        )
    raise TypeError(f"cannot clone expression of type {type(expr).__name__}")


def _clone_table_ref(ref: TableRef | None) -> TableRef | None:
    if ref is None:
        return None
    return TableRef(ref.name, ref.alias)


def clone_statement(stmt: Statement) -> Statement:
    """Deep-clone a statement AST without copy.deepcopy overhead."""
    if isinstance(stmt, SelectStatement):
        out = SelectStatement(
            select_items=[
                SelectItem(clone_expression(i.expression), i.alias, i.derived)
                for i in stmt.select_items
            ],
            from_table=_clone_table_ref(stmt.from_table),
            joins=[
                Join(
                    _clone_table_ref(j.table),  # type: ignore[arg-type]
                    j.kind,
                    clone_expression(j.condition) if j.condition is not None else None,
                )
                for j in stmt.joins
            ],
            where=clone_expression(stmt.where) if stmt.where is not None else None,
            group_by=[clone_expression(e) for e in stmt.group_by],
            having=clone_expression(stmt.having) if stmt.having is not None else None,
            order_by=[OrderByItem(clone_expression(i.expression), i.desc) for i in stmt.order_by],
            limit=None,
            distinct=stmt.distinct,
            for_update=stmt.for_update,
        )
        if stmt.limit is not None:
            out.limit = Limit(
                clone_expression(stmt.limit.count) if stmt.limit.count is not None else None,
                clone_expression(stmt.limit.offset) if stmt.limit.offset is not None else None,
            )
        return out
    if isinstance(stmt, InsertStatement):
        return InsertStatement(
            table=_clone_table_ref(stmt.table),  # type: ignore[arg-type]
            columns=list(stmt.columns),
            values_rows=[[clone_expression(v) for v in row] for row in stmt.values_rows],
        )
    if isinstance(stmt, UpdateStatement):
        return UpdateStatement(
            table=_clone_table_ref(stmt.table),  # type: ignore[arg-type]
            assignments=[(c, clone_expression(e)) for c, e in stmt.assignments],
            where=clone_expression(stmt.where) if stmt.where is not None else None,
        )
    if isinstance(stmt, DeleteStatement):
        return DeleteStatement(
            table=_clone_table_ref(stmt.table),  # type: ignore[arg-type]
            where=clone_expression(stmt.where) if stmt.where is not None else None,
        )
    if isinstance(stmt, CreateTableStatement):
        return CreateTableStatement(
            table=_clone_table_ref(stmt.table),  # type: ignore[arg-type]
            columns=[
                ColumnDefinition(
                    c.name, c.type_name, c.length, c.not_null, c.primary_key,
                    c.auto_increment, c.default, c.unique,
                )
                for c in stmt.columns
            ],
            primary_key=list(stmt.primary_key),
            if_not_exists=stmt.if_not_exists,
        )
    if isinstance(stmt, DropTableStatement):
        return DropTableStatement(table=_clone_table_ref(stmt.table), if_exists=stmt.if_exists)  # type: ignore[arg-type]
    if isinstance(stmt, CreateIndexStatement):
        return CreateIndexStatement(
            index_name=stmt.index_name,
            table=_clone_table_ref(stmt.table),  # type: ignore[arg-type]
            columns=list(stmt.columns),
            unique=stmt.unique,
        )
    if isinstance(stmt, TruncateStatement):
        return TruncateStatement(table=_clone_table_ref(stmt.table))  # type: ignore[arg-type]
    if isinstance(stmt, BeginStatement):
        return BeginStatement()
    if isinstance(stmt, CommitStatement):
        return CommitStatement()
    if isinstance(stmt, RollbackStatement):
        return RollbackStatement()
    if isinstance(stmt, SetStatement):
        return SetStatement(name=stmt.name, value=stmt.value)
    if isinstance(stmt, ShowStatement):
        return ShowStatement(subject=stmt.subject)
    raise TypeError(f"cannot clone statement of type {type(stmt).__name__}")


def fingerprint_statement(stmt: Statement) -> str:
    """Stable structural fingerprint of a statement AST.

    The plan cache records a fingerprint at compile time so tests (and
    debugging) can assert that a cached, shared AST was never mutated by
    a downstream stage — the invariant the whole cache rests on.
    """
    import hashlib

    from .formatter import format_statement

    digest = hashlib.sha256(format_statement(stmt).encode("utf-8"))
    return digest.hexdigest()[:16]
