"""Online scaling (resharding) feature.

Moves a sharded logic table from its current layout to a new one — more
shards, more data sources, or both — the workflow upstream ships as
ShardingSphere-Scaling:

1. **prepare**: create the target physical tables from the live schema;
2. **inventory**: stream every row out of the old shards and insert it
   into the shard the *target* rule routes it to;
3. **check**: source/target row-count consistency verification;
4. **switchover**: atomically swap the table rule inside the sharding
   rule, after which new traffic uses the new layout;
5. optionally drop the old physical tables.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..exceptions import ShardingConfigError, ShardingSphereError
from ..sharding import DataNode, ShardingRule, ShardingValue, TableRule
from ..storage import DataSource


class ScalingPhase(enum.Enum):
    CREATED = "created"
    PREPARING = "preparing"
    INVENTORY = "inventory"
    CHECKING = "checking"
    SWITCHING = "switching"
    DONE = "done"
    FAILED = "failed"


@dataclass
class ScalingReport:
    """Outcome and statistics of one scaling job."""

    logic_table: str = ""
    rows_migrated: int = 0
    source_nodes: int = 0
    target_nodes: int = 0
    consistent: bool = False
    phase: ScalingPhase = ScalingPhase.CREATED


class ScalingJob:
    """One resharding run for one logic table."""

    def __init__(
        self,
        rule: ShardingRule,
        target_table_rule: TableRule,
        data_sources: Mapping[str, DataSource],
        batch_size: int = 1000,
        drop_source_tables: bool = False,
        progress: Callable[[str, int], None] | None = None,
        apply_rule: Callable[[TableRule], None] | None = None,
    ):
        self.rule = rule
        self.target = target_table_rule
        self.data_sources = dict(data_sources)
        self.batch_size = batch_size
        self.drop_source_tables = drop_source_tables
        self.progress = progress or (lambda phase, count: None)
        #: how switchover installs the target rule. Runtimes pass their
        #: ContextManager-backed installer (snapshots are immutable, so an
        #: in-place add would raise on a frozen rule); the default mutates
        #: the given rule directly for standalone/embedded use.
        self.apply_rule = apply_rule or (lambda table_rule: rule.add_table_rule(table_rule))
        self.phase = ScalingPhase.CREATED
        self.report = ScalingReport(logic_table=target_table_rule.logic_table)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def run(self) -> ScalingReport:
        source_rule = self.rule.table_rule(self.target.logic_table)
        try:
            self._prepare(source_rule)
            self._inventory(source_rule)
            self._check(source_rule)
            self._switchover(source_rule)
        except Exception:
            self.phase = ScalingPhase.FAILED
            self.report.phase = self.phase
            raise
        self.phase = ScalingPhase.DONE
        self.report.phase = self.phase
        return self.report

    # -- phases -----------------------------------------------------------

    def _source_of(self, node: DataNode) -> DataSource:
        try:
            return self.data_sources[node.data_source]
        except KeyError:
            raise ShardingConfigError(
                f"scaling references unknown data source {node.data_source!r}"
            ) from None

    def _prepare(self, source_rule: TableRule) -> None:
        self.phase = ScalingPhase.PREPARING
        first = source_rule.data_nodes[0]
        schema = self._source_of(first).database.table(first.table).schema
        existing = {str(n) for n in source_rule.data_nodes}
        for node in self.target.data_nodes:
            if str(node) in existing:
                raise ShardingConfigError(
                    f"target node {node} collides with a source node; "
                    "scaling requires disjoint target tables"
                )
            self._source_of(node).database.create_table(
                schema.clone_renamed(node.table), if_not_exists=True
            )
        self.report.source_nodes = len(source_rule.data_nodes)
        self.report.target_nodes = len(self.target.data_nodes)
        self.progress("preparing", self.report.target_nodes)

    def _route_row(self, row: dict) -> DataNode:
        conditions = {}
        for column in self.target.sharding_columns:
            for key, value in row.items():
                if key.lower() == column:
                    conditions[column] = ShardingValue(column, values=[value])
        nodes = self.target.route(conditions)
        if len(nodes) != 1:
            raise ShardingSphereError(
                f"row routed to {len(nodes)} target nodes; sharding column missing?"
            )
        return nodes[0]

    def _inventory(self, source_rule: TableRule) -> None:
        self.phase = ScalingPhase.INVENTORY
        migrated = 0
        for node in source_rule.data_nodes:
            database = self._source_of(node).database
            table = database.table(node.table)
            buffers: dict[DataNode, list[dict]] = {}
            for _, row in table.scan():
                target_node = self._route_row(row)
                buffers.setdefault(target_node, []).append(dict(row))
                if len(buffers[target_node]) >= self.batch_size:
                    migrated += self._flush(target_node, buffers.pop(target_node))
            for target_node, rows in buffers.items():
                migrated += self._flush(target_node, rows)
            self.progress("inventory", migrated)
        self.report.rows_migrated = migrated

    def _flush(self, node: DataNode, rows: list[dict]) -> int:
        database = self._source_of(node).database
        table = database.table(node.table)
        with database.write_lock():
            for row in rows:
                table.insert(row)
        return len(rows)

    def _check(self, source_rule: TableRule) -> None:
        self.phase = ScalingPhase.CHECKING
        source_count = sum(
            self._source_of(n).database.table(n.table).row_count for n in source_rule.data_nodes
        )
        target_count = sum(
            self._source_of(n).database.table(n.table).row_count for n in self.target.data_nodes
        )
        self.report.consistent = source_count == target_count
        if not self.report.consistent:
            raise ShardingSphereError(
                f"scaling consistency check failed: {source_count} source rows "
                f"vs {target_count} target rows"
            )
        self.progress("checking", target_count)

    def _switchover(self, source_rule: TableRule) -> None:
        self.phase = ScalingPhase.SWITCHING
        with self._lock:
            self.apply_rule(self.target)
        if self.drop_source_tables:
            for node in source_rule.data_nodes:
                self._source_of(node).database.drop_table(node.table, if_exists=True)
        self.progress("switching", 1)
