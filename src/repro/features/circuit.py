"""Circuit breaking and throttling features.

Both are request-admission guards plugged in at ``on_context`` (the
earliest pipeline hook), so rejected statements cost nothing downstream.

- :class:`CircuitBreakerFeature`: CLOSED -> OPEN after N consecutive
  failures; OPEN rejects instantly; after a cooldown it lets one probe
  through (HALF_OPEN) and closes again on success.
- :class:`ThrottleFeature`: token-bucket rate limiter.
"""

from __future__ import annotations

import enum
import threading
import time

from ..engine.context import StatementContext
from ..engine.pipeline import EngineResult, Feature
from ..exceptions import CircuitBreakerOpenError, ThrottledError


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreakerFeature(Feature):
    """Trip after consecutive failures; recover through a probe request."""

    name = "circuit_breaker"

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = CircuitState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._lock = threading.Lock()

    # Manual controls (DistSQL RAL can force these).
    def trip(self) -> None:
        with self._lock:
            self.state = CircuitState.OPEN
            self._opened_at = time.monotonic()

    def reset(self) -> None:
        with self._lock:
            self.state = CircuitState.CLOSED
            self._failures = 0

    def on_context(self, context: StatementContext) -> None:
        with self._lock:
            if self.state is CircuitState.OPEN:
                if time.monotonic() - self._opened_at >= self.reset_timeout:
                    self.state = CircuitState.HALF_OPEN
                else:
                    raise CircuitBreakerOpenError(
                        f"circuit open; retry in "
                        f"{self.reset_timeout - (time.monotonic() - self._opened_at):.1f}s"
                    )

    def on_result(self, result: EngineResult, context: StatementContext) -> None:
        self.record_success()

    def on_error(self, error: Exception, context: StatementContext) -> None:
        self.record_failure()

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self.state is CircuitState.HALF_OPEN:
                self.state = CircuitState.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self.state is CircuitState.HALF_OPEN or self._failures >= self.failure_threshold:
                self.state = CircuitState.OPEN
                self._opened_at = time.monotonic()


class ThrottleFeature(Feature):
    """Token bucket: at most ``rate`` statements/second, bursts up to ``burst``."""

    name = "throttle"

    def __init__(self, rate: float, burst: int | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = float(burst if burst is not None else max(1, int(rate)))
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()
        self.rejected = 0

    def on_context(self, context: StatementContext) -> None:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.capacity, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens < 1.0:
                self.rejected += 1
                raise ThrottledError(f"rate limit of {self.rate}/s exceeded")
            self._tokens -= 1.0
