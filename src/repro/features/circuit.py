"""Circuit breaking and throttling features.

Both are request-admission guards plugged in at ``on_context`` (the
earliest pipeline hook), so rejected statements cost nothing downstream.

The breaker state machine itself lives in :mod:`repro.engine.resilience`
(:class:`CircuitBreaker`, with the single-in-flight-probe HALF_OPEN
protocol, and :class:`BreakerRegistry` for per-data-source breakers keyed
by route target — those are what the execution engine consults per unit).
This module re-exports them and provides:

- :class:`CircuitBreakerFeature`: one global breaker guarding the whole
  pipeline (the original coarse behaviour, kept for simple deployments);
- :class:`ThrottleFeature`: token-bucket rate limiter.
"""

from __future__ import annotations

import threading
import time

from ..engine.context import StatementContext
from ..engine.pipeline import EngineResult, Feature
from ..engine.resilience import BreakerRegistry, CircuitBreaker, CircuitState
from ..exceptions import CircuitBreakerOpenError, ThrottledError

__all__ = [
    "CircuitBreaker",
    "CircuitState",
    "BreakerRegistry",
    "CircuitBreakerFeature",
    "ThrottleFeature",
]


class CircuitBreakerFeature(Feature):
    """One global breaker guarding the whole pipeline (coarse guard).

    For per-data-source breaking use a :class:`ResiliencePolicy` on the
    engine instead — the executor then keys breakers by route target.
    """

    name = "circuit_breaker"
    # Admission guard only (may veto in on_context); never mutates the AST.
    plan_cache_safe = True

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0):
        self.breaker = CircuitBreaker(failure_threshold, reset_timeout, name="global")

    # The feature keeps exposing the breaker's knobs and state directly.

    @property
    def failure_threshold(self) -> int:
        return self.breaker.failure_threshold

    @property
    def reset_timeout(self) -> float:
        return self.breaker.reset_timeout

    @property
    def state(self) -> CircuitState:
        return self.breaker.state

    def trip(self) -> None:
        self.breaker.trip()

    def reset(self) -> None:
        self.breaker.reset()

    def record_success(self) -> None:
        self.breaker.record_success()

    def record_failure(self) -> None:
        self.breaker.record_failure()

    def on_context(self, context: StatementContext) -> None:
        if not self.breaker.try_acquire():
            raise CircuitBreakerOpenError(
                "circuit open; retry after the cooldown (probe in flight or "
                f"{self.breaker.reset_timeout:.1f}s reset timeout not elapsed)"
            )

    def on_result(self, result: EngineResult, context: StatementContext) -> None:
        self.record_success()

    def on_error(self, error: Exception, context: StatementContext) -> None:
        self.record_failure()


class ThrottleFeature(Feature):
    """Token bucket: at most ``rate`` statements/second, bursts up to ``burst``."""

    name = "throttle"
    # Admission guard only; never mutates the AST.
    plan_cache_safe = True

    def __init__(self, rate: float, burst: int | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = float(burst if burst is not None else max(1, int(rate)))
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()
        self.rejected = 0

    def on_context(self, context: StatementContext) -> None:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.capacity, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens < 1.0:
                self.rejected += 1
                raise ThrottledError(f"rate limit of {self.rate}/s exceeded")
            self._tokens -= 1.0
