"""Read-write splitting feature.

Writes (and reads inside explicit transactions, ``SELECT ... FOR
UPDATE``, and reads while the session is pinned to primaries) go to the
primary; plain reads are load-balanced over replicas. The feature plugs
into the pipeline's ``on_units`` hook and simply redirects each execution
unit's target data source, so it composes freely with sharding: the
router picks the *logical* source (the primary's name), and this feature
fans reads out to that group's replicas.

When a group carries a storage :class:`~repro.storage.replication.ReplicaGroup`
(``group.replication``), routing becomes consistency- and lag-aware:

* **read-your-writes** — a session that wrote through the group carries a
  causal token (the commit LSN); replicas whose applied LSN does not
  cover the token are dropped from the candidate set, and if none
  qualifies the read falls back to the primary rather than return stale
  rows.
* **lag-aware balancing** — :class:`LeastLagLoadBalancer` prefers the
  most-caught-up replica; :class:`BoundedStalenessLoadBalancer` excludes
  replicas trailing by more than a staleness budget.

Replicas whose per-source circuit breaker is OPEN are excluded from the
candidate set before balancing (a tripped replica would only turn reads
into rejections until its cooldown).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..engine.context import StatementContext
from ..engine.pipeline import Feature
from ..engine.rewriter import ExecutionUnit
from ..exceptions import ShardingConfigError
from ..sql import ast
from ..storage.replication import primary_pinned, session_token


class LoadBalancer:
    """Picks a replica; SPI-style replaceable."""

    def choose(self, replicas: Sequence[str]) -> str:
        raise NotImplementedError

    def choose_with(self, replicas: Sequence[str],
                    group: "ReadWriteGroup") -> str | None:
        """Group-aware entry point the feature calls; lag-aware balancers
        override this (the group carries the replication state). ``None``
        means "no acceptable replica" and sends the read to the primary.
        """
        return self.choose(replicas)


class RoundRobinLoadBalancer(LoadBalancer):
    """Lock-free rotation: ``next()`` on a bare ``itertools.count`` is a
    single C call, atomic under the GIL, so the hot read path never takes
    a lock just to rotate an index."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def choose(self, replicas: Sequence[str]) -> str:
        return replicas[next(self._counter) % len(replicas)]


class RandomLoadBalancer(LoadBalancer):
    def __init__(self, seed: int | None = None):
        self._random = random.Random(seed)

    def choose(self, replicas: Sequence[str]) -> str:
        return self._random.choice(replicas)


class WeightedLoadBalancer(LoadBalancer):
    """Weights map replica name -> relative weight."""

    def __init__(self, weights: dict[str, float], seed: int | None = None):
        if not weights or any(w <= 0 for w in weights.values()):
            raise ShardingConfigError("weights must be positive")
        self.weights = dict(weights)
        self._random = random.Random(seed)

    def choose(self, replicas: Sequence[str]) -> str:
        candidates = [r for r in replicas if r in self.weights]
        if not candidates:
            return replicas[0]
        weights = [self.weights[r] for r in candidates]
        return self._random.choices(candidates, weights=weights, k=1)[0]


class LeastLagLoadBalancer(LoadBalancer):
    """Prefer the most-caught-up replica (fewest unapplied log records).

    Ties rotate round-robin so equally-current replicas still share load;
    groups without replication state degrade to plain round-robin.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()

    def choose(self, replicas: Sequence[str]) -> str:
        return replicas[next(self._counter) % len(replicas)]

    def choose_with(self, replicas: Sequence[str],
                    group: "ReadWriteGroup") -> str | None:
        replication = group.replication
        if replication is None:
            return self.choose(replicas)
        best = min(replication.lag_records(r) for r in replicas)
        tied = [r for r in replicas if replication.lag_records(r) == best]
        return tied[next(self._counter) % len(tied)]


class BoundedStalenessLoadBalancer(LoadBalancer):
    """Only serve replicas within a staleness budget (seconds behind the
    primary's newest commit); ``None`` — primary fallback — when every
    replica is over budget."""

    def __init__(self, max_staleness: float, seed: int | None = None):
        if max_staleness < 0:
            raise ShardingConfigError("max_staleness must be >= 0")
        self.max_staleness = max_staleness
        self._random = random.Random(seed)

    def choose(self, replicas: Sequence[str]) -> str:
        return self._random.choice(replicas)

    def choose_with(self, replicas: Sequence[str],
                    group: "ReadWriteGroup") -> str | None:
        replication = group.replication
        if replication is None:
            return self.choose(replicas)
        fresh = [r for r in replicas
                 if replication.staleness(r) <= self.max_staleness]
        if not fresh:
            return None
        return self._random.choice(fresh)


@dataclass
class ReadWriteGroup:
    """One primary and its replicas, addressed by the primary's name."""

    name: str
    primary: str
    replicas: list[str] = field(default_factory=list)
    load_balancer: LoadBalancer = field(default_factory=RoundRobinLoadBalancer)
    #: the storage :class:`~repro.storage.replication.ReplicaGroup` backing
    #: this group, when the data sources are replication-wired (None keeps
    #: the original lag-oblivious behavior).
    replication: Any = None


class ReadWriteSplittingFeature(Feature):
    """Redirect read units to replicas, writes to the primary."""

    name = "readwrite_splitting"
    # Redirects fresh per-execution RouteUnits/ExecutionUnits only;
    # never touches the statement AST.
    plan_cache_safe = True

    def __init__(
        self,
        groups: Sequence[ReadWriteGroup],
        is_up: Callable[[str], bool] | None = None,
        in_transaction: Callable[[], bool] | None = None,
        breakers: Any = None,
    ):
        #: group looked up by the logical (primary) data source name
        self.groups = {g.name: g for g in groups}
        self.is_up = is_up or (lambda name: True)
        self.in_transaction = in_transaction or (lambda: False)
        #: optional BreakerRegistry: OPEN-breaker replicas are excluded
        #: from the candidate set before load balancing
        self.breakers = breakers
        self.reads_routed = 0
        self.writes_routed = 0
        #: reads sent to the primary because no replica covered the
        #: session's causal token (read-your-writes fallbacks)
        self.causal_fallbacks = 0

    def replace_group(self, group: ReadWriteGroup) -> None:
        """Swap in a reconfigured group (ALTER READWRITE_SPLITTING RULE,
        or a failover promoting a replica under the same group key).

        The feature object itself stays registered — callers bump the
        metadata version (``ContextManager.touch``) so watchers still see
        the reconfiguration."""
        self.groups[group.name] = group

    def _is_read(self, context: StatementContext) -> bool:
        statement = context.statement
        if not isinstance(statement, ast.SelectStatement):
            return False
        if statement.for_update:
            return False
        if self.in_transaction() or primary_pinned():
            return False
        return True

    def _pick_replica(self, group: ReadWriteGroup) -> str | None:
        candidates = [r for r in group.replicas if self.is_up(r)]
        if self.breakers is not None:
            candidates = [r for r in candidates if self.breakers.available(r)]
        if not candidates:
            return None
        replication = group.replication
        if replication is not None:
            token = session_token(replication.name)
            if token:
                covered = [r for r in candidates
                           if replication.covers(r, token)]
                if not covered:
                    self.causal_fallbacks += 1
                    return None
                candidates = covered
        return group.load_balancer.choose_with(candidates, group)

    def on_units(self, units: list[ExecutionUnit], context: StatementContext) -> None:
        read = self._is_read(context)
        for unit in units:
            group = self.groups.get(unit.data_source)
            if group is None:
                continue
            target = self._pick_replica(group) if read else None
            if target is not None:
                self.reads_routed += 1
            else:
                target = group.primary
                self.writes_routed += 1
            unit.data_source = target
            unit.unit.data_source = target

    # Note: no post-hoc causal stamping is needed for fan-out writes.
    # Executor workers resume the statement's SessionContext before they
    # commit, so ``publish()`` stamps the *right* session's token exactly
    # (the old thread-local design needed an over-approximating
    # last-LSN stamp here, which could needlessly pin readers to the
    # primary after unrelated sessions' commits).
