"""Read-write splitting feature.

Writes (and reads inside explicit transactions, and ``SELECT ... FOR
UPDATE``) go to the primary; plain reads are load-balanced over replicas.
The feature plugs into the pipeline's ``on_units`` hook and simply
redirects each execution unit's target data source, so it composes freely
with sharding: the router picks the *logical* source (the primary's name),
and this feature fans reads out to that group's replicas.
"""

from __future__ import annotations

import itertools
import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..engine.context import StatementContext
from ..engine.pipeline import Feature
from ..engine.rewriter import ExecutionUnit
from ..exceptions import ShardingConfigError
from ..sql import ast


class LoadBalancer:
    """Picks a replica; SPI-style replaceable."""

    def choose(self, replicas: Sequence[str]) -> str:
        raise NotImplementedError


class RoundRobinLoadBalancer(LoadBalancer):
    def __init__(self) -> None:
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def choose(self, replicas: Sequence[str]) -> str:
        with self._lock:
            return replicas[next(self._counter) % len(replicas)]


class RandomLoadBalancer(LoadBalancer):
    def __init__(self, seed: int | None = None):
        self._random = random.Random(seed)

    def choose(self, replicas: Sequence[str]) -> str:
        return self._random.choice(replicas)


class WeightedLoadBalancer(LoadBalancer):
    """Weights map replica name -> relative weight."""

    def __init__(self, weights: dict[str, float], seed: int | None = None):
        if not weights or any(w <= 0 for w in weights.values()):
            raise ShardingConfigError("weights must be positive")
        self.weights = dict(weights)
        self._random = random.Random(seed)

    def choose(self, replicas: Sequence[str]) -> str:
        candidates = [r for r in replicas if r in self.weights]
        if not candidates:
            return replicas[0]
        weights = [self.weights[r] for r in candidates]
        return self._random.choices(candidates, weights=weights, k=1)[0]


@dataclass
class ReadWriteGroup:
    """One primary and its replicas, addressed by the primary's name."""

    name: str
    primary: str
    replicas: list[str] = field(default_factory=list)
    load_balancer: LoadBalancer = field(default_factory=RoundRobinLoadBalancer)


class ReadWriteSplittingFeature(Feature):
    """Redirect read units to replicas, writes to the primary."""

    name = "readwrite_splitting"
    # Redirects fresh per-execution RouteUnits/ExecutionUnits only;
    # never touches the statement AST.
    plan_cache_safe = True

    def __init__(
        self,
        groups: Sequence[ReadWriteGroup],
        is_up: Callable[[str], bool] | None = None,
        in_transaction: Callable[[], bool] | None = None,
    ):
        #: group looked up by the logical (primary) data source name
        self.groups = {g.name: g for g in groups}
        self.is_up = is_up or (lambda name: True)
        self.in_transaction = in_transaction or (lambda: False)
        self.reads_routed = 0
        self.writes_routed = 0

    def replace_group(self, group: ReadWriteGroup) -> None:
        """Swap in a reconfigured group (ALTER READWRITE_SPLITTING RULE).

        The feature object itself stays registered — callers bump the
        metadata version (``ContextManager.touch``) so watchers still see
        the reconfiguration."""
        self.groups[group.name] = group

    def _is_read(self, context: StatementContext) -> bool:
        statement = context.statement
        if not isinstance(statement, ast.SelectStatement):
            return False
        if statement.for_update:
            return False
        return not self.in_transaction()

    def on_units(self, units: list[ExecutionUnit], context: StatementContext) -> None:
        read = self._is_read(context)
        for unit in units:
            group = self.groups.get(unit.data_source)
            if group is None:
                continue
            if read:
                healthy = [r for r in group.replicas if self.is_up(r)]
                if healthy:
                    unit.data_source = group.load_balancer.choose(healthy)
                    unit.unit.data_source = unit.data_source
                    self.reads_routed += 1
                    continue
            unit.data_source = group.primary
            unit.unit.data_source = unit.data_source
            self.writes_routed += 1
