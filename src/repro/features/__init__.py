"""Pluggable features (Section IV-C): all implemented as pipeline hooks
that can be added, removed or combined freely with data sharding."""

from ..engine.pipeline import Feature
from .circuit import CircuitBreakerFeature, CircuitState, ThrottleFeature
from .encrypt import (
    EncryptAlgorithm,
    EncryptColumn,
    EncryptFeature,
    EncryptRule,
    MD5Encryptor,
    XorStreamEncryptor,
    create_encryptor,
    register_encryptor,
)
from .rwsplit import (
    BoundedStalenessLoadBalancer,
    LeastLagLoadBalancer,
    LoadBalancer,
    RandomLoadBalancer,
    ReadWriteGroup,
    ReadWriteSplittingFeature,
    RoundRobinLoadBalancer,
    WeightedLoadBalancer,
)
from .scaling import ScalingJob, ScalingPhase, ScalingReport
from .shadow import ShadowFeature, ShadowRule

__all__ = [
    "Feature",
    "ReadWriteSplittingFeature",
    "ReadWriteGroup",
    "LoadBalancer",
    "RoundRobinLoadBalancer",
    "RandomLoadBalancer",
    "WeightedLoadBalancer",
    "LeastLagLoadBalancer",
    "BoundedStalenessLoadBalancer",
    "EncryptFeature",
    "EncryptRule",
    "EncryptColumn",
    "EncryptAlgorithm",
    "XorStreamEncryptor",
    "MD5Encryptor",
    "create_encryptor",
    "register_encryptor",
    "ShadowFeature",
    "ShadowRule",
    "CircuitBreakerFeature",
    "CircuitState",
    "ThrottleFeature",
    "ScalingJob",
    "ScalingPhase",
    "ScalingReport",
]
