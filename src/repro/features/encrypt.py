"""Column encryption feature.

Applications read and write *logical* plaintext columns; the feature
rewrites statements so the underlying tables only ever see *cipher*
columns, and decrypts query output transparently:

- INSERT/UPDATE values for an encrypted column are encrypted and the
  column renamed to its cipher column;
- WHERE equality/IN comparisons against an encrypted column compare
  ciphertexts (works because the encryptors are deterministic);
- selected logical columns become ``cipher AS logical`` and the returned
  values are decrypted in ``on_result``.

Encrypt algorithms are SPI-pluggable. The built-in reversible cipher is a
key-stream XOR (a stand-in for upstream's AES — this repo has no crypto
library and the *pipeline mechanics*, not cipher strength, are what the
paper describes); MD5 provides the upstream one-way "assisted query"
style digest.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..engine.context import StatementContext
from ..engine.pipeline import EngineResult, Feature
from ..exceptions import ShardingConfigError
from ..sql import ast


class EncryptAlgorithm:
    """Deterministic, optionally reversible column encryptor."""

    type_name = ""
    reversible = True

    def encrypt(self, plaintext: Any) -> str:
        raise NotImplementedError

    def decrypt(self, ciphertext: str) -> Any:
        raise NotImplementedError


class XorStreamEncryptor(EncryptAlgorithm):
    """Reversible key-stream XOR cipher (AES stand-in; see module doc)."""

    type_name = "AES"  # configured like upstream's AES encryptor

    def __init__(self, key: str = "shardingsphere"):
        if not key:
            raise ShardingConfigError("encryption key must be non-empty")
        self._stream = hashlib.sha256(key.encode("utf-8")).digest()

    def _xor(self, data: bytes) -> bytes:
        stream = self._stream
        return bytes(b ^ stream[i % len(stream)] for i, b in enumerate(data))

    def encrypt(self, plaintext: Any) -> str:
        if plaintext is None:
            return None  # type: ignore[return-value]
        raw = str(plaintext).encode("utf-8")
        return base64.b64encode(self._xor(raw)).decode("ascii")

    def decrypt(self, ciphertext: str) -> Any:
        if ciphertext is None:
            return None
        raw = base64.b64decode(ciphertext.encode("ascii"))
        return self._xor(raw).decode("utf-8")


class MD5Encryptor(EncryptAlgorithm):
    """One-way digest (equality-searchable, not decryptable)."""

    type_name = "MD5"
    reversible = False

    def encrypt(self, plaintext: Any) -> str:
        if plaintext is None:
            return None  # type: ignore[return-value]
        return hashlib.md5(str(plaintext).encode("utf-8")).hexdigest()

    def decrypt(self, ciphertext: str) -> Any:
        return ciphertext


_ENCRYPTORS: dict[str, type[EncryptAlgorithm]] = {}


def register_encryptor(cls: type[EncryptAlgorithm]) -> type[EncryptAlgorithm]:
    _ENCRYPTORS[cls.type_name.upper()] = cls
    return cls


def create_encryptor(type_name: str, **kwargs: Any) -> EncryptAlgorithm:
    try:
        cls = _ENCRYPTORS[type_name.upper()]
    except KeyError:
        raise ShardingConfigError(
            f"unknown encryptor {type_name!r}; known: {sorted(_ENCRYPTORS)}"
        ) from None
    return cls(**kwargs)


register_encryptor(XorStreamEncryptor)
register_encryptor(MD5Encryptor)


@dataclass
class EncryptColumn:
    """One encrypted column of one logical table."""

    logic_column: str
    cipher_column: str
    encryptor: EncryptAlgorithm


@dataclass
class EncryptRule:
    """table (lower) -> {logic column (lower) -> EncryptColumn}"""

    tables: dict[str, dict[str, EncryptColumn]] = field(default_factory=dict)

    def add(self, table: str, column: EncryptColumn) -> None:
        self.tables.setdefault(table.lower(), {})[column.logic_column.lower()] = column

    def column(self, table: str, logic_column: str) -> EncryptColumn | None:
        return self.tables.get(table.lower(), {}).get(logic_column.lower())

    def columns_of(self, table: str) -> dict[str, EncryptColumn]:
        return self.tables.get(table.lower(), {})


class EncryptFeature(Feature):
    """Pipeline hook applying the encrypt rule."""

    name = "encrypt"
    # Rewrites column refs and literals in the statement AST during
    # on_context, so plans compiled from the raw AST would be wrong.
    plan_cache_safe = False

    def __init__(self, rule: EncryptRule):
        self.rule = rule

    # -- statement rewrite ----------------------------------------------------

    def on_context(self, context: StatementContext) -> None:
        statement = context.statement
        if isinstance(statement, ast.InsertStatement):
            self._rewrite_insert(statement, context)
        elif isinstance(statement, ast.UpdateStatement):
            self._rewrite_update(statement, context)
            if statement.where is not None:
                self._rewrite_predicates(statement.where, context)
        elif isinstance(statement, ast.SelectStatement):
            decrypt_plan = self._rewrite_select(statement, context)
            context.encrypt_decrypt_plan = decrypt_plan  # type: ignore[attr-defined]
            if statement.where is not None:
                self._rewrite_predicates(statement.where, context)
        elif isinstance(statement, ast.DeleteStatement):
            if statement.where is not None:
                self._rewrite_predicates(statement.where, context)

    def _tables_of(self, context: StatementContext) -> dict[str, str]:
        return dict(context.alias_map)

    def _lookup(self, context: StatementContext, column: ast.ColumnRef) -> EncryptColumn | None:
        alias_map = self._tables_of(context)
        if column.table is not None:
            logic_table = alias_map.get(column.table.lower())
            if logic_table is None:
                return None
            return self.rule.column(logic_table, column.name)
        for logic_table in alias_map.values():
            found = self.rule.column(logic_table, column.name)
            if found is not None:
                return found
        return None

    def _rewrite_insert(self, stmt: ast.InsertStatement, context: StatementContext) -> None:
        table = stmt.table.name
        encrypted = self.rule.columns_of(table)
        if not encrypted:
            return
        for position, column in enumerate(stmt.columns):
            spec = encrypted.get(column.lower())
            if spec is None:
                continue
            stmt.columns[position] = spec.cipher_column
            for row in stmt.values_rows:
                row[position] = _encrypt_expr(row[position], spec, context.params)

    def _rewrite_update(self, stmt: ast.UpdateStatement, context: StatementContext) -> None:
        encrypted = self.rule.columns_of(stmt.table.name)
        if not encrypted:
            return
        new_assignments = []
        for column, expr in stmt.assignments:
            spec = encrypted.get(column.lower())
            if spec is None:
                new_assignments.append((column, expr))
            else:
                new_assignments.append((spec.cipher_column, _encrypt_expr(expr, spec, context.params)))
        stmt.assignments = new_assignments

    def _rewrite_select(self, stmt: ast.SelectStatement, context: StatementContext) -> list[int]:
        decrypt_indexes: list[int] = []
        for i, item in enumerate(stmt.select_items):
            expr = item.expression
            if isinstance(expr, ast.ColumnRef):
                spec = self._lookup(context, expr)
                if spec is not None:
                    if item.alias is None:
                        item.alias = expr.name
                    expr.name = spec.cipher_column
                    if spec.encryptor.reversible:
                        decrypt_indexes.append(i)
        return decrypt_indexes

    def _rewrite_predicates(self, expr: ast.Expression, context: StatementContext) -> None:
        for node in expr.walk():
            if isinstance(node, ast.BinaryOp) and node.op in ("=", "<>", "!="):
                self._rewrite_comparison(node, context)
            elif isinstance(node, ast.InExpr):
                self._rewrite_in(node, context)

    def _rewrite_comparison(self, node: ast.BinaryOp, context: StatementContext) -> None:
        pairs = ((node.left, "right"), (node.right, "left"))
        for column_side, other_attr in pairs:
            if isinstance(column_side, ast.ColumnRef):
                spec = self._lookup(context, column_side)
                if spec is None:
                    continue
                column_side.name = spec.cipher_column
                other = getattr(node, other_attr)
                setattr(node, other_attr, _encrypt_expr(other, spec, context.params))
                return

    def _rewrite_in(self, node: ast.InExpr, context: StatementContext) -> None:
        if not isinstance(node.operand, ast.ColumnRef):
            return
        spec = self._lookup(context, node.operand)
        if spec is None:
            return
        node.operand.name = spec.cipher_column
        node.items = [_encrypt_expr(item, spec, context.params) for item in node.items]

    # -- result decryption ---------------------------------------------------

    def on_result(self, result: EngineResult, context: StatementContext) -> None:
        plan: list[int] = getattr(context, "encrypt_decrypt_plan", [])
        if not plan or result.merged is None:
            return
        specs: list[tuple[int, EncryptColumn]] = []
        statement = context.statement
        assert isinstance(statement, ast.SelectStatement)
        for index in plan:
            expr = statement.select_items[index].expression
            assert isinstance(expr, ast.ColumnRef)
            for table in context.alias_map.values():
                for spec in self.rule.columns_of(table).values():
                    if spec.cipher_column.lower() == expr.name.lower():
                        specs.append((index, spec))
                        break

        inner = result.merged.rows

        def decrypting() -> Any:
            for row in inner:
                out = list(row)
                for index, spec in specs:
                    if index < len(out):
                        out[index] = spec.encryptor.decrypt(out[index])
                yield tuple(out)

        result.merged.rows = decrypting()


def _encrypt_expr(expr: ast.Expression, spec: EncryptColumn, params: tuple[Any, ...]) -> ast.Expression:
    """Encrypt a literal/bound value expression into a ciphertext literal."""
    if isinstance(expr, ast.Literal):
        return ast.Literal(spec.encryptor.encrypt(expr.value))
    if isinstance(expr, ast.Placeholder):
        try:
            value = params[expr.index]
        except IndexError:
            raise ShardingConfigError(
                f"encrypted column value placeholder #{expr.index} is unbound"
            ) from None
        return ast.Literal(spec.encryptor.encrypt(value))
    raise ShardingConfigError(
        "values written to encrypted columns must be literals or bound parameters"
    )
