"""Shadow database feature.

"Creating a shadow database and routing the corresponding test SQL to it":
production traffic keeps flowing to the production data sources, while
statements recognized as *test* traffic are redirected to shadow data
sources. Determination is column-based (the upstream default): a
configured shadow column with a configured true-value marks the statement
as shadow traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..engine.context import StatementContext
from ..engine.pipeline import Feature
from ..engine.rewriter import ExecutionUnit
from ..sql import ast


@dataclass
class ShadowRule:
    """Shadow determination + data source mapping."""

    column: str = "is_shadow"
    true_values: tuple[Any, ...] = (True, 1, "1", "true")
    #: production ds name -> shadow ds name
    mapping: dict[str, str] = field(default_factory=dict)


class ShadowFeature(Feature):
    """Redirect shadow-marked statements to shadow data sources."""

    name = "shadow"
    # Inspects WHERE/params and redirects units; never mutates the AST.
    plan_cache_safe = True

    def __init__(self, rule: ShadowRule):
        self.rule = rule
        self.shadow_routed = 0

    # -- determination -----------------------------------------------------

    def _insert_is_shadow(self, stmt: ast.InsertStatement, params: tuple[Any, ...]) -> bool:
        try:
            position = [c.lower() for c in stmt.columns].index(self.rule.column.lower())
        except ValueError:
            return False
        for row in stmt.values_rows:
            value = _value_of(row[position], params)
            if value not in self.rule.true_values:
                return False
        return bool(stmt.values_rows)

    def _where_is_shadow(self, where: ast.Expression | None, params: tuple[Any, ...]) -> bool:
        if where is None:
            return False
        for node in where.walk():
            if (
                isinstance(node, ast.BinaryOp)
                and node.op == "="
                and isinstance(node.left, ast.ColumnRef)
                and node.left.name.lower() == self.rule.column.lower()
            ):
                if _value_of(node.right, params) in self.rule.true_values:
                    return True
        return False

    def is_shadow(self, context: StatementContext) -> bool:
        statement = context.statement
        if isinstance(statement, ast.InsertStatement):
            return self._insert_is_shadow(statement, context.params)
        where = getattr(statement, "where", None)
        return self._where_is_shadow(where, context.params)

    # -- redirection ----------------------------------------------------------

    def on_units(self, units: list[ExecutionUnit], context: StatementContext) -> None:
        if not self.is_shadow(context):
            return
        for unit in units:
            shadow = self.rule.mapping.get(unit.data_source)
            if shadow is not None:
                unit.data_source = shadow
                unit.unit.data_source = shadow
                self.shadow_routed += 1


def _value_of(expr: ast.Expression, params: tuple[Any, ...]) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Placeholder) and expr.index < len(params):
        return params[expr.index]
    return None
