"""repro — a Python reproduction of Apache ShardingSphere (ICDE 2022).

A holistic and pluggable data-sharding platform: use a fleet of sharded
relational data sources like one database. Public entry points:

- :class:`repro.adaptors.ShardingDataSource` — JDBC-mode adaptor (in-process).
- :class:`repro.adaptors.ShardingProxyServer` — Proxy-mode adaptor (TCP).
- :mod:`repro.sharding` — sharding rules, algorithms, AutoTable.
- :mod:`repro.distsql` — DistSQL (RDL / RQL / RAL).
- :mod:`repro.bench` — Sysbench / TPC-C workloads and the measurement runner.
"""

__version__ = "0.1.0"

from . import exceptions

__all__ = ["exceptions", "__version__"]
