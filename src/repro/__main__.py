"""Interactive SQL console: ``python -m repro``.

A mysql-client-style REPL against either a fresh in-process
ShardingRuntime (default) or a running ShardingSphere-Proxy
(``--connect host:port``). Accepts both SQL and DistSQL, so a whole
deployment can be configured and used interactively::

    $ python -m repro
    repro-sql> REGISTER RESOURCE ds0, ds1;
    repro-sql> CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1),
           ...   SHARDING_COLUMN=uid, TYPE=hash_mod,
           ...   PROPERTIES('sharding-count'=4));
    repro-sql> CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64));
    repro-sql> INSERT INTO t_user (uid, name) VALUES (1, 'ann');
    repro-sql> PREVIEW SELECT * FROM t_user WHERE uid = 1;
"""

from __future__ import annotations

import argparse
import sys
import time

from .adaptors import ShardingDataSource
from .bench.report import format_table
from .exceptions import ShardingSphereError

PROMPT = "repro-sql> "
CONTINUATION = "       ... "


def _print_result(result, elapsed: float) -> None:
    if result.description is not None:
        rows = result.fetchall()
        print(format_table(result.columns, rows))
        print(f"{len(rows)} row(s) in {elapsed * 1000:.1f} ms")
    else:
        message = getattr(result, "message", None) or "OK"
        rowcount = getattr(result, "rowcount", -1)
        suffix = f", {rowcount} row(s) affected" if rowcount >= 0 else ""
        print(f"{message}{suffix} ({elapsed * 1000:.1f} ms)")


def _read_statement(stream) -> str | None:
    """Read lines until a terminating ';' (or EOF). None at EOF."""
    buffer: list[str] = []
    prompt = PROMPT
    while True:
        if stream is sys.stdin and sys.stdin.isatty():
            try:
                line = input(prompt)
            except EOFError:
                return None
        else:
            line = stream.readline()
            if not line:
                return None
            line = line.rstrip("\n")
        buffer.append(line)
        joined = " ".join(buffer).strip()
        if joined.endswith(";") or joined.lower() in ("exit", "quit", r"\q"):
            return joined
        if not joined:
            buffer.clear()
            continue
        prompt = CONTINUATION


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="Interactive SQL/DistSQL console."
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="connect to a running ShardingSphere-Proxy instead of an "
             "in-process runtime",
    )
    parser.add_argument("--execute", "-e", default=None,
                        help="run one statement and exit")
    args = parser.parse_args(argv)

    if args.connect:
        from .protocol import ProxyClient

        host, _, port = args.connect.partition(":")
        session = ProxyClient(host, int(port))
        close = session.close
        print(f"connected to {session.server_info.get('server')}")
    else:
        data_source = ShardingDataSource()
        session = data_source.get_connection()

        def close() -> None:
            session.close()
            data_source.close()

        print("in-process runtime ready; REGISTER RESOURCE ... to begin")

    def run(statement: str) -> None:
        text = statement.strip().rstrip(";").strip()
        if not text:
            return
        start = time.perf_counter()
        try:
            result = session.execute(text)
        except ShardingSphereError as exc:
            print(f"ERROR: {exc}")
            return
        _print_result(result, time.perf_counter() - start)

    try:
        if args.execute is not None:
            run(args.execute)
            return 0
        while True:
            statement = _read_statement(sys.stdin)
            if statement is None:
                break
            if statement.strip().rstrip(";").lower() in ("exit", "quit", r"\q"):
                break
            run(statement)
    finally:
        close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
