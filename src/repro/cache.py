"""Shared bounded-LRU cache utility.

Backs the SQL engine's parse cache and the prepared-statement plan cache.
The previous parse cache wholesale-``clear()``-ed itself when full, so one
burst of distinct SQL texts (a migration script, an ad-hoc analytics
session) evicted every hot statement at once. A proper LRU keeps hot
entries resident: only the least-recently-used entry leaves.

Thread-safe; all operations take one short critical section. Counters
(hits / misses / evictions) are maintained inline so callers can expose
hit rates without wrapping every access.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LruCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LruCache capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert/replace ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data[key] = value
                self._data.move_to_end(key)
                return
            if len(self._data) >= self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Return the cached value, creating it outside the lock on a miss.

        The factory may run more than once under contention; the first
        stored value wins so all callers observe one instance.
        """
        found = self.get(key)
        if found is not None:
            return found
        created = factory()
        with self._lock:
            existing = self._data.get(key)
            if existing is not None:
                return existing
            if len(self._data) >= self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = created
        return created

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key`` without counters or recency updates."""
        with self._lock:
            return self._data.get(key, default)

    def discard(self, key: K) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def items(self) -> list[tuple[K, V]]:
        """Snapshot of entries, least-recently-used first."""
        with self._lock:
            return list(self._data.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self) -> Iterator[K]:
        with self._lock:
            return iter(list(self._data))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
