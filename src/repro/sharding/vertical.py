"""Vertical sharding helpers (Fig. 3 of the paper).

The paper distinguishes vertical from horizontal sharding and focuses on
horizontal; vertical *data source* sharding — assigning whole tables to
different data sources by business logic — falls out of the rule model
naturally: each table gets a single-node rule pinning it to its source.

Vertical *table* sharding (splitting a wide table's columns into several
narrow tables) is a schema-design operation; :func:`split_table_vertically`
performs the split on a live data source, copying column groups into the
new narrow tables (e.g. ``t_user`` -> ``t_user_v0`` + ``t_user_v1`` in the
paper's Fig. 3(b)).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import ShardingConfigError
from ..storage import Column, DataSource, TableSchema
from .rule import DataNode, ShardingRule, TableRule


def make_vertical_sharding(
    assignments: Mapping[str, str],
    default_data_source: str | None = None,
) -> ShardingRule:
    """Vertical data-source sharding: logic table -> owning data source.

    Each table keeps its schema and name but lives in exactly one source
    (the paper's upper-right quadrant of Fig. 3(c)).
    """
    if not assignments:
        raise ShardingConfigError("vertical sharding needs at least one assignment")
    rules = [
        TableRule(table, [DataNode(source, table)])
        for table, source in assignments.items()
    ]
    return ShardingRule(
        rules,
        default_data_source=default_data_source or next(iter(assignments.values())),
    )


def split_table_vertically(
    source: DataSource,
    table: str,
    column_groups: Sequence[Sequence[str]],
    key_column: str,
    drop_original: bool = False,
    suffix: str = "_v",
) -> list[str]:
    """Split ``table`` into narrow tables by column groups (Fig. 3(b)).

    Every new table carries the key column so rows stay joinable. Returns
    the names of the created tables (``{table}{suffix}{i}``).
    """
    database = source.database
    original = database.table(table)
    schema = original.schema
    key = schema.column(key_column)

    created: list[str] = []
    with database.write_lock():
        split_schemas: list[TableSchema] = []
        for i, group in enumerate(column_groups):
            columns: list[Column] = [
                Column(key.name, key.type, not_null=True)
            ]
            for name in group:
                column = schema.column(name)
                if column.name.lower() == key.name.lower():
                    continue
                columns.append(
                    Column(column.name, column.type, column.not_null,
                           column.auto_increment, column.default, column.unique)
                )
            new_name = f"{table}{suffix}{i}"
            split_schemas.append(
                TableSchema(new_name, columns, primary_key=[key.name])
            )
        covered = {key.name.lower()}
        for group in column_groups:
            covered.update(c.lower() for c in group)
        missing = [c.name for c in schema.columns if c.name.lower() not in covered]
        if missing:
            raise ShardingConfigError(
                f"column groups do not cover columns {missing} of {table!r}"
            )

        tables = [database.create_table(s) for s in split_schemas]
        created = [t.schema.name for t in tables]
        for _, row in original.scan():
            for target in tables:
                values = {
                    column.name: row[column.name] for column in target.schema.columns
                }
                target.insert(values)
        if drop_original:
            database.drop_table(table)
    return created
